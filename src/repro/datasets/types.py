"""The labeled-dataset container every experiment operates on."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A labeled high-dimensional dataset.

    The label column is the "semantic variable" of the paper's feature-
    stripping protocol: similarity search never sees it, and quality is
    judged by how often nearest neighbors share it with the query.

    Attributes:
        name: human-readable identifier, carried through reports.
        features: ``(n, d)`` float matrix; rows are points.
        labels: ``(n,)`` integer class labels.
        metadata: free-form provenance (generator parameters, corrupted
            column indices, …); never interpreted by algorithms.
    """

    name: str
    features: np.ndarray
    labels: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=np.float64)
        labels = np.asarray(self.labels, dtype=np.int64)
        if features.ndim != 2:
            raise ValueError(
                f"features must be 2-d, got shape {features.shape}"
            )
        if features.shape[0] == 0 or features.shape[1] == 0:
            raise ValueError("dataset must have at least one row and column")
        if not np.all(np.isfinite(features)):
            raise ValueError("features must be finite")
        if labels.shape != (features.shape[0],):
            raise ValueError(
                f"labels must have shape ({features.shape[0]},), "
                f"got {labels.shape}"
            )
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)

    @property
    def n_samples(self) -> int:
        return self.features.shape[0]

    @property
    def n_dims(self) -> int:
        return self.features.shape[1]

    @property
    def n_classes(self) -> int:
        return int(np.unique(self.labels).size)

    def class_counts(self) -> dict[int, int]:
        """Histogram of label values."""
        values, counts = np.unique(self.labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def subset(self, row_indices) -> "Dataset":
        """A new dataset restricted to the given rows (copies data)."""
        indices = np.asarray(row_indices, dtype=np.intp)
        if indices.ndim != 1 or indices.size == 0:
            raise ValueError("row_indices must be a non-empty 1-d sequence")
        return Dataset(
            name=self.name,
            features=self.features[indices].copy(),
            labels=self.labels[indices].copy(),
            metadata=dict(self.metadata),
        )

    def with_features(self, features, name: str | None = None) -> "Dataset":
        """Same labels, different feature matrix (e.g. after reduction)."""
        return Dataset(
            name=self.name if name is None else name,
            features=features,
            labels=self.labels.copy(),
            metadata=dict(self.metadata),
        )

    def to_csv(self, path: str, label_last: bool = True) -> None:
        """Write the dataset in the UCI layout this library's loader reads.

        One row per record, comma-separated features, integer label in
        the last (default) or first column — so
        :func:`repro.datasets.load_csv_dataset` round-trips it.
        """
        with open(path, "w") as handle:
            for row, label in zip(self.features, self.labels):
                values = [repr(float(v)) for v in row]
                fields = (
                    values + [str(int(label))]
                    if label_last
                    else [str(int(label))] + values
                )
                handle.write(",".join(fields) + "\n")
