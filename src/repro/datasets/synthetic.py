"""Synthetic dataset generators.

The workhorse is :func:`latent_concept_dataset`, which produces exactly
the statistical structure the paper's coherence model keys on: a small
number of *latent concepts* — groups of dimensions that move together in
a correlated way — that carry the class signal, buried under
per-dimension idiosyncratic noise and (optionally) wildly heterogeneous
per-dimension scales (the Section 2.2 scaling problem).

Generative model, for ``k`` concepts in ``d`` observed dimensions:

1. draw ``n_classes * clusters_per_class`` cluster centers on a sphere of
   radius ``class_separation`` in concept space and assign them to
   classes round-robin (so the classes interleave: no single direction
   separates them, and k-NN quality keeps improving as more concepts are
   retained — the shape of the paper's accuracy curves);
2. for each point, draw a class, a cluster of that class, and a concept
   vector ``z ~ N(center, concept_std^2 I_k)``;
3. mix into observation space with a *block-structured* loading matrix:
   each observed dimension belongs primarily to one concept with a
   random-sign loading of magnitude ~1, plus small cross-loadings on the
   other concepts.  Block structure is what makes a concept direction
   *coherent* in the paper's sense — all its member dimensions
   contribute to the projection with the same sign, so the coherence
   factor grows like the square root of the block size.  (A dense
   Gaussian mixing spreads every concept over every dimension; the
   cross-concept interference then caps the coherence factor near 1 and
   no direction ever looks like a concept.)
4. add noise ``eps ~ N(0, noise_std^2 I_d)`` and scale each dimension
   ``j`` by ``s_j`` drawn log-uniformly from ``[1, 10^scale_spread]``
   (``scale_spread = 0`` disables this — the "age in years vs. salary in
   dollars" mismatch of Section 2.2).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.types import Dataset


def _rng(seed) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_cube(
    n_samples: int,
    n_dims: int,
    low: float = -0.5,
    high: float = 0.5,
    seed: int = 0,
    name: str = "uniform-cube",
) -> Dataset:
    """Uniform data in a cube — the paper's "perfectly noisy" worst case.

    Section 3 proves that for this distribution every eigenvector has a
    coherence factor of exactly 1 and coherence probability
    ``2*Phi(1) - 1 ≈ 0.68``; no dimension can be dropped.  Labels are
    random coin flips (there is nothing to predict, by construction).
    """
    if n_samples < 1 or n_dims < 1:
        raise ValueError("n_samples and n_dims must be positive")
    if not low < high:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    rng = _rng(seed)
    features = rng.uniform(low, high, size=(n_samples, n_dims))
    labels = rng.integers(0, 2, size=n_samples)
    return Dataset(
        name=name,
        features=features,
        labels=labels,
        metadata={"generator": "uniform_cube", "low": low, "high": high, "seed": seed},
    )


def gaussian_blobs(
    n_samples: int,
    n_dims: int,
    n_classes: int = 2,
    separation: float = 4.0,
    spread: float = 1.0,
    seed: int = 0,
    name: str = "gaussian-blobs",
) -> Dataset:
    """Isotropic Gaussian clusters, one per class.

    A simple sanity-check dataset: every dimension is equally informative,
    so reduction neither helps nor hurts much.  Useful for testing the
    evaluation protocol itself.
    """
    if n_samples < n_classes:
        raise ValueError("need at least one sample per class")
    if n_classes < 1:
        raise ValueError("n_classes must be positive")
    rng = _rng(seed)
    centers = rng.normal(0.0, separation, size=(n_classes, n_dims))
    labels = rng.integers(0, n_classes, size=n_samples)
    features = centers[labels] + rng.normal(0.0, spread, size=(n_samples, n_dims))
    return Dataset(
        name=name,
        features=features,
        labels=labels,
        metadata={"generator": "gaussian_blobs", "seed": seed},
    )


def latent_concept_dataset(
    n_samples: int,
    n_dims: int,
    n_concepts: int,
    n_classes: int = 2,
    clusters_per_class: int = 3,
    class_separation: float = 5.0,
    concept_std: float = 1.5,
    noise_std: float = 1.0,
    cross_loading: float = 0.1,
    scale_spread: float = 0.0,
    n_constant_dims: int = 0,
    class_weights=None,
    seed: int = 0,
    name: str = "latent-concept",
) -> Dataset:
    """Generate data whose class signal lives in a few coherent concepts.

    Args:
        n_samples: number of points.
        n_dims: observed (non-constant) dimensionality ``d``.
        n_concepts: number of latent concepts ``k`` (``k <= d``).
        n_classes: number of class labels.
        clusters_per_class: clusters per class in concept space; more
            clusters interleave the classes more finely, so good k-NN
            accuracy needs more retained concepts.
        class_separation: radius of the cluster-center sphere in concept
            space.
        concept_std: within-cluster spread along each concept.
        noise_std: per-dimension idiosyncratic noise.
        cross_loading: scale of the small loadings each dimension has on
            concepts outside its own block (0 gives perfectly block-
            diagonal structure).
        scale_spread: per-dimension scales are drawn log-uniformly from
            ``[1, 10^scale_spread]``; 0 keeps a common scale.
        n_constant_dims: all-zero columns appended (the real Arrhythmia
            data has constant columns; studentization must drop them).
        class_weights: optional per-class sampling probabilities.
        seed: RNG seed — every dataset is fully reproducible.
        name: dataset name.

    Returns:
        A :class:`Dataset` whose metadata records the generator
        parameters, per-dimension concept assignment, and scales.
    """
    if n_samples < 2:
        raise ValueError("need at least two samples")
    if not 1 <= n_concepts <= n_dims:
        raise ValueError(
            f"n_concepts must lie in [1, n_dims={n_dims}], got {n_concepts}"
        )
    if n_classes < 1:
        raise ValueError("n_classes must be positive")
    if clusters_per_class < 1:
        raise ValueError("clusters_per_class must be positive")
    if noise_std < 0 or concept_std <= 0:
        raise ValueError("concept_std must be positive and noise_std >= 0")
    if cross_loading < 0:
        raise ValueError("cross_loading must be non-negative")
    if n_constant_dims < 0:
        raise ValueError("n_constant_dims must be non-negative")
    if class_weights is not None:
        weights = np.asarray(class_weights, dtype=np.float64)
        if weights.shape != (n_classes,) or np.any(weights < 0):
            raise ValueError("class_weights must be n_classes non-negative values")
        total = weights.sum()
        if total <= 0:
            raise ValueError("class_weights must not all be zero")
        weights = weights / total
    else:
        weights = None

    rng = _rng(seed)

    # Cluster centers on a sphere in concept space, classes round-robin.
    n_clusters = n_classes * clusters_per_class
    centers = rng.normal(0.0, 1.0, size=(n_clusters, n_concepts))
    norms = np.sqrt(np.sum(np.square(centers), axis=1))
    norms[norms == 0.0] = 1.0
    centers = centers / norms[:, None] * class_separation
    cluster_class = np.arange(n_clusters) % n_classes

    labels = rng.choice(n_classes, size=n_samples, p=weights)
    # For each point pick one of its class's clusters uniformly.
    cluster_choice = rng.integers(0, clusters_per_class, size=n_samples)
    cluster_index = cluster_choice * n_classes + labels
    assert np.array_equal(cluster_class[cluster_index], labels)
    concepts = centers[cluster_index] + rng.normal(
        0.0, concept_std, size=(n_samples, n_concepts)
    )

    # Block-structured loadings: dimension j belongs to concept j % k,
    # with a random-sign loading of magnitude ~1 plus faint cross terms.
    dim_concept = np.arange(n_dims) % n_concepts
    loadings = rng.normal(0.0, cross_loading, size=(n_concepts, n_dims))
    primary = rng.uniform(0.7, 1.3, size=n_dims) * rng.choice(
        [-1.0, 1.0], size=n_dims
    )
    loadings[dim_concept, np.arange(n_dims)] = primary

    features = concepts @ loadings
    if noise_std > 0:
        features = features + rng.normal(0.0, noise_std, size=features.shape)

    if scale_spread > 0:
        exponents = rng.uniform(0.0, scale_spread, size=n_dims)
        scales = np.power(10.0, exponents)
        features = features * scales
    else:
        scales = np.ones(n_dims)

    if n_constant_dims > 0:
        features = np.hstack(
            [features, np.zeros((n_samples, n_constant_dims))]
        )

    return Dataset(
        name=name,
        features=features,
        labels=labels,
        metadata={
            "generator": "latent_concept_dataset",
            "n_concepts": n_concepts,
            "clusters_per_class": clusters_per_class,
            "class_separation": class_separation,
            "concept_std": concept_std,
            "noise_std": noise_std,
            "cross_loading": cross_loading,
            "scale_spread": scale_spread,
            "n_constant_dims": n_constant_dims,
            "dim_concept": [int(c) for c in dim_concept],
            "seed": seed,
        },
    )
