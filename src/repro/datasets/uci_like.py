"""UCI-like dataset presets.

The paper evaluates on three UCI machine-learning-repository datasets
(Musk, Ionosphere, Arrhythmia) plus two synthetically corrupted variants
("noisy data set A/B").  This environment has no network access, so these
presets generate synthetic stand-ins with the same dimensionality, sample
count, class structure, and — crucially — the latent-concept statistics
the coherence model responds to.  DESIGN.md records the substitution and
why it preserves the behaviour under study; real UCI CSVs can be loaded
with :func:`repro.datasets.load_csv_dataset` and run through the same
experiments unchanged.
"""

from __future__ import annotations

from repro.datasets.corruption import corrupt_with_uniform
from repro.datasets.synthetic import latent_concept_dataset
from repro.datasets.types import Dataset
from repro.linalg.covariance import studentize

# Noise amplitude of the paper's corrupted datasets ("replaced them with
# data generated from a uniform distribution with amplitude a = 60").
NOISY_AMPLITUDE = 60.0
NOISY_A_CORRUPTED_DIMS = 10
# The OCR of the paper drops trailing digits ("we picked 1 of the
# original set of dimensions"), but Figure 14's "outlier cluster of
# [about] 11 eigenvectors with very high eigenvalues" pins the corrupted
# count near 10 for data set B as well.
NOISY_B_CORRUPTED_DIMS = 10


def musk_like(seed: int = 0) -> Dataset:
    """Stand-in for UCI Musk (version 1): 166 dims, 476 rows, 2 classes.

    Musk's features are 166 shape-distance measurements of conformations
    of the same molecules — heavily redundant, strongly correlated, with
    a modest number of underlying degrees of freedom.  The stand-in
    plants 13 concepts (the paper finds the musk optimum at 13 retained
    eigenvectors, with ~11 standing out in the scatter) under substantial
    per-dimension noise, so the accuracy optimum falls far below the full
    166 dimensions.
    """
    return latent_concept_dataset(
        n_samples=476,
        n_dims=166,
        n_concepts=13,
        n_classes=2,
        clusters_per_class=8,
        class_separation=6.0,
        concept_std=1.2,
        noise_std=3.0,
        scale_spread=1.0,
        seed=seed,
        name="musk-like",
    )


def ionosphere_like(seed: int = 0) -> Dataset:
    """Stand-in for UCI Ionosphere: 34 dims, 351 rows, 2 classes.

    Ionosphere is radar-return data where, per the paper's Figures 6–8,
    the first 5 eigenvalues stand apart, including the next 5 reaches the
    quality optimum, and the optimum beats full dimensionality.  The
    stand-in plants 10 concepts so the optimum lands near 10 of 34
    dimensions with the same orderings.
    """
    return latent_concept_dataset(
        n_samples=351,
        n_dims=34,
        n_concepts=10,
        n_classes=2,
        clusters_per_class=6,
        class_separation=8.0,
        concept_std=1.2,
        noise_std=2.5,
        scale_spread=0.7,
        seed=seed,
        name="ionosphere-like",
    )


def arrhythmia_like(seed: int = 0) -> Dataset:
    """Stand-in for UCI Arrhythmia: 279 dims, 452 rows, 16 classes.

    The real Arrhythmia data mixes ECG measurements on wildly different
    scales, has near-constant columns, and rare classes.  The stand-in
    plants 10 concepts (the paper finds the arrhythmia optimum at the top
    10 eigenvectors), a per-dimension scale spread of 1.5 decades, 20
    constant columns, and a skewed class distribution (class 0 — the
    "normal" ECG — dominates).
    """
    weights = [0.54] + [0.46 / 15] * 15
    return latent_concept_dataset(
        n_samples=452,
        n_dims=259,
        n_concepts=10,
        n_classes=16,
        clusters_per_class=2,
        class_separation=6.0,
        concept_std=1.2,
        noise_std=2.5,
        scale_spread=1.5,
        n_constant_dims=20,
        class_weights=weights,
        seed=seed,
        name="arrhythmia-like",
    )


def _studentized_copy(dataset: Dataset) -> Dataset:
    """The dataset with every (non-constant) column at unit variance.

    The paper corrupts the *raw* UCI data with amplitude-60 uniform noise
    (variance 300).  The real Ionosphere features live in [-1, 1]
    (variance < 1), so the planted noise dominates the covariance
    spectrum by more than two orders of magnitude.  Our synthetic
    stand-ins have much larger raw scales, which would mute the planted
    noise; corrupting a unit-variance copy reproduces the paper's
    noise-to-signal variance ratio (~300 : 1) — the property the noisy
    experiments actually exercise.
    """
    result = studentize(dataset.features)
    metadata = dict(dataset.metadata)
    metadata["studentized_before_corruption"] = True
    return Dataset(
        name=dataset.name,
        features=result.features,
        labels=dataset.labels.copy(),
        metadata=metadata,
    )


def noisy_dataset_a(seed: int = 0) -> Dataset:
    """The paper's "noisy data set A": ionosphere with 10 of 34 dims
    replaced by uniform noise of amplitude 60 (Section 4.1)."""
    return corrupt_with_uniform(
        _studentized_copy(ionosphere_like(seed=seed)),
        n_dims=NOISY_A_CORRUPTED_DIMS,
        amplitude=NOISY_AMPLITUDE,
        seed=seed,
        name="noisy-A",
    )


def noisy_dataset_b(seed: int = 0) -> Dataset:
    """The paper's "noisy data set B": arrhythmia with ~10 of 279 dims
    replaced by uniform noise of amplitude 60 (Section 4.1).

    Studentization drops the 20 constant columns first, so the corruption
    hits 10 of the 259 informative dimensions.
    """
    return corrupt_with_uniform(
        _studentized_copy(arrhythmia_like(seed=seed)),
        n_dims=NOISY_B_CORRUPTED_DIMS,
        amplitude=NOISY_AMPLITUDE,
        seed=seed,
        name="noisy-B",
    )
