"""Dataset substrate.

Labeled high-dimensional datasets: a latent-concept generator, simple
uniform/Gaussian generators, UCI-like presets standing in for the paper's
Musk / Ionosphere / Arrhythmia data (no network access in this
environment — see DESIGN.md, "Substitutions"), the uniform-noise
corruption used for the paper's "noisy data sets A and B", and a CSV
loader so real UCI files drop in unchanged when available.
"""

from repro.datasets.types import Dataset
from repro.datasets.synthetic import (
    gaussian_blobs,
    latent_concept_dataset,
    uniform_cube,
)
from repro.datasets.uci_like import (
    arrhythmia_like,
    ionosphere_like,
    musk_like,
    noisy_dataset_a,
    noisy_dataset_b,
)
from repro.datasets.corruption import corrupt_with_uniform
from repro.datasets.loaders import load_csv_dataset

__all__ = [
    "Dataset",
    "arrhythmia_like",
    "corrupt_with_uniform",
    "gaussian_blobs",
    "ionosphere_like",
    "latent_concept_dataset",
    "load_csv_dataset",
    "musk_like",
    "noisy_dataset_a",
    "noisy_dataset_b",
    "uniform_cube",
]
