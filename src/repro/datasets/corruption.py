"""Synthetic corruption: replacing dimensions with uniform noise.

Section 4.1 of the paper builds its "noisy data set A/B" by picking a
subset of the original dimensions and replacing them with draws from a
uniform distribution of amplitude 60.  Because the replaced columns are
mutually uncorrelated but have huge variance (``a^2 / 12 = 300``), the
*largest* covariance eigenvalues now point at pure noise — the regime in
which eigenvalue ordering and coherence ordering disagree sharply.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.types import Dataset


def corrupt_with_uniform(
    dataset: Dataset,
    n_dims: int,
    amplitude: float,
    dims=None,
    seed: int = 0,
    name: str | None = None,
) -> Dataset:
    """Replace columns of a dataset with centered uniform noise.

    Args:
        dataset: the clean dataset.
        n_dims: how many columns to corrupt (ignored when ``dims`` is
            given explicitly).
        amplitude: total width ``a`` of the uniform distribution; values
            are drawn from ``[-a/2, a/2]`` so the noise is centered and
            has variance ``a^2 / 12``.
        dims: optional explicit column indices to corrupt; chosen
            uniformly at random without replacement when omitted.
        seed: RNG seed (controls both the column choice and the noise).
        name: name of the corrupted dataset; defaults to
            ``"<original>+noise"``.

    Returns:
        A new :class:`Dataset`; ``metadata["corrupted_dims"]`` records
        which columns were replaced (sorted), so experiments can verify
        which eigenvectors align with planted noise.
    """
    if amplitude <= 0:
        raise ValueError(f"amplitude must be positive, got {amplitude}")
    rng = np.random.default_rng(seed)

    if dims is not None:
        chosen = np.unique(np.asarray(dims, dtype=np.intp))
        if chosen.size == 0:
            raise ValueError("dims must not be empty")
        if chosen.min() < 0 or chosen.max() >= dataset.n_dims:
            raise ValueError(
                f"dims must lie in [0, {dataset.n_dims}), got {chosen}"
            )
    else:
        if not 1 <= n_dims <= dataset.n_dims:
            raise ValueError(
                f"n_dims must lie in [1, {dataset.n_dims}], got {n_dims}"
            )
        chosen = np.sort(rng.choice(dataset.n_dims, size=n_dims, replace=False))

    features = dataset.features.copy()
    half = amplitude / 2.0
    features[:, chosen] = rng.uniform(
        -half, half, size=(dataset.n_samples, chosen.size)
    )

    metadata = dict(dataset.metadata)
    metadata["corrupted_dims"] = [int(i) for i in chosen]
    metadata["corruption_amplitude"] = float(amplitude)
    return Dataset(
        name=f"{dataset.name}+noise" if name is None else name,
        features=features,
        labels=dataset.labels.copy(),
        metadata=metadata,
    )
