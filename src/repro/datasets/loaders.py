"""Loading real datasets from delimited text files.

The synthetic presets in :mod:`repro.datasets.uci_like` stand in for the
UCI files this environment cannot download; when the real files are
available, :func:`load_csv_dataset` reads them in the UCI layout (one row
per record, class label in one column, ``?`` for missing values) and the
entire experiment harness runs on them unchanged.
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.types import Dataset


def load_csv_dataset(
    path: str,
    label_column: int = -1,
    delimiter: str = ",",
    missing_token: str = "?",
    name: str | None = None,
) -> Dataset:
    """Load a labeled dataset from a delimited text file.

    Args:
        path: file to read.
        label_column: index of the class-label column (negative indices
            count from the end, UCI convention puts the label last).
        delimiter: field separator.
        missing_token: token marking a missing value; missing entries are
            imputed with the column mean (the standard treatment for the
            Arrhythmia data).  Non-numeric labels are mapped to dense
            integer codes in first-appearance order.
        name: dataset name; defaults to the file's base name.

    Raises:
        FileNotFoundError: when the file does not exist.
        ValueError: on ragged rows, empty files, or columns that are
            entirely missing.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)

    rows: list[list[str]] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            fields = [field.strip() for field in stripped.split(delimiter)]
            if rows and len(fields) != len(rows[0]):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(rows[0])} fields, "
                    f"got {len(fields)}"
                )
            rows.append(fields)

    if not rows:
        raise ValueError(f"{path} contains no data rows")
    n_columns = len(rows[0])
    label_index = label_column if label_column >= 0 else n_columns + label_column
    if not 0 <= label_index < n_columns:
        raise ValueError(
            f"label_column {label_column} out of range for {n_columns} columns"
        )

    label_codes: dict[str, int] = {}
    labels = np.empty(len(rows), dtype=np.int64)
    feature_columns = [c for c in range(n_columns) if c != label_index]
    features = np.empty((len(rows), len(feature_columns)))
    missing = np.zeros_like(features, dtype=bool)

    for i, fields in enumerate(rows):
        raw_label = fields[label_index]
        if raw_label not in label_codes:
            label_codes[raw_label] = len(label_codes)
        labels[i] = label_codes[raw_label]
        for j, column in enumerate(feature_columns):
            token = fields[column]
            if token == missing_token:
                missing[i, j] = True
                features[i, j] = 0.0
            else:
                try:
                    features[i, j] = float(token)
                except ValueError:
                    raise ValueError(
                        f"{path}: non-numeric feature value {token!r} in "
                        f"row {i + 1}, column {column}"
                    ) from None

    # Mean-impute missing entries, column by column.
    for j in range(features.shape[1]):
        column_missing = missing[:, j]
        if not column_missing.any():
            continue
        present = ~column_missing
        if not present.any():
            raise ValueError(
                f"{path}: feature column {feature_columns[j]} is entirely missing"
            )
        features[column_missing, j] = features[present, j].mean()

    return Dataset(
        name=os.path.basename(path) if name is None else name,
        features=features,
        labels=labels,
        metadata={
            "source": path,
            "label_codes": dict(label_codes),
            "imputed_cells": int(missing.sum()),
        },
    )
