"""The Table-1 summary: what aggressive reduction buys.

For each dataset the paper's Table 1 reports the full-dimensional
accuracy, the optimal accuracy and the dimensionality where it occurs,
and the accuracy/dimensionality of the conservative "1 %-thresholding"
rule (discard only eigenvalues below 1 % of the largest).  The
punchlines: the optimum sits at a *much* lower dimensionality than the
threshold rule chooses, beats it on accuracy, discards most of the
variance, and keeps almost none of the original neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.selection import select_by_threshold
from repro.evaluation.feature_stripping import DEFAULT_K
from repro.evaluation.precision_recall import neighbor_precision_recall
from repro.evaluation.sweeps import SweepResult, accuracy_sweep
from repro.linalg.pca import fit_pca


@dataclass(frozen=True)
class ReductionSummary:
    """One Table-1 row plus the supporting diagnostics.

    Attributes:
        dataset_name: dataset identifier.
        full_dimensionality: number of components at full rank (after
            preprocessing).
        full_accuracy: feature-stripping accuracy with everything kept.
        optimal_accuracy: peak accuracy over the sweep.
        optimal_dimensionality: components retained at the peak.
        threshold_accuracy: accuracy under 1 %-thresholding.
        threshold_dimensionality: components 1 %-thresholding keeps.
        variance_retained_at_optimum: fraction of total variance the
            optimal reduction keeps (strikingly small on noisy data).
        precision_at_optimum: overlap of the optimal representation's
            neighbors with the full-dimensional ones (the paper observes
            ~10 % — aggressive reduction does not try to mirror the
            original neighbors).
        sweep: the underlying accuracy curve.
    """

    dataset_name: str
    full_dimensionality: int
    full_accuracy: float
    optimal_accuracy: float
    optimal_dimensionality: int
    threshold_accuracy: float
    threshold_dimensionality: int
    variance_retained_at_optimum: float
    precision_at_optimum: float
    sweep: SweepResult


def reduction_summary(
    dataset,
    ordering: str = "eigenvalue",
    scale: bool = True,
    k: int = DEFAULT_K,
    threshold: float = 0.01,
    eigen_method: str = "numpy",
) -> ReductionSummary:
    """Compute one Table-1 row for a dataset.

    Args:
        dataset: a :class:`repro.datasets.Dataset`.
        ordering: component ranking for the sweep (Table 1 uses the
            standard eigenvalue ordering on normalized data).
        scale: studentize before PCA.
        k: neighbors per query.
        threshold: the eigenvalue-fraction cutoff of the baseline rule.
        eigen_method: eigensolver.
    """
    sweep = accuracy_sweep(
        dataset, ordering=ordering, scale=scale, k=k, eigen_method=eigen_method
    )
    d = int(sweep.component_order.size)
    optimal_dims, optimal_accuracy = sweep.optimal()

    pca = fit_pca(dataset.features, scale=scale, eigen_method=eigen_method)
    eigenvalues = pca.decomposition.eigenvalues
    threshold_indices = select_by_threshold(eigenvalues, threshold)
    threshold_dims = int(threshold_indices.size)

    # The threshold rule keeps an eigenvalue-order prefix; when the sweep
    # itself is eigenvalue-ordered the accuracy can be read off the curve.
    # For a coherence-ordered sweep it must be measured separately.
    if ordering == "eigenvalue":
        threshold_accuracy = sweep.accuracy_at(threshold_dims)
    else:
        from repro.evaluation.feature_stripping import feature_stripping_accuracy

        reduced = pca.transform(
            dataset.features, component_indices=threshold_indices
        )
        threshold_accuracy = feature_stripping_accuracy(
            reduced, dataset.labels, k=k
        )

    optimal_indices = sweep.component_order[:optimal_dims]
    variance_retained = pca.decomposition.energy_fraction(optimal_indices)

    full_representation = pca.transform(dataset.features)
    optimal_representation = pca.transform(
        dataset.features, component_indices=optimal_indices
    )
    precision, _ = neighbor_precision_recall(
        full_representation, optimal_representation, k=k
    )

    return ReductionSummary(
        dataset_name=dataset.name,
        full_dimensionality=d,
        full_accuracy=sweep.full_dimensional_accuracy,
        optimal_accuracy=optimal_accuracy,
        optimal_dimensionality=optimal_dims,
        threshold_accuracy=threshold_accuracy,
        threshold_dimensionality=threshold_dims,
        variance_retained_at_optimum=float(variance_retained),
        precision_at_optimum=float(precision),
        sweep=sweep,
    )
