"""Nearest-neighbor stability under query perturbation.

Section 1.1 of the paper: because the nearest and farthest neighbors of
a high-dimensional query sit at almost the same distance, "a small
relative perturbation of the target in a direction away from the nearest
neighbor could easily change the nearest neighbor into the furthest
neighbor and vice-versa" — proximity queries are not just slow, they are
*unstable*.  This module quantifies that:

* :func:`nearest_neighbor_churn` — perturb each query by a fraction of
  its nearest-neighbor distance and measure how often the top-k set
  changes;
* :func:`rank_displacement` — how far (in rank) the original nearest
  neighbor falls after the perturbation.

Reduction onto the coherent directions restores stability, which the
``bench_ablation_stability`` benchmark demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro.distances.metrics import squared_euclidean_matrix


def _validate(corpus, n_queries: int) -> np.ndarray:
    data = np.asarray(corpus, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"corpus must be 2-d, got shape {data.shape}")
    if data.shape[0] < 3:
        raise ValueError("need at least 3 corpus points")
    if n_queries < 1:
        raise ValueError("n_queries must be positive")
    return data


_DIRECTIONS = ("away", "random")


def _perturb(
    queries: np.ndarray,
    nearest: np.ndarray,
    nn_distances: np.ndarray,
    epsilon: float,
    direction: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """Move each query by ``epsilon`` times its NN distance.

    ``direction="away"`` is the paper's adversarial scenario: straight
    away from the current nearest neighbor, which inflates exactly that
    one distance.  ``direction="random"`` is the benign control: in high
    dimensionality a random direction is nearly orthogonal to every gap
    vector, so all distances inflate together and ranks barely move —
    the contrast between the two modes is itself instructive.
    """
    if direction not in _DIRECTIONS:
        raise ValueError(
            f"direction must be one of {_DIRECTIONS}, got {direction!r}"
        )
    if direction == "away":
        vectors = queries - nearest
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        unit = vectors / norms
    else:
        vectors = rng.normal(size=queries.shape)
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        unit = vectors / norms
    return queries + unit * (epsilon * nn_distances)[:, None]


def nearest_neighbor_churn(
    corpus,
    epsilon: float = 0.5,
    k: int = 1,
    n_queries: int = 50,
    direction: str = "away",
    seed: int = 0,
) -> float:
    """Fraction of queries whose top-``k`` set changes under perturbation.

    Queries are corpus points (leave-one-out); each is displaced by
    ``epsilon`` times its own nearest-neighbor distance — by default in
    the paper's adversarial direction, "away from the nearest neighbor"
    (Section 1.1).  A churn of 1.0 means every perturbed query retrieves
    a different top-``k`` set; stable geometry keeps it near 0 for small
    ``epsilon``.
    """
    data = _validate(corpus, n_queries)
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    n = data.shape[0]
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must lie in [1, {n - 1}], got {k}")

    rng = np.random.default_rng(seed)
    query_rows = rng.choice(n, size=min(n_queries, n), replace=False)
    queries = data[query_rows]

    squared = squared_euclidean_matrix(queries, data)
    squared[np.arange(queries.shape[0]), query_rows] = np.inf
    original_sets = [
        set(np.argpartition(row, k - 1)[:k].tolist()) for row in squared
    ]
    original_nn = np.argmin(squared, axis=1)
    nn_distances = np.sqrt(np.min(squared, axis=1))

    perturbed = _perturb(
        queries, data[original_nn], nn_distances, epsilon, direction, rng
    )
    squared_after = squared_euclidean_matrix(perturbed, data)
    squared_after[np.arange(queries.shape[0]), query_rows] = np.inf
    changed = 0
    for i, row in enumerate(squared_after):
        after = set(np.argpartition(row, k - 1)[:k].tolist())
        changed += int(after != original_sets[i])
    return changed / queries.shape[0]


def rank_displacement(
    corpus,
    epsilon: float = 0.5,
    n_queries: int = 50,
    direction: str = "away",
    seed: int = 0,
) -> float:
    """Mean post-perturbation rank of the original nearest neighbor.

    0 means the perturbed query still ranks its old nearest neighbor
    first; values approaching ``n/2`` mean the old nearest neighbor is
    indistinguishable from a random point — the meaninglessness regime.
    Reported as a fraction of the corpus size, in ``[0, 1)``.
    """
    data = _validate(corpus, n_queries)
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    n = data.shape[0]

    rng = np.random.default_rng(seed)
    query_rows = rng.choice(n, size=min(n_queries, n), replace=False)
    queries = data[query_rows]

    squared = squared_euclidean_matrix(queries, data)
    squared[np.arange(queries.shape[0]), query_rows] = np.inf
    original_nn = np.argmin(squared, axis=1)
    nn_distances = np.sqrt(np.min(squared, axis=1))

    perturbed = _perturb(
        queries, data[original_nn], nn_distances, epsilon, direction, rng
    )
    squared_after = squared_euclidean_matrix(perturbed, data)
    squared_after[np.arange(queries.shape[0]), query_rows] = np.inf

    displacements = []
    for i in range(queries.shape[0]):
        order = np.argsort(squared_after[i], kind="stable")
        rank = int(np.flatnonzero(order == original_nn[i])[0])
        displacements.append(rank / (n - 1))
    return float(np.mean(displacements))
