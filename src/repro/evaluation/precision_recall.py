"""Precision/recall against the full-dimensional neighbors.

These are the measures the paper argues are *insufficient* as quality
criteria: aggressive coherence-guided reduction often keeps only ~10 % of
the original nearest neighbors (Section 4) yet returns *better* ones.
The library still implements them because the contrast between low
precision and high feature-stripping accuracy is itself one of the
paper's headline results.

With the same neighbor count ``k`` on both sides, precision and recall
coincide (both are ``|overlap| / k``); the API exposes both names for
clarity at call sites.
"""

from __future__ import annotations

import numpy as np

from repro.distances.metrics import squared_euclidean_matrix


def _knn_indices(features: np.ndarray, k: int) -> np.ndarray:
    """Leave-one-out k-NN index lists, ``(n, k)``, deterministic ties."""
    squared = squared_euclidean_matrix(features)
    np.fill_diagonal(squared, np.inf)
    n = squared.shape[0]
    order = np.argsort(squared, axis=1, kind="stable")
    return order[:, :k]


def neighbor_overlap(reference_features, candidate_features, k: int) -> np.ndarray:
    """Per-query overlap between two representations' k-NN sets.

    Args:
        reference_features: ``(n, d1)`` — defines the "true" neighbors
            (the paper uses the full-dimensional data).
        candidate_features: ``(n, d2)`` — the representation under test
            (e.g. the reduced data); must describe the same ``n`` points
            in the same row order.
        k: neighbors per query.

    Returns:
        ``(n,)`` array of overlap counts in ``[0, k]``.
    """
    reference = np.asarray(reference_features, dtype=np.float64)
    candidate = np.asarray(candidate_features, dtype=np.float64)
    if reference.ndim != 2 or candidate.ndim != 2:
        raise ValueError("feature matrices must be 2-d")
    if reference.shape[0] != candidate.shape[0]:
        raise ValueError(
            "representations must describe the same points "
            f"({reference.shape[0]} vs {candidate.shape[0]} rows)"
        )
    n = reference.shape[0]
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must lie in [1, {n - 1}], got {k}")

    reference_knn = _knn_indices(reference, k)
    candidate_knn = _knn_indices(candidate, k)
    overlaps = np.empty(n, dtype=np.intp)
    for i in range(n):
        overlaps[i] = np.intersect1d(
            reference_knn[i], candidate_knn[i], assume_unique=True
        ).size
    return overlaps


def neighbor_precision_recall(
    reference_features, candidate_features, k: int
) -> tuple[float, float]:
    """Mean precision and recall of candidate k-NN vs reference k-NN.

    Both sides retrieve ``k`` neighbors, so the two values are equal;
    they are returned as a pair anyway so call sites read naturally.
    """
    overlaps = neighbor_overlap(reference_features, candidate_features, k)
    value = float(np.mean(overlaps) / k)
    return value, value
