"""Accuracy-vs-dimensionality sweeps.

Every "quality of similarity search" figure in the paper (Figures 5, 8,
11, 13 and 15) is the same computation: order the eigenvectors by some
rule, retain the first ``m``, measure feature-stripping accuracy, and
plot against ``m``.  :func:`accuracy_sweep` performs it efficiently by
accumulating the pairwise squared-distance matrix one component at a
time — adding component ``t`` costs one rank-1 update of the ``(n, n)``
matrix, so the full curve over all dimensionalities costs ``O(n^2 d)``
rather than ``O(n^2 d^2)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coherence import analyze_coherence
from repro.core.selection import select_by_coherence, select_by_eigenvalue
from repro.evaluation.feature_stripping import DEFAULT_K, knn_label_matches
from repro.linalg.pca import fit_pca

_ORDERINGS = ("eigenvalue", "coherence")


@dataclass(frozen=True)
class SweepResult:
    """An accuracy-vs-dimensionality curve.

    Attributes:
        dims: number of retained components at each measurement.
        accuracies: feature-stripping accuracy at each measurement.
        ordering: ``"eigenvalue"`` or ``"coherence"``.
        scaled: whether PCA ran on studentized data.
        dataset_name: provenance for reports.
        component_order: the full selection order used (indices into
            descending eigenvalue order); prefix ``m`` gives the retained
            set at ``dims == m``.
    """

    dims: np.ndarray
    accuracies: np.ndarray
    ordering: str
    scaled: bool
    dataset_name: str
    component_order: np.ndarray

    def optimal(self) -> tuple[int, float]:
        """(dimensionality, accuracy) at the curve's maximum.

        The first maximum wins, i.e. the smallest dimensionality reaching
        peak accuracy — matching how the paper reads its curves.
        """
        best = int(np.argmax(self.accuracies))
        return int(self.dims[best]), float(self.accuracies[best])

    def accuracy_at(self, n_dims: int) -> float:
        """Accuracy at an exact measured dimensionality."""
        matches = np.flatnonzero(self.dims == n_dims)
        if matches.size == 0:
            raise ValueError(
                f"dimensionality {n_dims} was not measured; "
                f"available: {self.dims.tolist()}"
            )
        return float(self.accuracies[matches[0]])

    @property
    def full_dimensional_accuracy(self) -> float:
        """Accuracy with every component retained (pure rotation).

        Rotations preserve Euclidean distances, so this equals the
        accuracy of the (preprocessed) original data.  Requires the full
        dimensionality to be on the measurement grid.
        """
        return self.accuracy_at(int(self.component_order.size))


def accuracy_sweep(
    dataset,
    ordering: str = "eigenvalue",
    scale: bool = False,
    k: int = DEFAULT_K,
    dims=None,
    eigen_method: str = "numpy",
) -> SweepResult:
    """Feature-stripping accuracy as a function of retained components.

    Args:
        dataset: a :class:`repro.datasets.Dataset`.
        ordering: which selection rule ranks the components.
        scale: studentize before PCA.
        k: neighbors per query (the paper uses 3).
        dims: measurement grid (component counts); every count from 1 to
            the working dimensionality when omitted.
        eigen_method: eigensolver.

    Returns:
        A :class:`SweepResult`; measurements are sorted by dimensionality.
    """
    if ordering not in _ORDERINGS:
        raise ValueError(f"ordering must be one of {_ORDERINGS}, got {ordering!r}")

    pca = fit_pca(dataset.features, scale=scale, eigen_method=eigen_method)
    analysis = analyze_coherence(pca, dataset.features)
    d = analysis.n_components

    if ordering == "eigenvalue":
        order = select_by_eigenvalue(analysis.eigenvalues, d)
    else:
        order = select_by_coherence(
            analysis.coherence_probabilities, d, tie_break=analysis.eigenvalues
        )

    if dims is None:
        grid = np.arange(1, d + 1)
    else:
        grid = np.unique(np.asarray(dims, dtype=np.intp))
        if grid.size == 0 or grid[0] < 1 or grid[-1] > d:
            raise ValueError(f"dims must lie in [1, {d}], got {grid.tolist()}")

    # Project once; accumulate squared distances component by component.
    coordinates = pca.transform(dataset.features, component_indices=order)
    n = coordinates.shape[0]
    labels = dataset.labels
    squared = np.zeros((n, n))
    accuracies = np.empty(grid.size)

    grid_positions = {int(m): j for j, m in enumerate(grid)}
    for t in range(int(grid[-1])):
        column = coordinates[:, t]
        squared += np.square(column[:, None] - column[None, :])
        m = t + 1
        if m in grid_positions:
            matches = knn_label_matches(squared, labels, k)
            accuracies[grid_positions[m]] = matches / (n * k)

    return SweepResult(
        dims=grid.astype(np.intp),
        accuracies=accuracies,
        ordering=ordering,
        scaled=scale,
        dataset_name=dataset.name,
        component_order=order,
    )
