"""Extended evaluation protocols.

The paper evaluates leave-one-out over the whole dataset; production
systems and careful reproductions also want:

* :func:`holdout_accuracy` — fit the reducer on a training split, query
  with held-out points, score their neighbors' labels.  Unlike
  leave-one-out this measures the *transform path* (new points through a
  fitted model), which is what an index actually serves.
* :func:`per_class_accuracy` — the label-match rate broken down by the
  query's class; rare classes can be destroyed by reduction even when the
  aggregate number looks fine.
* :func:`bootstrap_confidence_interval` — a percentile bootstrap over
  queries, so accuracy differences between methods can be judged against
  sampling noise.
"""

from __future__ import annotations

import numpy as np

from repro.distances.metrics import squared_euclidean_matrix
from repro.evaluation.feature_stripping import DEFAULT_K


def train_query_split(
    n_samples: int, query_fraction: float = 0.25, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Disjoint (train_rows, query_rows) index arrays."""
    if n_samples < 2:
        raise ValueError("need at least two samples to split")
    if not 0.0 < query_fraction < 1.0:
        raise ValueError(
            f"query_fraction must lie in (0, 1), got {query_fraction}"
        )
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(n_samples)
    n_query = max(1, int(round(n_samples * query_fraction)))
    n_query = min(n_query, n_samples - 1)
    return np.sort(permutation[n_query:]), np.sort(permutation[:n_query])


def _knn_matches_per_query(
    corpus_features: np.ndarray,
    corpus_labels: np.ndarray,
    query_features: np.ndarray,
    query_labels: np.ndarray,
    k: int,
) -> np.ndarray:
    """Per-query fraction of the k retrieved neighbors sharing the label."""
    if not 1 <= k <= corpus_features.shape[0]:
        raise ValueError(
            f"k must lie in [1, {corpus_features.shape[0]}], got {k}"
        )
    squared = squared_euclidean_matrix(query_features, corpus_features)
    neighbor_indices = np.argpartition(squared, k - 1, axis=1)[:, :k]
    neighbor_labels = corpus_labels[neighbor_indices]
    return np.mean(neighbor_labels == query_labels[:, None], axis=1)


def holdout_accuracy(
    reducer,
    dataset,
    query_fraction: float = 0.25,
    k: int = DEFAULT_K,
    seed: int = 0,
) -> float:
    """Fit on a train split, evaluate held-out queries through transform.

    Args:
        reducer: any object with ``fit(features)`` and
            ``transform(features)`` (CoherenceReducer, the baselines, …).
        dataset: a :class:`repro.datasets.Dataset`.
        query_fraction: held-out share.
        k: neighbors per query.
        seed: split seed.

    Returns:
        Mean label-match fraction over the held-out queries.
    """
    train_rows, query_rows = train_query_split(
        dataset.n_samples, query_fraction, seed
    )
    reducer.fit(dataset.features[train_rows])
    corpus = reducer.transform(dataset.features[train_rows])
    queries = reducer.transform(dataset.features[query_rows])
    matches = _knn_matches_per_query(
        corpus,
        dataset.labels[train_rows],
        queries,
        dataset.labels[query_rows],
        k,
    )
    return float(np.mean(matches))


def per_class_accuracy(
    features, labels, k: int = DEFAULT_K
) -> dict[int, float]:
    """Leave-one-out label-match rate, broken down by query class."""
    data = np.asarray(features, dtype=np.float64)
    classes = np.asarray(labels)
    if data.ndim != 2 or classes.shape != (data.shape[0],):
        raise ValueError("features must be (n, d) with aligned labels")
    n = data.shape[0]
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must lie in [1, {n - 1}], got {k}")
    squared = squared_euclidean_matrix(data)
    np.fill_diagonal(squared, np.inf)
    neighbor_indices = np.argpartition(squared, k - 1, axis=1)[:, :k]
    per_query = np.mean(classes[neighbor_indices] == classes[:, None], axis=1)
    return {
        int(value): float(np.mean(per_query[classes == value]))
        for value in np.unique(classes)
    }


def bootstrap_confidence_interval(
    features,
    labels,
    k: int = DEFAULT_K,
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Percentile-bootstrap CI for the feature-stripping accuracy.

    Resamples *queries* (the neighbor structure stays fixed, which is the
    standard conditional bootstrap for retrieval metrics).

    Returns:
        ``(point_estimate, lower, upper)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError("n_resamples must be positive")
    data = np.asarray(features, dtype=np.float64)
    classes = np.asarray(labels)
    n = data.shape[0]
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must lie in [1, {n - 1}], got {k}")

    squared = squared_euclidean_matrix(data)
    np.fill_diagonal(squared, np.inf)
    neighbor_indices = np.argpartition(squared, k - 1, axis=1)[:, :k]
    per_query = np.mean(classes[neighbor_indices] == classes[:, None], axis=1)

    rng = np.random.default_rng(seed)
    resampled = rng.choice(per_query, size=(n_resamples, n), replace=True)
    means = resampled.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(means, [alpha, 1.0 - alpha])
    return float(per_query.mean()), float(lower), float(upper)
