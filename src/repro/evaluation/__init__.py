"""Evaluation harness.

The paper's feature-stripping quality protocol, precision/recall against
full-dimensional neighbors, accuracy-vs-dimensionality sweeps, the Table-1
summary logic, and plain-text reporting for the benchmark harness.
"""

from repro.evaluation.feature_stripping import (
    feature_stripping_accuracy,
    knn_label_matches,
)
from repro.evaluation.precision_recall import (
    neighbor_overlap,
    neighbor_precision_recall,
)
from repro.evaluation.protocols import (
    bootstrap_confidence_interval,
    holdout_accuracy,
    per_class_accuracy,
    train_query_split,
)
from repro.evaluation.stability import (
    nearest_neighbor_churn,
    rank_displacement,
)
from repro.evaluation.sweeps import SweepResult, accuracy_sweep
from repro.evaluation.summary import ReductionSummary, reduction_summary
from repro.evaluation.reporting import (
    format_series,
    format_table,
    render_ascii_chart,
)

__all__ = [
    "ReductionSummary",
    "SweepResult",
    "accuracy_sweep",
    "bootstrap_confidence_interval",
    "holdout_accuracy",
    "per_class_accuracy",
    "train_query_split",
    "feature_stripping_accuracy",
    "format_series",
    "format_table",
    "knn_label_matches",
    "nearest_neighbor_churn",
    "neighbor_overlap",
    "neighbor_precision_recall",
    "rank_displacement",
    "reduction_summary",
    "render_ascii_chart",
]
