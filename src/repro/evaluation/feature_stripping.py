"""The feature-stripping quality protocol (Section 4).

The paper needs a hard criterion for the *quality* of nearest neighbors
that does not rely on human judgement: strip a semantic attribute (the
class label) from the data, find each point's k = 3 nearest neighbors
without it, and count how often the stripped attribute of a neighbor
matches that of the query.  "The prediction accuracy is the total number
of the nearest neighbors (over all queries) for which the semantic
variables match between the target and nearest neighbor" — i.e. the
match fraction over all ``n * k`` (query, neighbor) pairs, leave-one-out.
"""

from __future__ import annotations

import numpy as np

from repro.distances.metrics import squared_euclidean_matrix

DEFAULT_K = 3


def _validate(features, labels) -> tuple[np.ndarray, np.ndarray]:
    data = np.asarray(features, dtype=np.float64)
    classes = np.asarray(labels)
    if data.ndim != 2:
        raise ValueError(f"features must be 2-d, got shape {data.shape}")
    if classes.shape != (data.shape[0],):
        raise ValueError(
            f"labels must have shape ({data.shape[0]},), got {classes.shape}"
        )
    if not np.all(np.isfinite(data)):
        raise ValueError("features must be finite")
    return data, classes


def knn_label_matches(
    squared_distances: np.ndarray, labels: np.ndarray, k: int
) -> int:
    """Count label matches among each row's k nearest columns.

    Args:
        squared_distances: ``(n, n)`` matrix; the diagonal is ignored
            (each point is excluded from its own neighbor list).
        labels: ``(n,)`` class labels.
        k: neighbors per query.

    Returns:
        Total matches over all ``n * k`` (query, neighbor) pairs.
    """
    n = squared_distances.shape[0]
    if squared_distances.shape != (n, n):
        raise ValueError("squared_distances must be square")
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must lie in [1, {n - 1}], got {k}")

    # Exclude self-matches without mutating the caller's matrix.
    work = squared_distances.copy()
    np.fill_diagonal(work, np.inf)
    neighbor_indices = np.argpartition(work, k - 1, axis=1)[:, :k]
    neighbor_labels = labels[neighbor_indices]
    return int(np.sum(neighbor_labels == labels[:, None]))


def feature_stripping_accuracy(features, labels, k: int = DEFAULT_K) -> float:
    """Leave-one-out k-NN class prediction accuracy.

    Args:
        features: ``(n, d)`` representation to search in (the semantic
            label is *not* part of it — that is the whole point).
        labels: ``(n,)`` stripped semantic attribute.
        k: neighbors per query (the paper uses 3).

    Returns:
        Match fraction in ``[0, 1]`` over all ``n * k`` pairs.
    """
    data, classes = _validate(features, labels)
    n = data.shape[0]
    if n < 2:
        raise ValueError("need at least two points for leave-one-out search")
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must lie in [1, {n - 1}], got {k}")
    squared = squared_euclidean_matrix(data)
    matches = knn_label_matches(squared, classes, k)
    return matches / (n * k)
