"""Plain-text reporting for the benchmark harness.

Every benchmark regenerates a table or figure of the paper as text:
tables render through :func:`format_table`, figure series through
:func:`format_series` (aligned columns) or :func:`render_ascii_chart`
(a quick visual of the curve shapes).
"""

from __future__ import annotations

import numpy as np


def _format_cell(value) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        return f"{value:.4f}"
    return str(value)


def format_table(headers, rows, title: str | None = None) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: iterable of row value sequences (floats are formatted with
            four decimals).
        title: optional heading line.
    """
    header_cells = [str(h) for h in headers]
    body = [[_format_cell(value) for value in row] for row in rows]
    for i, row in enumerate(body):
        if len(row) != len(header_cells):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are "
                f"{len(header_cells)} headers"
            )

    widths = [len(h) for h in header_cells]
    for row in body:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells):
        return " | ".join(cell.ljust(widths[j]) for j, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(header_cells))
    parts.append(separator)
    parts.extend(line(row) for row in body)
    return "\n".join(parts)


def format_series(
    x_values,
    y_columns: dict,
    x_label: str = "x",
    title: str | None = None,
) -> str:
    """Render one or more aligned series over a shared x axis.

    Args:
        x_values: shared abscissa.
        y_columns: mapping of series name to values (each aligned with
            ``x_values``).
        x_label: header for the x column.
        title: optional heading line.
    """
    xs = list(x_values)
    for name, ys in y_columns.items():
        if len(list(ys)) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(list(ys))} values for "
                f"{len(xs)} x points"
            )
    headers = [x_label] + list(y_columns)
    rows = [
        [x] + [y_columns[name][i] for name in y_columns]
        for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def render_ascii_chart(
    x_values,
    y_columns: dict,
    height: int = 12,
    width: int = 72,
    title: str | None = None,
) -> str:
    """A rough terminal line chart — enough to see curve shapes.

    Each series gets a marker character; points are binned onto a
    ``width x height`` character grid scaled to the joint y range.
    """
    xs = np.asarray(list(x_values), dtype=np.float64)
    if xs.size == 0:
        raise ValueError("x_values must not be empty")
    markers = "*o+x#@%&"
    series = {
        name: np.asarray(list(ys), dtype=np.float64)
        for name, ys in y_columns.items()
    }
    if not series:
        raise ValueError("y_columns must not be empty")
    for name, ys in series.items():
        if ys.shape != xs.shape:
            raise ValueError(f"series {name!r} is not aligned with x_values")

    all_y = np.concatenate(list(series.values()))
    y_min, y_max = float(np.min(all_y)), float(np.max(all_y))
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(np.min(xs)), float(np.max(xs))
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_index, (name, ys) in enumerate(series.items()):
        marker = markers[s_index % len(markers)]
        for x, y in zip(xs, ys):
            column = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.4f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.4f} +" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<10.4g}" + " " * max(0, width - 20) + f"{x_max:>10.4g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
