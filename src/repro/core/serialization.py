"""Saving and loading fitted reducers.

A production similarity index fits its reduction offline and ships the
fitted transform to query servers.  :func:`save_reducer` /
:func:`load_reducer` persist a fitted :class:`CoherenceReducer` as a
single ``.npz`` file: the construction parameters, the preprocessing
statistics (mean/scales/kept columns), the full eigendecomposition, the
coherence analysis, and the selection — everything :meth:`transform`
needs, so a loaded reducer projects new queries bit-identically to the
original.

The search indexes persist the same way through the snapshot layer; its
entry points (:func:`~repro.search.snapshot.save_index`,
:func:`~repro.search.snapshot.load_index`,
:class:`~repro.search.snapshot.SnapshotError`) are re-exported here so
one module covers everything a serving process ships to disk.
"""

from __future__ import annotations

import numpy as np

from repro.core.coherence import CoherenceAnalysis
from repro.core.reducer import CoherenceReducer
from repro.linalg.eigen import EigenDecomposition
from repro.linalg.pca import PrincipalComponents
from repro.search.snapshot import (  # noqa: F401  (re-exported API)
    SnapshotError,
    load_index,
    save_index,
)

_FORMAT_VERSION = 1


def save_reducer(reducer: CoherenceReducer, path: str) -> None:
    """Persist a fitted reducer to ``path`` (``.npz``).

    Raises:
        RuntimeError: if the reducer is not fitted.
    """
    if reducer.pca_ is None:
        raise RuntimeError("cannot save an unfitted reducer; call fit() first")
    pca = reducer.pca_
    analysis = reducer.analysis_
    np.savez(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        ordering=np.bytes_(reducer.ordering.encode()),
        scale=np.bool_(reducer.scale),
        whiten=np.bool_(reducer.whiten),
        n_components=np.int64(
            -1 if reducer.n_components is None else reducer.n_components
        ),
        threshold=np.float64(
            np.nan if reducer.threshold is None else reducer.threshold
        ),
        energy=np.float64(np.nan if reducer.energy is None else reducer.energy),
        eigen_method=np.bytes_(reducer.eigen_method.encode()),
        means=pca.means,
        scales=np.zeros(0) if pca.scales is None else pca.scales,
        kept_columns=pca.kept_columns,
        eigenvalues=pca.decomposition.eigenvalues,
        eigenvectors=pca.decomposition.eigenvectors,
        coherence_probabilities=analysis.coherence_probabilities,
        mean_coherence_factors=analysis.mean_coherence_factors,
        selected=reducer.selected_,
    )


def load_reducer(path: str) -> CoherenceReducer:
    """Load a reducer saved by :func:`save_reducer`.

    The returned reducer is fitted: :meth:`transform` works immediately
    and reproduces the original's output exactly.
    """
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported reducer file version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        n_components = int(archive["n_components"])
        threshold = float(archive["threshold"])
        energy = float(archive["energy"])
        reducer = CoherenceReducer(
            n_components=None if n_components < 0 else n_components,
            ordering=bytes(archive["ordering"]).decode(),
            scale=bool(archive["scale"]),
            whiten=bool(archive["whiten"]) if "whiten" in archive.files else False,
            threshold=None if np.isnan(threshold) else threshold,
            energy=None if np.isnan(energy) else energy,
            eigen_method=bytes(archive["eigen_method"]).decode(),
        )
        scales = archive["scales"]
        decomposition = EigenDecomposition(
            eigenvalues=archive["eigenvalues"],
            eigenvectors=archive["eigenvectors"],
        )
        reducer.pca_ = PrincipalComponents(
            decomposition=decomposition,
            means=archive["means"],
            scales=None if scales.size == 0 else scales,
            kept_columns=archive["kept_columns"].astype(np.intp),
            scaled=bool(archive["scale"]),
        )
        reducer.analysis_ = CoherenceAnalysis(
            eigenvalues=archive["eigenvalues"],
            coherence_probabilities=archive["coherence_probabilities"],
            mean_coherence_factors=archive["mean_coherence_factors"],
            scaled=bool(archive["scale"]),
        )
        reducer.selected_ = archive["selected"].astype(np.intp)
        reducer.components_ = decomposition.basis(reducer.selected_)
    return reducer
