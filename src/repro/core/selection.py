"""Eigenvector selection strategies.

All strategies take quantities aligned with the library convention —
eigenvalues sorted descending, coherence probabilities aligned with them —
and return *indices into that descending-eigenvalue order*, most-preferred
first.  Retaining "the first k of a selection" is therefore always
well-defined, which is what the accuracy-vs-dimensionality sweeps rely on.

Strategies:

* :func:`select_by_eigenvalue` — the classical rule: keep the directions
  with the greatest variance (least information loss).
* :func:`select_by_coherence` — the paper's rule: keep the directions
  with the greatest coherence probability, i.e. the strongest evidence of
  correlated, non-noise structure.  Ties (probabilities saturate at 1.0
  in double precision) are broken by a secondary key, by default the
  eigenvalue.
* :func:`select_by_threshold` — the "1 %-thresholding" baseline of
  Table 1: discard eigenvalues below a fraction of the largest one.
* :func:`select_by_energy` — keep the smallest prefix of eigenvalue order
  that preserves a target fraction of total variance.
"""

from __future__ import annotations

import numpy as np


def _validate_eigenvalues(eigenvalues) -> np.ndarray:
    values = np.asarray(eigenvalues, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("eigenvalues must be a non-empty 1-d array")
    if np.any(np.diff(values) > 1e-9 * max(1.0, float(np.abs(values).max()))):
        raise ValueError("eigenvalues must be sorted in descending order")
    if np.any(values < -1e-9 * max(1.0, float(np.abs(values).max()))):
        raise ValueError("covariance eigenvalues must be non-negative")
    return values


def _validate_k(k: int, limit: int) -> int:
    if not 1 <= k <= limit:
        raise ValueError(f"k must lie in [1, {limit}], got {k}")
    return int(k)


def select_by_eigenvalue(eigenvalues, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-eigenvalue components: ``[0, …, k-1]``."""
    values = _validate_eigenvalues(eigenvalues)
    k = _validate_k(k, values.size)
    return np.arange(k, dtype=np.intp)


def select_by_coherence(
    coherence_probabilities,
    k: int,
    tie_break=None,
) -> np.ndarray:
    """Indices of the ``k`` most coherent components, most coherent first.

    Args:
        coherence_probabilities: ``P(D, e_i)`` aligned with descending
            eigenvalue order.
        k: how many components to keep.
        tie_break: optional secondary key (same alignment; larger wins);
            pass the eigenvalues to prefer high-variance directions among
            equally coherent ones.  Without it, ties resolve toward the
            larger eigenvalue anyway because position in the array encodes
            eigenvalue rank and the sort is made stable on that position.
    """
    probabilities = np.asarray(coherence_probabilities, dtype=np.float64)
    if probabilities.ndim != 1 or probabilities.size == 0:
        raise ValueError("coherence_probabilities must be a non-empty 1-d array")
    if np.any(probabilities < -1e-12) or np.any(probabilities > 1.0 + 1e-12):
        raise ValueError("coherence probabilities must lie in [0, 1]")
    k = _validate_k(k, probabilities.size)

    if tie_break is not None:
        secondary = np.asarray(tie_break, dtype=np.float64)
        if secondary.shape != probabilities.shape:
            raise ValueError(
                "tie_break must align with coherence_probabilities"
            )
    else:
        # Positions encode descending eigenvalue rank; preferring lower
        # positions among ties prefers larger eigenvalues.
        secondary = -np.arange(probabilities.size, dtype=np.float64)

    # lexsort: last key is primary.  Negate for descending order.
    order = np.lexsort((-secondary, -probabilities))
    return order[:k].astype(np.intp)


def select_by_threshold(eigenvalues, fraction: float = 0.01) -> np.ndarray:
    """Keep eigenvalues of at least ``fraction`` times the largest.

    The paper's "1 %-thresholding" baseline (Table 1): only eigenvalues
    below 1 % of the largest are discarded — a conservative rule whose
    retained dimensionality stays close to full.  Always keeps at least
    the leading component.
    """
    values = _validate_eigenvalues(eigenvalues)
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    cutoff = fraction * values[0]
    kept = int(np.sum(values >= cutoff))
    return np.arange(max(1, kept), dtype=np.intp)


def select_by_energy(eigenvalues, energy: float = 0.95) -> np.ndarray:
    """Smallest eigenvalue-order prefix preserving ``energy`` of variance.

    The classical precision-preserving rule the paper contrasts itself
    against (Ravi Kanth et al.): reduce only to the point where the
    retained variance stays above the target.
    """
    values = _validate_eigenvalues(eigenvalues)
    if not 0.0 < energy <= 1.0:
        raise ValueError(f"energy must lie in (0, 1], got {energy}")
    total = float(np.sum(values))
    if total == 0.0:
        return np.arange(1, dtype=np.intp)
    cumulative = np.cumsum(values) / total
    kept = int(np.searchsorted(cumulative, energy - 1e-12) + 1)
    return np.arange(min(kept, values.size), dtype=np.intp)


# Below this largest-gap size the coherence spectrum is considered flat:
# structureless (uniform-like) data produces gaps well under this, planted
# concepts produce gaps far above it.
FLAT_SPECTRUM_GAP = 0.05


def select_automatic(
    coherence_probabilities,
    tie_break=None,
    flat_gap: float = FLAT_SPECTRUM_GAP,
) -> np.ndarray:
    """The paper's "intuitive cut-off": keep everything above the big gap.

    Section 4 reads the scatter plots by eye: the concept vectors stand
    apart from the noise tail, and "by examining the nature of the
    distribution ... it is possible to provide a good intuitive judgement
    for the cut-off point."  This automates that judgement: sort the
    coherence probabilities descending, find the largest gap between
    consecutive values, and keep everything above it.

    A flat spectrum (largest gap below ``flat_gap``) means the data has
    no concept/noise separation — the Section 3 regime — and *all*
    components are returned, because dropping any would lose information.

    Args:
        coherence_probabilities: ``P(D, e_i)`` aligned with descending
            eigenvalue order.
        tie_break: optional secondary key, as in
            :func:`select_by_coherence`.
        flat_gap: gap size below which the spectrum is declared flat.

    Returns:
        Selected indices, most coherent first.
    """
    probabilities = np.asarray(coherence_probabilities, dtype=np.float64)
    if probabilities.ndim != 1 or probabilities.size == 0:
        raise ValueError("coherence_probabilities must be a non-empty 1-d array")
    if not 0.0 < flat_gap < 1.0:
        raise ValueError(f"flat_gap must lie in (0, 1), got {flat_gap}")

    order = select_by_coherence(
        probabilities, probabilities.size, tie_break=tie_break
    )
    sorted_cp = probabilities[order]
    if sorted_cp.size == 1:
        return order

    gaps = sorted_cp[:-1] - sorted_cp[1:]
    largest = int(np.argmax(gaps))
    if gaps[largest] < flat_gap:
        return order  # flat spectrum: retain everything (Section 3)
    return order[: largest + 1]
