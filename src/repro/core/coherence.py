"""The coherence model of Section 2.

For a centered point ``X`` and a unit eigenvector ``e``, the projection
``X . e`` is the sum of per-dimension contributions ``c_j = x_j * e_j``.
Hypothesis 2.1 models the ``c_j`` as i.i.d. draws from a zero-mean
distribution; under it, the average contribution ``(X . e)/d`` is
approximately normal with standard error ``sigma / sqrt(d)`` where
``sigma = sqrt(mean(c_j^2))``.  The **coherence factor**

    CF(X, e) = (|X . e| / d) / (sigma / sqrt(d)) = |X . e| / ||c||_2

is the z-score of the observed average (the second form follows by
algebra and is how the vectorized code computes it), and the
**coherence probability** ``CP = 2 Phi(CF) - 1`` is the normal mass
within CF standard errors of zero.  ``P(D, e)`` averages CP over the
dataset and is the quantity the selection rule ranks eigenvectors by.

Properties worth knowing (all pinned by tests):

* ``0 <= CF <= sqrt(d)`` by Cauchy–Schwarz; the maximum is attained when
  every dimension contributes the same value (perfect agreement).
* A single-dimension contribution gives CF = 1 exactly, so an eigenvector
  aligned with one raw axis — e.g. one pointing at an uncorrelated noise
  dimension — scores ``CP = 2 Phi(1) - 1 ≈ 0.6827`` regardless of its
  eigenvalue.  That is the paper's uniform-data baseline (Section 3).
* CF is invariant to the sign and to positive rescaling of ``e``, and to
  a simultaneous permutation of the dimensions of ``X`` and ``e``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.descriptive import fractional_ranks
from repro.stats.normal import symmetric_mass

# CP of an eigenvector that behaves like uncorrelated noise (CF = 1).
UNIFORM_BASELINE_CP = float(symmetric_mass(1.0))


def contribution_vector(point, eigenvector) -> np.ndarray:
    """The per-dimension contributions ``c_j = x_j * e_j`` for one point.

    This is the decomposition ``X . e = X_1 . e + … + X_d . e`` of the
    paper's Equation 1, with ``X_j`` the point masked to dimension ``j``.
    """
    x = np.asarray(point, dtype=np.float64)
    e = np.asarray(eigenvector, dtype=np.float64)
    if x.ndim != 1 or e.ndim != 1 or x.shape != e.shape:
        raise ValueError(
            f"point and eigenvector must be 1-d with equal shapes, "
            f"got {x.shape} and {e.shape}"
        )
    return x * e


def _validate_inputs(features, eigenvectors) -> tuple[np.ndarray, np.ndarray]:
    data = np.asarray(features, dtype=np.float64)
    basis = np.asarray(eigenvectors, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"features must be 2-d, got shape {data.shape}")
    if basis.ndim != 2:
        raise ValueError(f"eigenvectors must be 2-d, got shape {basis.shape}")
    if basis.shape[0] != data.shape[1]:
        raise ValueError(
            f"eigenvectors have {basis.shape[0]} rows but features have "
            f"{data.shape[1]} columns"
        )
    if not (np.all(np.isfinite(data)) and np.all(np.isfinite(basis))):
        raise ValueError("features and eigenvectors must be finite")
    return data, basis


def coherence_factors(features, eigenvectors) -> np.ndarray:
    """Coherence factors for every (point, eigenvector) pair.

    Args:
        features: ``(n, d)`` matrix of *centered* points.  (The caller is
            responsible for centering; the coherence model is defined
            about the data mean.  :class:`CoherenceReducer` handles this
            automatically.)
        eigenvectors: ``(d, m)`` matrix whose columns are directions.

    Returns:
        ``(n, m)`` matrix of coherence factors.  Points whose
        contribution vector is identically zero along a direction carry
        no evidence and score 0.
    """
    data, basis = _validate_inputs(features, eigenvectors)
    projections = data @ basis
    # sum_j c_j^2 = sum_j x_j^2 e_j^2, one matrix multiply.
    sum_squares = np.square(data) @ np.square(basis)
    factors = np.zeros_like(projections)
    nonzero = sum_squares > 0.0
    factors[nonzero] = np.abs(projections[nonzero]) / np.sqrt(
        sum_squares[nonzero]
    )
    return factors


def coherence_probabilities(features, eigenvectors) -> np.ndarray:
    """``2 Phi(CF) - 1`` for every (point, eigenvector) pair."""
    return symmetric_mass(coherence_factors(features, eigenvectors))


def dataset_coherence(features, eigenvectors) -> np.ndarray:
    """``P(D, e_i)`` — mean coherence probability per eigenvector.

    Equation 3 of the paper.  Returns an ``(m,)`` vector, one entry per
    eigenvector column.
    """
    return np.mean(coherence_probabilities(features, eigenvectors), axis=0)


@dataclass(frozen=True)
class CoherenceAnalysis:
    """The coherence profile of a dataset under a PCA eigenbasis.

    This is the data behind every scatter plot in the paper's evaluation
    (eigenvalue magnitude vs. coherence probability, Figures 3, 6, 9, 12
    and 14).

    Attributes:
        eigenvalues: ``(m,)`` eigenvalues, descending.
        coherence_probabilities: ``(m,)`` dataset coherence ``P(D, e_i)``
            aligned with ``eigenvalues``.
        mean_coherence_factors: ``(m,)`` dataset-mean coherence factors
            (useful for ranking when probabilities saturate at 1).
        scaled: whether the analysis ran on studentized data.
    """

    eigenvalues: np.ndarray
    coherence_probabilities: np.ndarray
    mean_coherence_factors: np.ndarray
    scaled: bool

    @property
    def n_components(self) -> int:
        return self.eigenvalues.size

    def scatter_points(self) -> list[tuple[float, float]]:
        """(coherence probability, eigenvalue) pairs, one per eigenvector.

        The exact axes of the paper's scatter figures.
        """
        return [
            (float(cp), float(ev))
            for cp, ev in zip(self.coherence_probabilities, self.eigenvalues)
        ]

    def rank_correlation(self) -> float:
        """Spearman rank correlation between eigenvalue and coherence order.

        Near 1 on clean data (eigenvalue magnitude and coherence agree,
        Section 4); low or negative on noisy data (Section 4.1), which is
        precisely when the coherence ordering pays off.

        Ties receive average (fractional) ranks, the standard Spearman
        treatment.  This matters here: coherence probabilities saturate
        at exactly 1.0 on strongly coherent eigenvectors (the paper's
        own scatter figures show saturated bands), and ranking those
        ties arbitrarily would turn the reported correlation into noise.
        A fully saturated (all-equal) coherence profile has no ordering
        information at all and yields 0.0.
        """
        m = self.n_components
        if m < 2:
            raise ValueError("need at least two components for a correlation")
        eig_ranks = fractional_ranks(self.eigenvalues)
        cp_ranks = fractional_ranks(self.coherence_probabilities)
        eig_centered = eig_ranks - eig_ranks.mean()
        cp_centered = cp_ranks - cp_ranks.mean()
        denominator = np.sqrt(
            np.sum(eig_centered**2) * np.sum(cp_centered**2)
        )
        if denominator == 0.0:
            return 0.0
        return float(np.sum(eig_centered * cp_centered) / denominator)


def analyze_coherence(pca, training_data) -> CoherenceAnalysis:
    """Coherence profile of a fitted PCA model over its training data.

    Args:
        pca: a :class:`repro.linalg.PrincipalComponents` fit result.
        training_data: the data the model was fitted on, in original
            coordinates; it is re-preprocessed with the model's own
            centering/scaling so the analysis matches the eigenbasis.
    """
    prepared = pca.preprocess(training_data)
    vectors = pca.decomposition.eigenvectors
    factors = coherence_factors(prepared, vectors)
    return CoherenceAnalysis(
        eigenvalues=pca.decomposition.eigenvalues.copy(),
        coherence_probabilities=np.mean(symmetric_mass(factors), axis=0),
        mean_coherence_factors=np.mean(factors, axis=0),
        scaled=pca.scaled,
    )
