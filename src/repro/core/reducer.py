"""The fit/transform dimensionality reducer.

:class:`CoherenceReducer` packages the whole method of the paper behind a
scikit-learn-style interface: fit PCA (optionally on studentized data,
Section 2.2), score every eigenvector with the dataset coherence
probability (Section 2), pick components by the requested strategy, and
project — training data or new queries — onto the retained basis.
"""

from __future__ import annotations

import numpy as np

from repro.core.coherence import CoherenceAnalysis, analyze_coherence
from repro.core.selection import (
    select_automatic,
    select_by_coherence,
    select_by_eigenvalue,
    select_by_energy,
    select_by_threshold,
)
from repro.linalg.pca import PrincipalComponents, fit_pca

_ORDERINGS = ("eigenvalue", "coherence", "automatic")


class CoherenceReducer:
    """Dimensionality reduction with coherence-aware component selection.

    Args:
        n_components: how many components to keep.  ``None`` defers to
            ``threshold`` or ``energy``; if all three are ``None`` the
            reducer keeps every component (a pure rotation).
        ordering: ``"coherence"`` (the paper's rule), ``"eigenvalue"``
            (the classical rule), or ``"automatic"`` (coherence order cut
            at the largest gap in the coherence spectrum — the paper's
            "intuitive judgement for the cut-off point"; incompatible
            with an explicit component budget).  For the first two, the
            ordering only affects *which* components the ``n_components``
            budget buys; threshold/energy cuts are defined on eigenvalues
            regardless.
        scale: studentize before PCA (correlation-matrix PCA); the
            paper's recommended normalization.
        whiten: additionally divide each retained component by the
            square root of its eigenvalue, so every concept contributes
            equally to distances.  This is the paper's "automatic
            distance function correction" taken to its conclusion:
            distances in the reduced space count disagreement in
            *concepts*, not in raw variance units.  Components with zero
            eigenvalue are left unscaled (they are identically zero).
        threshold: keep eigenvalues at least this fraction of the
            largest (the Table 1 "1 %-thresholding" uses 0.01).
        energy: keep the smallest eigenvalue prefix with this fraction of
            total variance.
        eigen_method: ``"numpy"`` or ``"jacobi"``.

    Fitted attributes (set by :meth:`fit`):
        pca_: the underlying :class:`PrincipalComponents`.
        analysis_: the :class:`CoherenceAnalysis` over the training data.
        selected_: indices (into descending eigenvalue order) of the
            retained components, in selection order.
        components_: ``(d_working, k)`` retained eigenvector basis.
    """

    def __init__(
        self,
        n_components: int | None = None,
        ordering: str = "coherence",
        scale: bool = False,
        whiten: bool = False,
        threshold: float | None = None,
        energy: float | None = None,
        eigen_method: str = "numpy",
    ) -> None:
        if ordering not in _ORDERINGS:
            raise ValueError(
                f"ordering must be one of {_ORDERINGS}, got {ordering!r}"
            )
        specified = [
            name
            for name, value in (
                ("n_components", n_components),
                ("threshold", threshold),
                ("energy", energy),
            )
            if value is not None
        ]
        if len(specified) > 1:
            raise ValueError(
                f"specify at most one of n_components/threshold/energy, "
                f"got {specified}"
            )
        if n_components is not None and n_components < 1:
            raise ValueError(f"n_components must be positive, got {n_components}")
        if ordering == "automatic" and specified:
            raise ValueError(
                "ordering='automatic' chooses its own cut-off; do not "
                f"combine it with {specified}"
            )
        self.n_components = n_components
        self.ordering = ordering
        self.scale = scale
        self.whiten = whiten
        self.threshold = threshold
        self.energy = energy
        self.eigen_method = eigen_method

        self.pca_: PrincipalComponents | None = None
        self.analysis_: CoherenceAnalysis | None = None
        self.selected_: np.ndarray | None = None
        self.components_: np.ndarray | None = None

    # -- fitting -----------------------------------------------------------

    def fit(self, features) -> "CoherenceReducer":
        """Fit PCA, run the coherence analysis, and select components."""
        self.pca_ = fit_pca(
            features, scale=self.scale, eigen_method=self.eigen_method
        )
        self.analysis_ = analyze_coherence(self.pca_, features)
        self.selected_ = self._select()
        self.components_ = self.pca_.decomposition.basis(self.selected_)
        return self

    def _select(self) -> np.ndarray:
        eigenvalues = self.analysis_.eigenvalues
        probabilities = self.analysis_.coherence_probabilities
        if self.threshold is not None:
            return select_by_threshold(eigenvalues, self.threshold)
        if self.energy is not None:
            return select_by_energy(eigenvalues, self.energy)
        if self.ordering == "automatic":
            return select_automatic(probabilities, tie_break=eigenvalues)
        if self.n_components is None:
            k = eigenvalues.size
        elif self.n_components > eigenvalues.size:
            raise ValueError(
                f"n_components={self.n_components} exceeds the "
                f"{eigenvalues.size} available components"
            )
        else:
            k = self.n_components
        if self.ordering == "eigenvalue":
            return select_by_eigenvalue(eigenvalues, k)
        return select_by_coherence(probabilities, k, tie_break=eigenvalues)

    # -- transforming ------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.pca_ is None:
            raise RuntimeError("reducer is not fitted; call fit() first")

    def transform(self, features) -> np.ndarray:
        """Project rows (original coordinates) onto the retained basis.

        With ``whiten=True`` each component is scaled to unit variance
        (over the training data), so Euclidean distance in the output
        counts concept disagreements equally.
        """
        self._require_fitted()
        projected = self.pca_.transform(
            features, component_indices=self.selected_
        )
        if not self.whiten:
            return projected
        eigenvalues = self.analysis_.eigenvalues[self.selected_]
        scales = np.sqrt(np.maximum(eigenvalues, 0.0))
        safe = np.where(scales > 0.0, scales, 1.0)
        return projected / safe

    def fit_transform(self, features) -> np.ndarray:
        """Equivalent to ``fit(features).transform(features)``."""
        return self.fit(features).transform(features)

    # -- introspection -----------------------------------------------------

    @property
    def n_selected(self) -> int:
        """Number of retained components."""
        self._require_fitted()
        return int(self.selected_.size)

    def retained_variance_fraction(self) -> float:
        """Fraction of total variance kept by the retained components.

        On the paper's noisy datasets this is strikingly small at the
        quality optimum (12.1 % for noisy data set A) — aggressive
        reduction deliberately throws variance away.
        """
        self._require_fitted()
        return self.pca_.decomposition.energy_fraction(self.selected_)

    def describe(self) -> dict:
        """A plain-dict summary, convenient for logging and reports."""
        self._require_fitted()
        return {
            "ordering": self.ordering,
            "scaled": self.scale,
            "whitened": self.whiten,
            "n_selected": self.n_selected,
            "retained_variance": self.retained_variance_fraction(),
            "selected_indices": [int(i) for i in self.selected_],
            "rank_correlation": self.analysis_.rank_correlation()
            if self.analysis_.n_components > 1
            else None,
        }
