"""End-to-end similarity search with coherence-aware reduction.

The paper's closing argument is operational: aggressive, coherence-guided
reduction makes high-dimensional similarity search both *better* (more
meaningful neighbors) and *indexable* (low enough dimensionality for
partition pruning to work).  :class:`SimilaritySearchPipeline` is that
argument as an API — fit a reducer on a corpus, build an index in the
reduced space, answer queries given in the *original* space.
"""

from __future__ import annotations

import numpy as np

from repro.core.reducer import CoherenceReducer
from repro.search.registry import EXACT_KINDS, build_index
from repro.search.results import BatchKnnResult, KnnResult


class SimilaritySearchPipeline:
    """Reduce, index, and query a high-dimensional corpus.

    Args:
        reducer: a (possibly unfitted) :class:`CoherenceReducer`; a
            default coherence-ordered, scaled reducer is created when
            omitted.
        index_type: any exact kind from the registry
            (:data:`repro.search.EXACT_KINDS`) — approximate (LSH) and
            non-Euclidean (IGrid) structures have different result
            semantics and are used directly rather than through the
            pipeline.

    Example::

        pipeline = SimilaritySearchPipeline(
            reducer=CoherenceReducer(n_components=8, scale=True),
            index_type="rtree",
        )
        pipeline.fit(corpus)
        result = pipeline.query(some_original_space_vector, k=3)
    """

    def __init__(
        self,
        reducer: CoherenceReducer | None = None,
        index_type: str = "kdtree",
    ) -> None:
        if index_type not in EXACT_KINDS:
            raise ValueError(
                f"unknown index_type {index_type!r}; choose from "
                f"{sorted(EXACT_KINDS)}"
            )
        self.reducer = reducer if reducer is not None else CoherenceReducer(
            ordering="coherence", scale=True
        )
        self.index_type = index_type
        self._index = None
        self._reduced_corpus: np.ndarray | None = None

    def fit(self, corpus) -> "SimilaritySearchPipeline":
        """Fit the reducer on the corpus and index its reduced image."""
        self._reduced_corpus = self.reducer.fit_transform(corpus)
        self._index = build_index(self.index_type, self._reduced_corpus)
        return self

    def _require_fitted(self) -> None:
        if self._index is None:
            raise RuntimeError("pipeline is not fitted; call fit() first")

    @property
    def reduced_dimensionality(self) -> int:
        self._require_fitted()
        return self._reduced_corpus.shape[1]

    def query(self, query, k: int = 1) -> KnnResult:
        """k-NN of a single original-space query in the reduced space.

        Neighbor indices refer to rows of the fitted corpus.  ``query``
        must be one-dimensional; a batch of queries belongs in
        :meth:`query_batch` (silently accepting a 2-d array here and
        answering for its first row hid real caller bugs).
        """
        self._require_fitted()
        vector = np.asarray(query, dtype=np.float64)
        if vector.ndim != 1:
            raise ValueError(
                f"query must be 1-d, got shape {vector.shape}; "
                f"use query_batch() for multiple queries"
            )
        reduced = self.reducer.transform(vector[np.newaxis, :])[0]
        return self._index.query(reduced, k=k)

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """k-NN for each row of ``queries`` via the index's batch engine.

        Returns a :class:`BatchKnnResult` — iterable of per-query
        :class:`KnnResult` objects (so existing ``for result in …`` code
        keeps working) with aggregated :class:`QueryStats` on top.
        ``n_workers`` sets the thread fan-out for tree-structured
        indexes; the vectorized indexes (bruteforce, vafile) ignore it.
        """
        self._require_fitted()
        array = np.asarray(queries, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(
                f"queries must be 2-d (one query per row), got shape "
                f"{array.shape}"
            )
        reduced = self.reducer.transform(array)
        return self._index.query_batch(reduced, k=k, n_workers=n_workers)
