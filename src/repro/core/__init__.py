"""The paper's primary contribution.

The coherence model (Section 2), the eigenvector selection strategies it
induces, a fit/transform reducer that applies them, the dataset
reducibility diagnosis (Section 3), and an end-to-end similarity-search
pipeline that ties reduction to indexing.
"""

from repro.core.coherence import (
    CoherenceAnalysis,
    analyze_coherence,
    coherence_factors,
    coherence_probabilities,
    contribution_vector,
    dataset_coherence,
)
from repro.core.selection import (
    select_automatic,
    select_by_coherence,
    select_by_eigenvalue,
    select_by_energy,
    select_by_threshold,
)
from repro.core.reducer import CoherenceReducer
from repro.core.diagnosis import ReducibilityDiagnosis, diagnose_reducibility
from repro.core.pipeline import SimilaritySearchPipeline
from repro.core.serialization import load_reducer, save_reducer

__all__ = [
    "CoherenceAnalysis",
    "CoherenceReducer",
    "ReducibilityDiagnosis",
    "SimilaritySearchPipeline",
    "analyze_coherence",
    "coherence_factors",
    "coherence_probabilities",
    "contribution_vector",
    "dataset_coherence",
    "diagnose_reducibility",
    "load_reducer",
    "save_reducer",
    "select_automatic",
    "select_by_coherence",
    "select_by_eigenvalue",
    "select_by_energy",
    "select_by_threshold",
]
