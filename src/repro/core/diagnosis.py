"""Dataset reducibility diagnosis (Section 3 and 3.1).

The absolute level of the coherence probabilities diagnoses whether a
dataset is amenable to dimensionality reduction at all:

* a *reducible* dataset has a few eigenvectors with coherence probability
  far above the uniform-data baseline of ``2 Phi(1) - 1 ≈ 0.6827`` and a
  long tail near the baseline — the few are the concepts, the tail is
  noise to prune;
* a *noisy* dataset (high implicit dimensionality) has similar coherence
  probability everywhere; nothing can be dropped without losing
  information, and the paper suggests projected clustering
  (:mod:`repro.clustering`) as the escape hatch.

:func:`diagnose_reducibility` quantifies this with the concept count and
the spread of the coherence spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coherence import UNIFORM_BASELINE_CP, analyze_coherence
from repro.linalg.pca import fit_pca

# An eigenvector is called a concept when its dataset coherence clears
# the uniform baseline by this margin.  Uniform (perfectly noisy) data
# never exceeds the 0.6827 baseline — axis-aligned directions sit exactly
# on it and sample-PCA rotations of it fall *below* (mixing uncorrelated
# dimensions makes contributions cancel) — so even a small margin
# separates genuine correlation structure from noise.
CONCEPT_MARGIN = 0.04


@dataclass(frozen=True)
class ReducibilityDiagnosis:
    """Verdict on whether dimensionality reduction can help a dataset.

    Attributes:
        verdict: ``"reducible"`` (few concepts + noise tail) or
            ``"noisy"`` (flat coherence spectrum — retain everything or
            decompose first).
        n_concepts: eigenvectors whose coherence probability clears the
            concept threshold.
        n_components: total eigenvectors examined.
        concept_threshold: the CP level used to call a concept.
        baseline: the uniform-data coherence probability
            ``2 Phi(1) - 1``.
        cp_spread: max - min of the coherence spectrum; near zero for
            perfectly noisy data.
        coherence_probabilities: the full spectrum, aligned with
            descending eigenvalues.
        eigenvalues: the eigenvalue spectrum, descending.
    """

    verdict: str
    n_concepts: int
    n_components: int
    concept_threshold: float
    baseline: float
    cp_spread: float
    coherence_probabilities: np.ndarray
    eigenvalues: np.ndarray

    @property
    def concept_indices(self) -> np.ndarray:
        """Indices (descending-eigenvalue order) of the concept vectors."""
        return np.flatnonzero(
            self.coherence_probabilities >= self.concept_threshold
        )

    def summary(self) -> str:
        """One-line human-readable verdict."""
        return (
            f"{self.verdict}: {self.n_concepts}/{self.n_components} "
            f"concept vectors (CP >= {self.concept_threshold:.2f}; "
            f"uniform baseline {self.baseline:.4f}; spread "
            f"{self.cp_spread:.4f})"
        )


def diagnose_reducibility(
    features,
    scale: bool = True,
    concept_margin: float = CONCEPT_MARGIN,
    eigen_method: str = "numpy",
) -> ReducibilityDiagnosis:
    """Diagnose whether a dataset rewards dimensionality reduction.

    Args:
        features: ``(n, d)`` data matrix.
        scale: studentize first (recommended; raises coherence levels and
            decouples the diagnosis from arbitrary units, Section 2.2).
        concept_margin: how far above the uniform baseline an
            eigenvector's CP must sit to count as a concept.
        eigen_method: eigensolver to use.

    Returns:
        A :class:`ReducibilityDiagnosis`.  The verdict is ``"reducible"``
        when at least one concept stands clear of the baseline *and* the
        concepts are a strict minority of directions (a dataset where
        every direction is a concept has nothing to prune — it is labeled
        ``"noisy"`` too, in the sense that reduction cannot help).
    """
    if not 0.0 < concept_margin < 1.0 - UNIFORM_BASELINE_CP + 0.3:
        raise ValueError(
            f"concept_margin must be a small positive margin, got {concept_margin}"
        )
    pca = fit_pca(features, scale=scale, eigen_method=eigen_method)
    analysis = analyze_coherence(pca, features)

    threshold = UNIFORM_BASELINE_CP + concept_margin
    probabilities = analysis.coherence_probabilities
    n_concepts = int(np.sum(probabilities >= threshold))
    n_components = probabilities.size
    spread = float(probabilities.max() - probabilities.min())

    reducible = 0 < n_concepts < n_components
    return ReducibilityDiagnosis(
        verdict="reducible" if reducible else "noisy",
        n_concepts=n_concepts,
        n_components=n_components,
        concept_threshold=float(threshold),
        baseline=UNIFORM_BASELINE_CP,
        cp_spread=spread,
        coherence_probabilities=probabilities.copy(),
        eigenvalues=analysis.eigenvalues.copy(),
    )
