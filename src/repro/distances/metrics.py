"""Distance metrics.

The Minkowski family (including the fractional exponents that the high-
dimensional-similarity literature studies), Chebyshev as the ``p = inf``
limit, and cosine distance.  All functions accept 1-d vectors;
:func:`pairwise_distances` vectorizes over whole matrices, and
:func:`squared_euclidean_matrix` is the fast kernel the evaluation sweeps
are built on.
"""

from __future__ import annotations

import numpy as np


def _pair(a, b) -> tuple[np.ndarray, np.ndarray]:
    first = np.asarray(a, dtype=np.float64)
    second = np.asarray(b, dtype=np.float64)
    if first.ndim != 1 or second.ndim != 1:
        raise ValueError("metric arguments must be 1-d vectors")
    if first.shape != second.shape:
        raise ValueError(
            f"vectors must share a shape, got {first.shape} and {second.shape}"
        )
    if not (np.all(np.isfinite(first)) and np.all(np.isfinite(second))):
        raise ValueError("vectors must be finite")
    return first, second


def minkowski(a, b, p: float) -> float:
    """The L_p distance ``(sum |a_i - b_i|^p)^(1/p)`` for ``p > 0``.

    Fractional ``p`` in (0, 1) is permitted: it is not a metric (the
    triangle inequality fails) but is a meaningful dissimilarity that
    behaves better under the dimensionality curse.
    """
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    first, second = _pair(a, b)
    gaps = np.abs(first - second)
    return float(np.sum(gaps**p) ** (1.0 / p))


def euclidean(a, b) -> float:
    """The L_2 distance."""
    first, second = _pair(a, b)
    return float(np.sqrt(np.sum(np.square(first - second))))


def manhattan(a, b) -> float:
    """The L_1 distance."""
    first, second = _pair(a, b)
    return float(np.sum(np.abs(first - second)))


def chebyshev(a, b) -> float:
    """The L_inf distance (limit of Minkowski as ``p → inf``)."""
    first, second = _pair(a, b)
    return float(np.max(np.abs(first - second)))


def cosine_distance(a, b) -> float:
    """``1 - cos(angle between a and b)``; zero vectors are rejected."""
    first, second = _pair(a, b)
    norm_a = float(np.sqrt(np.sum(np.square(first))))
    norm_b = float(np.sqrt(np.sum(np.square(second))))
    if norm_a == 0.0 or norm_b == 0.0:
        raise ValueError("cosine distance is undefined for zero vectors")
    similarity = float(np.dot(first, second)) / (norm_a * norm_b)
    # Clamp floating-point drift outside [-1, 1].
    return 1.0 - max(-1.0, min(1.0, similarity))


def squared_euclidean_matrix(x, y=None) -> np.ndarray:
    """All-pairs squared Euclidean distances via the Gram-matrix identity.

    ``D2[i, j] = |x_i|^2 + |y_j|^2 - 2 x_i . y_j``, computed with one
    matrix multiply.  Tiny negative values from floating-point
    cancellation are clamped to zero.

    Args:
        x: ``(n, d)`` matrix of row vectors.
        y: optional ``(m, d)`` matrix; defaults to ``x`` (self-distances).
    """
    first = np.asarray(x, dtype=np.float64)
    if first.ndim != 2:
        raise ValueError(f"x must be 2-d, got shape {first.shape}")
    second = first if y is None else np.asarray(y, dtype=np.float64)
    if second.ndim != 2 or second.shape[1] != first.shape[1]:
        raise ValueError(
            "y must be 2-d with the same number of columns as x"
        )
    x_norms = np.sum(np.square(first), axis=1)
    y_norms = x_norms if y is None else np.sum(np.square(second), axis=1)
    gram = first @ second.T
    distances = x_norms[:, None] + y_norms[None, :] - 2.0 * gram
    np.maximum(distances, 0.0, out=distances)
    if y is None:
        # Self-distances are exactly zero; the Gram identity only gets
        # them to within floating-point error.
        np.fill_diagonal(distances, 0.0)
    return distances


_METRIC_FUNCTIONS = {
    "euclidean": euclidean,
    "manhattan": manhattan,
    "chebyshev": chebyshev,
    "cosine": cosine_distance,
}


def pairwise_distances(x, y=None, metric: str = "euclidean", p: float | None = None) -> np.ndarray:
    """All-pairs distance matrix between rows of ``x`` and ``y``.

    Args:
        x: ``(n, d)`` matrix.
        y: optional ``(m, d)`` matrix; defaults to ``x``.
        metric: ``"euclidean"``, ``"manhattan"``, ``"chebyshev"``,
            ``"cosine"``, or ``"minkowski"`` (which requires ``p``).
        p: exponent for the Minkowski metric.

    Returns:
        ``(n, m)`` distance matrix.
    """
    first = np.asarray(x, dtype=np.float64)
    if first.ndim != 2:
        raise ValueError(f"x must be 2-d, got shape {first.shape}")
    second = first if y is None else np.asarray(y, dtype=np.float64)
    if second.ndim != 2 or second.shape[1] != first.shape[1]:
        raise ValueError("y must be 2-d with the same number of columns as x")

    if metric == "euclidean":
        return np.sqrt(squared_euclidean_matrix(first, y))
    if metric == "manhattan":
        diffs = np.abs(first[:, None, :] - second[None, :, :])
        return np.sum(diffs, axis=2)
    if metric == "chebyshev":
        diffs = np.abs(first[:, None, :] - second[None, :, :])
        return np.max(diffs, axis=2)
    if metric == "minkowski":
        if p is None:
            raise ValueError("metric='minkowski' requires the exponent p")
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        diffs = np.abs(first[:, None, :] - second[None, :, :])
        return np.sum(diffs**p, axis=2) ** (1.0 / p)
    if metric == "cosine":
        norms_x = np.sqrt(np.sum(np.square(first), axis=1))
        norms_y = np.sqrt(np.sum(np.square(second), axis=1))
        if np.any(norms_x == 0.0) or np.any(norms_y == 0.0):
            raise ValueError("cosine distance is undefined for zero vectors")
        similarity = (first @ second.T) / np.outer(norms_x, norms_y)
        np.clip(similarity, -1.0, 1.0, out=similarity)
        return 1.0 - similarity
    raise ValueError(
        f"unknown metric {metric!r}; choose from "
        f"{sorted(_METRIC_FUNCTIONS) + ['minkowski']}"
    )
