"""Relative-contrast diagnostics for the dimensionality curse.

Section 1.1 of the paper builds on Beyer et al. (ICDT 1999): as the
dimensionality grows, the nearest and farthest neighbors of a query sit
at almost the same distance, which makes proximity queries unstable and
defeats the optimistic bounds index structures prune with.  The
*relative contrast* ``(D_max - D_min) / D_min`` quantifies this; it
collapses toward 0 for i.i.d. dimensions as ``d`` grows and is restored
by a reduction that discards noise directions.  The
``bench_ablation_contrast`` benchmark regenerates the phenomenon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distances.metrics import pairwise_distances


@dataclass(frozen=True)
class ContrastSummary:
    """Distance-spread statistics of one query against a corpus.

    Attributes:
        nearest: distance to the nearest corpus point.
        farthest: distance to the farthest corpus point.
        relative_contrast: ``(farthest - nearest) / nearest`` — the
            Beyer et al. instability measure; 0 means total meaninglessness.
        mean_distance: mean distance over the corpus.
    """

    nearest: float
    farthest: float
    relative_contrast: float
    mean_distance: float


def relative_contrast(corpus, query, metric: str = "euclidean", p: float | None = None) -> ContrastSummary:
    """Contrast of one query point against a corpus.

    Args:
        corpus: ``(n, d)`` matrix of data points.
        query: ``(d,)`` query vector (must not coincide with every corpus
            point — a nearest distance of exactly 0 makes the ratio
            undefined and raises).
        metric: any metric accepted by
            :func:`repro.distances.pairwise_distances`.
        p: Minkowski exponent when ``metric="minkowski"``.
    """
    points = np.asarray(corpus, dtype=np.float64)
    target = np.asarray(query, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"corpus must be 2-d, got shape {points.shape}")
    if target.ndim != 1 or target.size != points.shape[1]:
        raise ValueError("query must be a 1-d vector matching corpus columns")

    distances = pairwise_distances(
        target.reshape(1, -1), points, metric=metric, p=p
    )[0]
    nearest = float(np.min(distances))
    farthest = float(np.max(distances))
    if nearest == 0.0:
        raise ValueError(
            "query coincides with a corpus point; relative contrast is "
            "undefined (remove duplicates or exclude the query itself)"
        )
    return ContrastSummary(
        nearest=nearest,
        farthest=farthest,
        relative_contrast=(farthest - nearest) / nearest,
        mean_distance=float(np.mean(distances)),
    )


def relative_contrast_profile(
    dimensionalities,
    n_points: int = 500,
    n_queries: int = 20,
    metric: str = "euclidean",
    p: float | None = None,
    seed: int = 0,
) -> list[tuple[int, float]]:
    """Mean relative contrast of uniform data across dimensionalities.

    For each ``d`` draws ``n_points`` corpus points and ``n_queries``
    queries uniformly from the unit cube and averages the relative
    contrast — the worst-case (perfectly noisy) setting of Section 3.

    Returns:
        List of ``(dimensionality, mean_relative_contrast)`` pairs, one
        per requested dimensionality, in input order.
    """
    dims = [int(d) for d in dimensionalities]
    if not dims or any(d < 1 for d in dims):
        raise ValueError("dimensionalities must be positive integers")
    rng = np.random.default_rng(seed)
    profile = []
    for d in dims:
        corpus = rng.uniform(0.0, 1.0, size=(n_points, d))
        queries = rng.uniform(0.0, 1.0, size=(n_queries, d))
        contrasts = [
            relative_contrast(corpus, query, metric=metric, p=p).relative_contrast
            for query in queries
        ]
        profile.append((d, float(np.mean(contrasts))))
    return profile
