"""Distance substrate.

Minkowski-family and cosine metrics, pairwise distance kernels, and the
relative-contrast diagnostics (Beyer et al.) that Section 1.1 of the
paper uses to explain why high-dimensional proximity queries become
unstable.
"""

from repro.distances.metrics import (
    chebyshev,
    cosine_distance,
    euclidean,
    manhattan,
    minkowski,
    pairwise_distances,
    squared_euclidean_matrix,
)
from repro.distances.contrast import (
    ContrastSummary,
    relative_contrast,
    relative_contrast_profile,
)

__all__ = [
    "ContrastSummary",
    "chebyshev",
    "cosine_distance",
    "euclidean",
    "manhattan",
    "minkowski",
    "pairwise_distances",
    "relative_contrast",
    "relative_contrast_profile",
    "squared_euclidean_matrix",
]
