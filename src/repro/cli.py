"""Command-line interface.

Four subcommands covering the workflow of the paper:

* ``repro diagnose <dataset>`` — is the dataset amenable to reduction?
* ``repro evaluate <dataset>`` — the Table-1 row: full vs. optimal vs.
  1%-threshold accuracy.
* ``repro sweep <dataset>`` — the full accuracy-vs-dimensionality curve.
* ``repro reduce <dataset> -o out.csv`` — write the reduced
  representation (plus labels) as CSV.
* ``repro index build <dataset> -o out.npz --index kdtree`` — build a
  similarity-search index over the dataset and snapshot it to disk
  (``--kind`` is an alias for ``--index``; ``--kind projscreen
  --subspace-dim m --ordering {eigen,coherence}`` builds the
  projection-screened exact index).
* ``repro index info out.npz`` — inspect a snapshot without rebuilding
  anything.
* ``repro serve-bench --index bruteforce --workers 4`` — measure the
  micro-batched serving layer against the closed-loop one-query-per-call
  baseline on a synthetic corpus; ``--shards S`` serves the same corpus
  through the scatter-gather coordinator instead (still checked
  bit-identical against the unsharded baseline).
* ``repro shard build <dataset> -o out_dir --shards 4`` — partition a
  dataset into shard snapshots plus a ``shards.json`` manifest for
  :class:`repro.shard.ShardedIndexServer`.

``<dataset>`` is either a built-in preset name (``musk``, ``ionosphere``,
``arrhythmia``, ``noisy-a``, ``noisy-b``, ``uniform``) or a path to a
UCI-style CSV (label in the last column by default, ``?`` for missing).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.core.diagnosis import diagnose_reducibility
from repro.core.reducer import CoherenceReducer
from repro.datasets.loaders import load_csv_dataset
from repro.datasets.synthetic import uniform_cube
from repro.datasets.types import Dataset
from repro.datasets.uci_like import (
    arrhythmia_like,
    ionosphere_like,
    musk_like,
    noisy_dataset_a,
    noisy_dataset_b,
)
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.summary import reduction_summary
from repro.evaluation.sweeps import accuracy_sweep
from repro.search.registry import INDEX_KINDS as _INDEX_KINDS
from repro.search.registry import iter_specs as _iter_index_specs

_PRESETS = {
    "musk": musk_like,
    "ionosphere": ionosphere_like,
    "arrhythmia": arrhythmia_like,
    "noisy-a": noisy_dataset_a,
    "noisy-b": noisy_dataset_b,
}


def _resolve_dataset(name: str, seed: int, label_column: int) -> Dataset:
    key = name.lower()
    if key in _PRESETS:
        return _PRESETS[key](seed=seed)
    if key == "uniform":
        return uniform_cube(500, 50, seed=seed)
    if os.path.exists(name):
        return load_csv_dataset(name, label_column=label_column)
    raise SystemExit(
        f"error: {name!r} is neither a preset "
        f"({', '.join(sorted(_PRESETS) + ['uniform'])}) nor an existing file"
    )


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "dataset",
        help="preset name (musk, ionosphere, arrhythmia, noisy-a, noisy-b, "
        "uniform) or path to a CSV file",
    )
    parser.add_argument("--seed", type=int, default=0, help="preset RNG seed")
    parser.add_argument(
        "--label-column",
        type=int,
        default=-1,
        help="label column index for CSV input (default: last)",
    )


def _command_diagnose(args) -> int:
    data = _resolve_dataset(args.dataset, args.seed, args.label_column)
    diagnosis = diagnose_reducibility(data.features, scale=not args.no_scale)
    print(f"dataset: {data.name} ({data.n_samples} x {data.n_dims})")
    print(diagnosis.summary())
    rows = [
        (i, float(diagnosis.eigenvalues[i]), float(diagnosis.coherence_probabilities[i]))
        for i in range(min(args.top, diagnosis.n_components))
    ]
    print()
    print(
        format_table(
            ["component", "eigenvalue", "coherence probability"],
            rows,
            title=f"top {len(rows)} components",
        )
    )
    return 0


def _command_evaluate(args) -> int:
    data = _resolve_dataset(args.dataset, args.seed, args.label_column)
    summary = reduction_summary(
        data, ordering=args.ordering, scale=not args.no_scale, k=args.k
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ("dataset", summary.dataset_name),
                ("full dimensionality", summary.full_dimensionality),
                ("full accuracy", summary.full_accuracy),
                ("optimal accuracy", summary.optimal_accuracy),
                ("optimal dimensionality", summary.optimal_dimensionality),
                ("1%-threshold accuracy", summary.threshold_accuracy),
                ("1%-threshold dimensionality", summary.threshold_dimensionality),
                ("variance kept at optimum", summary.variance_retained_at_optimum),
                ("precision vs full-dim NN", summary.precision_at_optimum),
            ],
            title="reduction summary (Table 1 row)",
        )
    )
    return 0


def _command_sweep(args) -> int:
    data = _resolve_dataset(args.dataset, args.seed, args.label_column)
    sweep = accuracy_sweep(
        data, ordering=args.ordering, scale=not args.no_scale, k=args.k
    )
    step = max(1, sweep.dims.size // args.points)
    grid = sweep.dims[::step]
    print(
        format_series(
            grid.tolist(),
            {"accuracy": [sweep.accuracy_at(int(m)) for m in grid]},
            x_label="dims",
            title=(
                f"{data.name}: accuracy vs dimensionality "
                f"({args.ordering} ordering, "
                f"{'raw' if args.no_scale else 'studentized'})"
            ),
        )
    )
    best_dims, best = sweep.optimal()
    print(f"\noptimum: {best:.4f} at {best_dims} dims "
          f"(full-dim {sweep.full_dimensional_accuracy:.4f})")
    return 0


def _command_experiment(args) -> int:
    from repro.experiments import (
        get_experiment,
        list_experiments,
        run_experiment,
    )

    if args.experiment_id == "list":
        print(
            format_table(
                ["id", "paper artifact", "description"],
                [
                    (e.experiment_id, e.paper_artifact, e.description)
                    for e in list_experiments()
                ],
                title="registered paper experiments",
            )
        )
        return 0
    if args.experiment_id == "all":
        ids = [e.experiment_id for e in list_experiments()]
    else:
        ids = [part for part in args.experiment_id.split(",") if part]
    if args.jobs < 1:
        raise SystemExit(f"error: --jobs must be positive, got {args.jobs}")
    # Validate every id before spending time on any of them.
    for experiment_id in ids:
        try:
            get_experiment(experiment_id)
        except KeyError as error:
            raise SystemExit(f"error: {error.args[0]}") from None
    if args.save_dir:
        os.makedirs(args.save_dir, exist_ok=True)
    if args.jobs > 1 and len(ids) > 1:
        # Fan the experiments out over a process pool.  map() preserves
        # input order, so reports print deterministically no matter
        # which worker finishes first.
        from concurrent.futures import ProcessPoolExecutor
        from functools import partial

        with ProcessPoolExecutor(
            max_workers=min(args.jobs, len(ids))
        ) as pool:
            results = list(
                pool.map(partial(run_experiment, seed=args.seed), ids)
            )
    else:
        results = [
            run_experiment(experiment_id, seed=args.seed)
            for experiment_id in ids
        ]
    for experiment_id, result in zip(ids, results):
        print(result.report)
        print()
        if args.save_dir:
            report_path = os.path.join(args.save_dir, f"{experiment_id}.txt")
            with open(report_path, "w") as handle:
                handle.write(result.report + "\n")
    if args.save_dir:
        print(f"reports written to {args.save_dir}/")
    return 0


def _index_classes():
    """Kind → class map (deprecated thin wrapper over the registry)."""
    from repro.search.registry import INDEX_KINDS, index_class

    return {kind: index_class(kind) for kind in INDEX_KINDS}


# Kind-specific constructor flags, derived from the registry's per-kind
# parameter specs: each entry maps a CLI flag to the index kind it
# configures and the constructor keyword it populates.  Flags are
# meaningful only for their kind; passing one with another kind is a
# usage error, not something to silently ignore.
_KIND_FLAGS = tuple(
    (param.name, param.flag, spec.kind, param.name)
    for spec in _iter_index_specs()
    for param in spec.params
)


def _index_kwargs(args) -> dict:
    """Constructor keywords from the kind-specific CLI flags."""
    kwargs: dict = {}
    for attr, flag, kind, keyword in _KIND_FLAGS:
        value = getattr(args, attr)
        if value is None:
            continue
        if args.index != kind:
            raise SystemExit(
                f"error: {flag} only applies to --kind {kind}, "
                f"not {args.index!r}"
            )
        kwargs[keyword] = value
    return kwargs


def _add_index_arguments(parser: argparse.ArgumentParser) -> None:
    """Add every registry-declared kind parameter as a CLI flag.

    Defaults stay ``None`` (flag absent) so :func:`_index_kwargs` can
    tell "not given" from any real value and reject wrong-kind usage.
    """
    for spec in _iter_index_specs():
        for param in spec.params:
            parser.add_argument(
                param.flag,
                dest=param.name,
                type=param.type,
                default=None,
                choices=list(param.choices) if param.choices else None,
                help=param.help,
            )


def _command_index_build(args) -> int:
    data = _resolve_dataset(args.dataset, args.seed, args.label_column)
    cls = _index_classes()[args.index]
    try:
        index = cls(data.features, **_index_kwargs(args))
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    index.save(args.output)
    size = os.path.getsize(args.output)
    detail = ""
    if args.index == "projscreen":
        detail = (
            f" [screen {index.subspace_dim}/{index.dimensionality} dims, "
            f"{index.ordering}-ordered]"
        )
    print(
        f"built {args.index} over {data.name} "
        f"({data.n_samples} x {data.n_dims}) -> {args.output} "
        f"({size / 1024:.1f} KiB){detail}"
    )
    return 0


def _command_index_info(args) -> int:
    from repro.search import SnapshotError, load_index, snapshot_kind

    try:
        kind = snapshot_kind(args.path)
        # mmap keeps the corpus on disk: inspecting a snapshot should
        # not cost a full load of its points.
        index = load_index(args.path, mmap_points=True)
    except SnapshotError as error:
        raise SystemExit(f"error: {error}") from None
    print(
        format_table(
            ["field", "value"],
            [
                ("path", args.path),
                ("kind", kind),
                ("class", type(index).__name__),
                ("points", index.n_points),
                ("dimensionality", index.dimensionality),
                ("file size", f"{os.path.getsize(args.path) / 1024:.1f} KiB"),
            ],
            title="index snapshot",
        )
    )
    return 0


def _command_serve_bench_mutate(args) -> int:
    import tempfile

    from repro.serve.bench import compare_mutable_serving
    from repro.serve.mutation import MutationError

    if args.workers < 0:
        raise SystemExit(
            f"error: --workers must be non-negative, got {args.workers}"
        )
    if args.mutate_ops < 1:
        raise SystemExit(
            f"error: --mutate-ops must be positive, got {args.mutate_ops}"
        )
    if not 0.0 <= args.insert_fraction + args.delete_fraction <= 1.0:
        raise SystemExit(
            "error: --insert-fraction + --delete-fraction must lie in "
            f"[0, 1], got {args.insert_fraction} + {args.delete_fraction}"
        )
    if args.shards > 1 or args.replicas > 1:
        raise SystemExit(
            "error: --mutate measures the single mutable server; "
            "it does not combine with --shards/--replicas"
        )
    wal_sync = args.wal_sync if args.wal_sync is not None else "always"
    rng = np.random.default_rng(args.seed)
    corpus = rng.standard_normal((args.n, args.dims))
    queries = rng.standard_normal((args.queries, args.dims))
    try:
        with tempfile.TemporaryDirectory() as workdir:
            comparison = compare_mutable_serving(
                os.path.join(workdir, "generations"),
                corpus,
                queries,
                args.k,
                kind=args.index,
                index_kwargs=_index_kwargs(args),
                n_ops=args.mutate_ops,
                insert_fraction=args.insert_fraction,
                delete_fraction=args.delete_fraction,
                compact_every=args.compact_every,
                drift_threshold=args.drift_threshold,
                n_workers=args.workers,
                deadline_ms=args.deadline_ms,
                wal_sync=wal_sync,
                seed=args.seed,
            )
    except (MutationError, ValueError) as error:
        raise SystemExit(f"error: {error}") from None
    rows = [
        ("index", args.index),
        ("initial corpus", f"{args.n} x {args.dims}"),
        ("trace ops (ins/del/query)",
         f"{comparison.n_ops} ({comparison.n_inserts} / "
         f"{comparison.n_deletes} / {comparison.n_queries})"),
        ("compactions (drift)",
         f"{comparison.n_compactions} ({comparison.n_drift_compactions})"),
        ("generations on disk", comparison.n_generations),
        ("queries in flight across swaps", comparison.swap_inflight_queries),
        ("wal sync policy", comparison.wal_sync),
        ("query throughput", f"{comparison.query_qps:.0f} q/s"),
        ("bit-identical to fresh rebuild",
         "yes" if comparison.identical else "NO"),
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title="mutable serving vs fresh-rebuild reference",
        )
    )
    return 0 if comparison.identical else 1


def _command_serve_bench(args) -> int:
    import tempfile

    from repro.serve import BatchPolicy
    from repro.serve.bench import compare_serving

    if args.mutate:
        return _command_serve_bench_mutate(args)
    if args.wal_sync is not None:
        raise SystemExit("error: --wal-sync requires --mutate")
    if args.workers < 0:
        raise SystemExit(
            f"error: --workers must be non-negative, got {args.workers}"
        )
    if args.shards < 1:
        raise SystemExit(
            f"error: --shards must be positive, got {args.shards}"
        )
    if args.replicas < 1:
        raise SystemExit(
            f"error: --replicas must be positive, got {args.replicas}"
        )
    sharded = args.shards > 1 or args.replicas > 1
    try:
        if sharded:
            # Admission is bounded once, at the coordinator — the member
            # batchers run unbounded so a burst is shed once, not S times.
            policy = BatchPolicy(
                max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
            )
        else:
            policy = BatchPolicy(
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                max_pending=args.max_pending,
                shed_policy=args.shed_policy,
            )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        raise SystemExit(
            f"error: --deadline-ms must be positive, got {args.deadline_ms}"
        )
    rng = np.random.default_rng(args.seed)
    corpus = rng.standard_normal((args.n, args.dims))
    queries = rng.standard_normal((args.queries, args.dims))
    index = _index_classes()[args.index](corpus)
    heartbeat = args.heartbeat_timeout if args.heartbeat_timeout > 0 else None
    with tempfile.TemporaryDirectory() as workdir:
        if sharded:
            from repro.shard import build_shards
            from repro.shard.bench import compare_sharded_serving

            manifest = build_shards(
                corpus,
                os.path.join(workdir, "shards"),
                args.shards,
                kind=args.index,
                method=args.shard_method,
                seed=args.seed,
            )
            comparison = compare_sharded_serving(
                index,
                manifest,
                queries,
                args.k,
                n_workers=args.workers,
                replicas=args.replicas,
                policy=policy,
                max_pending=args.max_pending,
                shed_policy=args.shed_policy,
                cache_capacity=args.cache_size,
                deadline_ms=args.deadline_ms,
                heartbeat_timeout=heartbeat,
            )
        else:
            path = os.path.join(workdir, f"{args.index}.npz")
            index.save(path)
            comparison = compare_serving(
                index,
                path,
                queries,
                args.k,
                n_workers=args.workers,
                policy=policy,
                cache_capacity=args.cache_size,
                deadline_ms=args.deadline_ms,
                heartbeat_timeout=heartbeat,
            )
    report = comparison.report
    histogram = ", ".join(
        f"{size}x{count}"
        for size, count in sorted(report.batch_size_histogram.items())
    )
    rows = [
        ("index", args.index),
        ("corpus", f"{args.n} x {args.dims}"),
        ("queries / k", f"{args.queries} / {args.k}"),
        ("workers", args.workers or "in-process"),
        ("policy", f"max_batch={args.max_batch}, "
                   f"max_wait_ms={args.max_wait_ms}"),
    ]
    if sharded:
        rows.append(
            ("shards x replicas",
             f"{args.shards} x {args.replicas} ({args.shard_method})")
        )
    rows += [
        ("closed-loop throughput",
         f"{comparison.closed_loop_qps:.0f} q/s"),
        ("served throughput", f"{comparison.served_qps:.0f} q/s"),
        ("speedup", f"{comparison.speedup:.1f}x"),
        ("latency p50/p95/p99",
         f"{report.latency_p50_ms:.2f} / {report.latency_p95_ms:.2f}"
         f" / {report.latency_p99_ms:.2f} ms"),
        ("batches (size x count)", histogram or "none"),
        ("mean batch size", f"{report.mean_batch_size:.1f}"),
        ("cache hits/misses/evictions",
         f"{report.cache_hits} / {report.cache_misses} / "
         f"{report.cache_evictions}"),
        ("points scanned", report.query_stats.points_scanned),
        ("answered / shed / deadline / failed / cancelled",
         f"{report.n_requests} / {report.n_shed} / "
         f"{report.n_deadline_exceeded} / {report.n_failed} / "
         f"{report.n_cancelled}"),
        ("restarts / hung kills / resubmitted",
         f"{report.n_restarts} / {report.n_hung_kills} / "
         f"{report.n_resubmitted}"),
        ("bit-identical to sequential",
         "yes" if comparison.identical else "NO"),
    ]
    title = (
        "sharded scatter-gather serving vs closed-loop baseline"
        if sharded
        else "micro-batched serving vs closed-loop baseline"
    )
    print(format_table(["metric", "value"], rows, title=title))
    return 0 if comparison.identical else 1


def _command_shard_build(args) -> int:
    from repro.shard import ShardManifestError, build_shards

    data = _resolve_dataset(args.dataset, args.seed, args.label_column)
    try:
        manifest = build_shards(
            data.features,
            args.output,
            args.shards,
            kind=args.index,
            method=args.method,
            seed=args.seed,
            # projscreen: build_shards fits one projection on the full
            # corpus from these and hands it to every shard.
            index_kwargs=_index_kwargs(args),
        )
    except (ValueError, ShardManifestError) as error:
        raise SystemExit(f"error: {error}") from None
    print(
        format_table(
            ["shard", "snapshot", "points"],
            [
                (position, os.path.basename(spec.snapshot_path),
                 spec.n_points)
                for position, spec in enumerate(manifest.shards)
            ],
            title=(
                f"{manifest.n_shards} x {args.index} shards over "
                f"{data.name} ({manifest.n_points} x "
                f"{manifest.dimensionality}, {manifest.method}) -> "
                f"{args.output}/{os.path.basename(manifest.path)}"
            ),
        )
    )
    return 0


def _command_reduce(args) -> int:
    data = _resolve_dataset(args.dataset, args.seed, args.label_column)
    if args.components is not None:
        reducer = CoherenceReducer(
            n_components=args.components,
            ordering=args.ordering,
            scale=not args.no_scale,
        )
    else:
        reducer = CoherenceReducer(ordering="automatic", scale=not args.no_scale)
    reduced = reducer.fit_transform(data.features)

    header = ",".join(
        [f"component_{int(i)}" for i in reducer.selected_] + ["label"]
    )
    body = np.hstack([reduced, data.labels.reshape(-1, 1).astype(float)])
    np.savetxt(
        args.output, body, delimiter=",", header=header, comments=""
    )
    print(
        f"wrote {reduced.shape[0]} rows x {reduced.shape[1]} components "
        f"(+ label) to {args.output}; variance kept "
        f"{reducer.retained_variance_fraction():.1%}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="coherence-guided dimensionality reduction "
        "(Aggarwal, PODS 2001)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    diagnose = commands.add_parser(
        "diagnose", help="is this dataset amenable to reduction?"
    )
    _add_dataset_arguments(diagnose)
    diagnose.add_argument("--no-scale", action="store_true",
                          help="skip studentization")
    diagnose.add_argument("--top", type=int, default=15,
                          help="components to print")
    diagnose.set_defaults(handler=_command_diagnose)

    evaluate = commands.add_parser(
        "evaluate", help="full vs optimal vs 1%%-threshold accuracy"
    )
    _add_dataset_arguments(evaluate)
    evaluate.add_argument("--ordering", default="eigenvalue",
                          choices=["eigenvalue", "coherence"])
    evaluate.add_argument("--no-scale", action="store_true")
    evaluate.add_argument("--k", type=int, default=3, help="neighbors per query")
    evaluate.set_defaults(handler=_command_evaluate)

    sweep = commands.add_parser(
        "sweep", help="accuracy vs dimensionality curve"
    )
    _add_dataset_arguments(sweep)
    sweep.add_argument("--ordering", default="eigenvalue",
                       choices=["eigenvalue", "coherence"])
    sweep.add_argument("--no-scale", action="store_true")
    sweep.add_argument("--k", type=int, default=3)
    sweep.add_argument("--points", type=int, default=20,
                       help="measurement rows to print")
    sweep.set_defaults(handler=_command_sweep)

    experiment = commands.add_parser(
        "experiment",
        help="reproduce a paper table/figure ('list' shows ids, 'all' runs everything)",
    )
    experiment.add_argument(
        "experiment_id",
        help="experiment id (e.g. fig13, table1, sec3), 'list', or 'all'",
    )
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--save-dir",
        default=None,
        help="also write each report to <save-dir>/<id>.txt",
    )
    experiment.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run experiments across a process pool of N workers "
        "(reports still print in input order)",
    )
    experiment.set_defaults(handler=_command_experiment)

    serve_bench = commands.add_parser(
        "serve-bench",
        help="micro-batched serving vs closed-loop one-query-per-call",
    )
    serve_bench.add_argument("--index", default="bruteforce",
                             choices=list(_INDEX_KINDS))
    serve_bench.add_argument("--n", type=int, default=10_000,
                             help="synthetic corpus size")
    serve_bench.add_argument("--dims", type=int, default=16,
                             help="corpus dimensionality")
    serve_bench.add_argument("--queries", type=int, default=2_000,
                             help="single-query requests to serve")
    serve_bench.add_argument("--k", type=int, default=3)
    serve_bench.add_argument("--workers", type=int, default=2,
                             help="worker processes (0 = in-process)")
    serve_bench.add_argument("--max-batch", type=int, default=128,
                             help="micro-batch flush size")
    serve_bench.add_argument("--max-wait-ms", type=float, default=2.0,
                             help="micro-batch flush deadline")
    serve_bench.add_argument("--max-pending", type=int, default=None,
                             help="admission bound on queued requests "
                                  "(default: unbounded)")
    serve_bench.add_argument("--shed-policy", default="reject-new",
                             choices=["reject-new", "drop-oldest"],
                             help="what to shed when the admission queue "
                                  "is full")
    serve_bench.add_argument("--deadline-ms", type=float, default=None,
                             help="end-to-end deadline per request; past "
                                  "it the request fails with "
                                  "DeadlineExceeded (default: none)")
    serve_bench.add_argument("--heartbeat-timeout", type=float, default=30.0,
                             help="seconds a worker may hold unanswered "
                                  "work without responding before it is "
                                  "killed and replaced; "
                                  "<= 0 disables hang detection")
    serve_bench.add_argument("--cache-size", type=int, default=0,
                             help="LRU result-cache entries (0 = off)")
    serve_bench.add_argument("--shards", type=int, default=1,
                             help="serve through S shard snapshots via the "
                                  "scatter-gather coordinator (1 = the "
                                  "unsharded server)")
    serve_bench.add_argument("--replicas", type=int, default=1,
                             help="replica servers per shard "
                                  "(least-loaded routing)")
    serve_bench.add_argument("--shard-method", default="round-robin",
                             choices=["round-robin", "projected"],
                             help="corpus-to-shard assignment "
                                  "(projected = PROCLUS-style clusters)")
    serve_bench.add_argument("--mutate", action="store_true",
                             help="run an insert/delete/query mutation "
                                  "trace against the mutable server and "
                                  "check every answer bit-identical to a "
                                  "fresh rebuild (exact kinds only)")
    serve_bench.add_argument("--mutate-ops", type=int, default=200,
                             help="trace length in operations "
                                  "(default: 200)")
    serve_bench.add_argument("--insert-fraction", type=float, default=0.5,
                             help="fraction of trace ops that insert "
                                  "(default: 0.5)")
    serve_bench.add_argument("--delete-fraction", type=float, default=0.2,
                             help="fraction of trace ops that delete "
                                  "(default: 0.2)")
    serve_bench.add_argument("--compact-every", type=int, default=64,
                             help="compact (and hot-swap under in-flight "
                                  "queries) every N mutations "
                                  "(default: 64)")
    serve_bench.add_argument("--drift-threshold", type=float, default=None,
                             help="captured-energy ratio that triggers a "
                                  "drift re-reduction rebuild (projscreen "
                                  "only; default: off)")
    serve_bench.add_argument("--wal-sync", default=None,
                             choices=["always", "group", "off"],
                             help="write-ahead-log fsync policy for the "
                                  "mutation trace: always = fsync every "
                                  "op (no acked op ever lost), group = "
                                  "group commit, off = OS-paced "
                                  "(default: always; requires --mutate)")
    _add_index_arguments(serve_bench)
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.set_defaults(handler=_command_serve_bench)

    reduce = commands.add_parser(
        "reduce", help="write the reduced representation as CSV"
    )
    _add_dataset_arguments(reduce)
    reduce.add_argument("--components", type=int, default=None,
                        help="components to keep (default: automatic cut-off)")
    reduce.add_argument("--ordering", default="coherence",
                        choices=["eigenvalue", "coherence"])
    reduce.add_argument("--no-scale", action="store_true")
    reduce.add_argument("-o", "--output", required=True, help="output CSV path")
    reduce.set_defaults(handler=_command_reduce)

    index = commands.add_parser(
        "index", help="build or inspect similarity-search index snapshots"
    )
    index_commands = index.add_subparsers(dest="index_command", required=True)

    index_build = index_commands.add_parser(
        "build", help="build an index over a dataset and snapshot it"
    )
    _add_dataset_arguments(index_build)
    index_build.add_argument(
        "--index", "--kind",
        default="kdtree",
        choices=list(_INDEX_KINDS),
        help="index structure to build (default: kdtree); "
             "--kind is an alias",
    )
    _add_index_arguments(index_build)
    index_build.add_argument(
        "-o", "--output", required=True, help="output .npz snapshot path"
    )
    index_build.set_defaults(handler=_command_index_build)

    index_info = index_commands.add_parser(
        "info", help="describe a snapshot without rebuilding anything"
    )
    index_info.add_argument("path", help="path to a .npz index snapshot")
    index_info.set_defaults(handler=_command_index_info)

    shard = commands.add_parser(
        "shard", help="partition a corpus into shard snapshots"
    )
    shard_commands = shard.add_subparsers(dest="shard_command", required=True)

    shard_build = shard_commands.add_parser(
        "build",
        help="split a dataset into S shard snapshots plus a manifest",
    )
    _add_dataset_arguments(shard_build)
    shard_build.add_argument(
        "--shards", type=int, default=4, help="number of shards"
    )
    shard_build.add_argument(
        "--index", "--kind",
        default="kdtree",
        choices=list(_INDEX_KINDS),
        help="index structure to build per shard (default: kdtree); "
             "--kind is an alias",
    )
    _add_index_arguments(shard_build)
    shard_build.add_argument(
        "--method",
        default="round-robin",
        choices=["round-robin", "projected"],
        help="corpus-to-shard assignment "
             "(projected = PROCLUS-style clusters)",
    )
    shard_build.add_argument(
        "-o", "--output", required=True,
        help="output directory for shard snapshots and shards.json",
    )
    shard_build.set_defaults(handler=_command_shard_build)

    return parser


def main(argv=None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
