"""Zero-rebuild snapshot persistence for the k-NN indexes.

A production serving process should not pay index construction on every
startup: the corpus is static, the structure is deterministic, so the
built index can be shipped as an artifact.  Every index in this package
exposes ``save(path)`` and a classmethod ``load(path)`` built on the two
primitives here:

* :func:`write_snapshot` — persist a dict of numpy arrays to a single
  uncompressed ``.npz`` stamped with a magic marker, a format version,
  and the index kind.  Tree structures are stored as flattened node
  arrays and the bucket/partition structures as CSR-style (starts +
  members) arrays, so there is nothing to rebuild at load time.
* :func:`read_snapshot` — load and validate such a file, rejecting
  anything that is not a snapshot (wrong magic), the wrong structure
  (kind mismatch), from the future (version mismatch), or damaged
  (unreadable / truncated / missing arrays) with :class:`SnapshotError`.

Loaded indexes answer ``query`` / ``query_batch`` **bit-identically** to
the freshly built original — same neighbors, same distances, same
:class:`~repro.search.results.QueryStats` — because the snapshot stores
the exact structure arrays, not the inputs used to derive them.

``mmap_points=True`` maps the corpus member of the archive directly from
disk instead of materializing it: ``np.savez`` stores members
uncompressed, so the raw ``.npy`` payload can be wrapped in a read-only
``np.memmap`` after parsing the zip and npy headers.  A serving process
then becomes query-ready without reading the (typically dominant) corpus
bytes at all; pages fault in as leaves are scanned.

:func:`save_index` / :func:`load_index` are the generic entry points: a
snapshot records which of the nine index kinds wrote it, and
``load_index`` dispatches to the right class.
"""

from __future__ import annotations

import struct
import zipfile

import numpy as np

# Version history:
#   1 — initial format (PR 2).
#   2 — LSH snapshots carry ``n_probes`` and VA-file snapshots carry the
#       per-dimension ``bits`` allocation vector.  Version-1 files stay
#       loadable: readers default ``n_probes`` to 1 and expand the scalar
#       ``bits_per_dim`` into a uniform allocation, so legacy snapshots
#       answer exactly as they always did.
SNAPSHOT_VERSION = 2

_MAGIC = b"repro-index-snapshot"
_RESERVED = ("__magic__", "__version__", "__kind__")


class SnapshotError(ValueError):
    """A file is not a readable index snapshot of the expected kind."""


def write_snapshot(path: str, kind: str, arrays: dict) -> None:
    """Persist ``arrays`` as an index snapshot of the given ``kind``.

    Scalars should be passed as 0-d numpy values; everything is stored
    uncompressed so that :func:`read_snapshot` can memory-map members.
    """
    for name in _RESERVED:
        if name in arrays:
            raise ValueError(f"array name {name!r} is reserved")
    np.savez(
        path,
        __magic__=np.frombuffer(_MAGIC, dtype=np.uint8),
        __version__=np.int64(SNAPSHOT_VERSION),
        __kind__=np.bytes_(kind.encode()),
        **arrays,
    )


def read_snapshot(
    path: str,
    kind: str | None,
    *,
    required: tuple[str, ...] = (),
    mmap_points: bool = False,
) -> dict:
    """Load a snapshot written by :func:`write_snapshot`.

    Args:
        path: the ``.npz`` file.
        kind: expected index kind; ``None`` accepts any kind (the caller
            reads it from the returned dict under ``"__kind__"``).
        required: array names that must be present.
        mmap_points: replace the ``"points"`` entry with a read-only
            ``np.memmap`` view of the archive member instead of loading
            it into memory.

    Raises:
        SnapshotError: for anything that is not a valid snapshot of the
            expected kind — unreadable or truncated files, foreign
            ``.npz`` archives, version or kind mismatches, and missing
            arrays.
    """
    try:
        archive = np.load(path)
    except Exception as error:
        raise SnapshotError(
            f"{path}: not a readable index snapshot ({error})"
        ) from error
    try:
        with archive:
            files = set(archive.files)
            if not set(_RESERVED) <= files:
                raise SnapshotError(
                    f"{path}: not an index snapshot (magic marker missing)"
                )
            try:
                magic = archive["__magic__"].tobytes()
                version = int(archive["__version__"])
                found_kind = bytes(archive["__kind__"]).decode()
                # With mmap_points the corpus member must never be read
                # here: NpzFile materializes a member on access, so
                # including "points" in this comprehension would pull
                # the dominant corpus bytes into memory only to discard
                # them for the memmap below.
                data: dict = {
                    name: archive[name]
                    for name in archive.files
                    if name not in _RESERVED
                    and not (mmap_points and name == "points")
                }
            except SnapshotError:
                raise
            except Exception as error:
                raise SnapshotError(
                    f"{path}: snapshot is corrupted or truncated ({error})"
                ) from error
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(
            f"{path}: snapshot is corrupted or truncated ({error})"
        ) from error
    if magic != _MAGIC:
        raise SnapshotError(
            f"{path}: not an index snapshot (magic marker mismatch)"
        )
    if not 1 <= version <= SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot version {version} "
            f"(this build reads versions 1..{SNAPSHOT_VERSION})"
        )
    if kind is not None and found_kind != kind:
        raise SnapshotError(
            f"{path}: snapshot holds a {found_kind!r} index, "
            f"expected {kind!r}"
        )
    # Membership is checked against the archive listing, not the loaded
    # dict — under mmap_points the "points" member is deliberately not
    # loaded above, but it must still count as present.
    missing = [name for name in required if name not in files]
    if missing:
        raise SnapshotError(
            f"{path}: snapshot is missing required arrays {missing}"
        )
    data["__kind__"] = found_kind
    if mmap_points:
        data["points"] = _memmap_member(path, "points")
    return data


def _memmap_member(path: str, name: str) -> np.memmap:
    """Memory-map one uncompressed ``.npy`` member of a ``.npz`` archive.

    ``np.savez`` stores members without compression, so the member's raw
    bytes are a valid ``.npy`` file at a fixed offset inside the zip:
    local file header, then the npy magic/header, then the array data.
    Parsing those headers yields the data offset for a read-only
    ``np.memmap`` over the archive file itself.
    """
    member = name + ".npy"
    try:
        with zipfile.ZipFile(path) as zf:
            info = zf.getinfo(member)
            if info.compress_type != zipfile.ZIP_STORED:
                raise SnapshotError(
                    f"{path}: member {member!r} is compressed and cannot "
                    "be memory-mapped"
                )
            header_offset = info.header_offset
        with open(path, "rb") as handle:
            handle.seek(header_offset)
            local = handle.read(30)
            if len(local) < 30 or local[:4] != b"PK\x03\x04":
                raise SnapshotError(
                    f"{path}: malformed zip entry for member {member!r}"
                )
            name_len, extra_len = struct.unpack("<HH", local[26:30])
            handle.seek(header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                    handle
                )
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                    handle
                )
            else:
                raise SnapshotError(
                    f"{path}: unsupported npy format version {version} "
                    f"for member {member!r}"
                )
            offset = handle.tell()
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(
            f"{path}: cannot memory-map member {member!r} ({error})"
        ) from error
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def _registry() -> dict:
    """Kind → index class, imported lazily to avoid circular imports."""
    from repro.search.bruteforce import BruteForceIndex
    from repro.search.idistance import IDistanceIndex
    from repro.search.igrid import IGridIndex
    from repro.search.kdtree import KdTreeIndex
    from repro.search.lsh import LshIndex
    from repro.search.projected import ProjectionScreenedIndex
    from repro.search.pyramid import PyramidIndex
    from repro.search.rtree import RTreeIndex
    from repro.search.vafile import VAFileIndex

    return {
        "bruteforce": BruteForceIndex,
        "kdtree": KdTreeIndex,
        "rtree": RTreeIndex,
        "vafile": VAFileIndex,
        "pyramid": PyramidIndex,
        "idistance": IDistanceIndex,
        "igrid": IGridIndex,
        "lsh": LshIndex,
        "projscreen": ProjectionScreenedIndex,
    }


def snapshot_kind(path: str) -> str:
    """The index kind recorded in a snapshot, without loading its arrays."""
    try:
        with np.load(path) as archive:
            if "__magic__" not in archive.files:
                raise SnapshotError(
                    f"{path}: not an index snapshot (magic marker missing)"
                )
            if archive["__magic__"].tobytes() != _MAGIC:
                raise SnapshotError(
                    f"{path}: not an index snapshot (magic marker mismatch)"
                )
            return bytes(archive["__kind__"]).decode()
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(
            f"{path}: not a readable index snapshot ({error})"
        ) from error


def save_index(index, path: str) -> None:
    """Persist any of the nine indexes to ``path`` (``.npz``)."""
    if not hasattr(index, "save"):
        raise TypeError(f"{type(index).__name__} does not support snapshots")
    index.save(path)


def load_index(path: str, *, mmap_points: bool = False):
    """Load whichever index kind a snapshot holds.

    Dispatches on the recorded kind; the returned object is an instance
    of the matching index class, query-ready without any rebuilding.
    """
    kind = snapshot_kind(path)
    registry = _registry()
    if kind not in registry:
        raise SnapshotError(f"{path}: unknown index kind {kind!r}")
    return registry[kind].load(path, mmap_points=mmap_points)
