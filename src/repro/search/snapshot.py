"""Zero-rebuild snapshot persistence for the k-NN indexes.

A production serving process should not pay index construction on every
startup: the corpus is static, the structure is deterministic, so the
built index can be shipped as an artifact.  Every index in this package
exposes ``save(path)`` and a classmethod ``load(path)`` built on the two
primitives here:

* :func:`write_snapshot` — persist a dict of numpy arrays to a single
  uncompressed ``.npz`` stamped with a magic marker, a format version,
  and the index kind.  Tree structures are stored as flattened node
  arrays and the bucket/partition structures as CSR-style (starts +
  members) arrays, so there is nothing to rebuild at load time.
* :func:`read_snapshot` — load and validate such a file, rejecting
  anything that is not a snapshot (wrong magic), the wrong structure
  (kind mismatch), from the future (version mismatch), or damaged
  (unreadable / truncated / missing arrays) with :class:`SnapshotError`.

Loaded indexes answer ``query`` / ``query_batch`` **bit-identically** to
the freshly built original — same neighbors, same distances, same
:class:`~repro.search.results.QueryStats` — because the snapshot stores
the exact structure arrays, not the inputs used to derive them.

``mmap_points=True`` maps the corpus member of the archive directly from
disk instead of materializing it: ``np.savez`` stores members
uncompressed, so the raw ``.npy`` payload can be wrapped in a read-only
``np.memmap`` after parsing the zip and npy headers.  A serving process
then becomes query-ready without reading the (typically dominant) corpus
bytes at all; pages fault in as leaves are scanned.

:func:`save_index` / :func:`load_index` are the generic entry points: a
snapshot records which of the nine index kinds wrote it, and
``load_index`` dispatches to the right class.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import tempfile
import zipfile
from dataclasses import dataclass

import numpy as np

# Version history:
#   1 — initial format (PR 2).
#   2 — LSH snapshots carry ``n_probes`` and VA-file snapshots carry the
#       per-dimension ``bits`` allocation vector.  Version-1 files stay
#       loadable: readers default ``n_probes`` to 1 and expand the scalar
#       ``bits_per_dim`` into a uniform allocation, so legacy snapshots
#       answer exactly as they always did.
SNAPSHOT_VERSION = 2

_MAGIC = b"repro-index-snapshot"
_RESERVED = ("__magic__", "__version__", "__kind__")


class SnapshotError(ValueError):
    """A file is not a readable index snapshot of the expected kind."""


def write_snapshot(path: str, kind: str, arrays: dict) -> None:
    """Persist ``arrays`` as an index snapshot of the given ``kind``.

    Scalars should be passed as 0-d numpy values; everything is stored
    uncompressed so that :func:`read_snapshot` can memory-map members.
    """
    for name in _RESERVED:
        if name in arrays:
            raise ValueError(f"array name {name!r} is reserved")
    np.savez(
        path,
        __magic__=np.frombuffer(_MAGIC, dtype=np.uint8),
        __version__=np.int64(SNAPSHOT_VERSION),
        __kind__=np.bytes_(kind.encode()),
        **arrays,
    )


def read_snapshot(
    path: str,
    kind: str | None,
    *,
    required: tuple[str, ...] = (),
    mmap_points: bool = False,
) -> dict:
    """Load a snapshot written by :func:`write_snapshot`.

    Args:
        path: the ``.npz`` file.
        kind: expected index kind; ``None`` accepts any kind (the caller
            reads it from the returned dict under ``"__kind__"``).
        required: array names that must be present.
        mmap_points: replace the ``"points"`` entry with a read-only
            ``np.memmap`` view of the archive member instead of loading
            it into memory.

    Raises:
        SnapshotError: for anything that is not a valid snapshot of the
            expected kind — unreadable or truncated files, foreign
            ``.npz`` archives, version or kind mismatches, and missing
            arrays.
    """
    try:
        archive = np.load(path)
    except Exception as error:
        raise SnapshotError(
            f"{path}: not a readable index snapshot ({error})"
        ) from error
    try:
        with archive:
            files = set(archive.files)
            if not set(_RESERVED) <= files:
                raise SnapshotError(
                    f"{path}: not an index snapshot (magic marker missing)"
                )
            try:
                magic = archive["__magic__"].tobytes()
                version = int(archive["__version__"])
                found_kind = bytes(archive["__kind__"]).decode()
                # With mmap_points the corpus member must never be read
                # here: NpzFile materializes a member on access, so
                # including "points" in this comprehension would pull
                # the dominant corpus bytes into memory only to discard
                # them for the memmap below.
                data: dict = {
                    name: archive[name]
                    for name in archive.files
                    if name not in _RESERVED
                    and not (mmap_points and name == "points")
                }
            except SnapshotError:
                raise
            except Exception as error:
                raise SnapshotError(
                    f"{path}: snapshot is corrupted or truncated ({error})"
                ) from error
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(
            f"{path}: snapshot is corrupted or truncated ({error})"
        ) from error
    if magic != _MAGIC:
        raise SnapshotError(
            f"{path}: not an index snapshot (magic marker mismatch)"
        )
    if not 1 <= version <= SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot version {version} "
            f"(this build reads versions 1..{SNAPSHOT_VERSION})"
        )
    if kind is not None and found_kind != kind:
        raise SnapshotError(
            f"{path}: snapshot holds a {found_kind!r} index, "
            f"expected {kind!r}"
        )
    # Membership is checked against the archive listing, not the loaded
    # dict — under mmap_points the "points" member is deliberately not
    # loaded above, but it must still count as present.
    missing = [name for name in required if name not in files]
    if missing:
        raise SnapshotError(
            f"{path}: snapshot is missing required arrays {missing}"
        )
    data["__kind__"] = found_kind
    if mmap_points:
        data["points"] = _memmap_member(path, "points")
    return data


def _memmap_member(path: str, name: str) -> np.memmap:
    """Memory-map one uncompressed ``.npy`` member of a ``.npz`` archive.

    ``np.savez`` stores members without compression, so the member's raw
    bytes are a valid ``.npy`` file at a fixed offset inside the zip:
    local file header, then the npy magic/header, then the array data.
    Parsing those headers yields the data offset for a read-only
    ``np.memmap`` over the archive file itself.
    """
    member = name + ".npy"
    try:
        with zipfile.ZipFile(path) as zf:
            info = zf.getinfo(member)
            if info.compress_type != zipfile.ZIP_STORED:
                raise SnapshotError(
                    f"{path}: member {member!r} is compressed and cannot "
                    "be memory-mapped"
                )
            header_offset = info.header_offset
        with open(path, "rb") as handle:
            handle.seek(header_offset)
            local = handle.read(30)
            if len(local) < 30 or local[:4] != b"PK\x03\x04":
                raise SnapshotError(
                    f"{path}: malformed zip entry for member {member!r}"
                )
            name_len, extra_len = struct.unpack("<HH", local[26:30])
            handle.seek(header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                    handle
                )
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                    handle
                )
            else:
                raise SnapshotError(
                    f"{path}: unsupported npy format version {version} "
                    f"for member {member!r}"
                )
            offset = handle.tell()
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(
            f"{path}: cannot memory-map member {member!r} ({error})"
        ) from error
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def _registry() -> dict:
    """Kind → index class (deprecated thin wrapper).

    The one authoritative mapping lives in :mod:`repro.search.registry`;
    this wrapper survives one release for callers that imported the
    private helper.  Imports stay lazy (inside the call) to avoid
    circular imports between the registry and the index modules.
    """
    from repro.search.registry import INDEX_KINDS, index_class

    return {kind: index_class(kind) for kind in INDEX_KINDS}


def snapshot_kind(path: str) -> str:
    """The index kind recorded in a snapshot, without loading its arrays."""
    try:
        with np.load(path) as archive:
            if "__magic__" not in archive.files:
                raise SnapshotError(
                    f"{path}: not an index snapshot (magic marker missing)"
                )
            if archive["__magic__"].tobytes() != _MAGIC:
                raise SnapshotError(
                    f"{path}: not an index snapshot (magic marker mismatch)"
                )
            return bytes(archive["__kind__"]).decode()
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(
            f"{path}: not a readable index snapshot ({error})"
        ) from error


def save_index(index, path: str) -> None:
    """Persist any of the nine indexes to ``path`` (``.npz``)."""
    if not hasattr(index, "save"):
        raise TypeError(f"{type(index).__name__} does not support snapshots")
    index.save(path)


def load_index(path: str, *, mmap_points: bool = False):
    """Load whichever index kind a snapshot holds.

    Dispatches on the recorded kind; the returned object is an instance
    of the matching index class, query-ready without any rebuilding.
    """
    from repro.search.registry import index_class

    kind = snapshot_kind(path)
    try:
        cls = index_class(kind)
    except ValueError:
        raise SnapshotError(f"{path}: unknown index kind {kind!r}") from None
    return cls.load(path, mmap_points=mmap_points)


# --------------------------------------------------------------------------
# Snapshot generations: a versioned directory of snapshots with a manifest.
#
# Mutable serving (repro.serve.mutation) compacts its memtable into a
# fresh snapshot periodically; each compaction publishes a new
# *generation* instead of overwriting the old file, so a hot swap can
# open the new snapshot while in-flight queries still read the old one.
# On disk a store is:
#
#     root/
#       generations.json        <- manifest: active id + one entry per gen
#       gen-000000/
#         index.npz             <- ordinary index snapshot
#         row_ids.npy           <- global row id per local row (intp)
#       gen-000001/
#         ...
#
# ``row_ids`` makes identities stable across compactions: local row i of
# the generation's snapshot is global row ``row_ids[i]``.  Rows are
# always written in ascending global-id order, so the family-wide
# (distance, lower local index) tie-break coincides with the
# (distance, lower global id) tie-break the delta merge uses.
#
# Each generation also names a write-ahead log (``wal.log``, written by
# :mod:`repro.serve.wal`) that records the mutations not yet folded
# into a snapshot; the log rotates with the generation, so pruning a
# generation directory sweeps its satisfied log with it.
#
# Publishing is atomic AND durable: the generation directory is fully
# written and fsync'd first, then the manifest is rewritten via
# tempfile + fsync + ``os.replace`` + directory fsync.  A crash
# mid-publish leaves at worst an orphaned gen directory or a stale
# ``generations.json*.tmp`` file that the next ``prune`` sweep removes;
# the manifest never names a half-written generation.  ``publish`` is
# split into ``prepare`` (write + fsync the directory, manifest
# untouched) and ``commit`` (repoint the manifest) so mutable serving
# can seed the new generation's write-ahead log *between* the two —
# the manifest repoint is the single commit point, and whichever side
# of it a crash lands on, exactly one generation's (snapshot + log)
# pair reconstructs the acknowledged state.
# --------------------------------------------------------------------------

GENERATION_MANIFEST_SCHEMA = "repro-generation-manifest/v1"
GENERATION_MANIFEST_NAME = "generations.json"
_GENERATION_SNAPSHOT = "index.npz"
_GENERATION_ROW_IDS = "row_ids.npy"
_GENERATION_WAL = "wal.log"


def _fsync_file(path: str) -> None:
    """fsync one file's contents to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    """fsync a directory so its entries survive power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class GenerationError(ValueError):
    """A generation store is missing, malformed, or inconsistent."""


@dataclass(frozen=True)
class GenerationInfo:
    """One published snapshot generation.

    Attributes:
        generation_id: monotonically increasing id (0 = initial build).
        directory: the generation's directory.
        snapshot_path: the index snapshot inside it.
        ids_path: the global-row-id sidecar inside it.
        wal_path: the generation's write-ahead log inside it (the file
            may not exist yet — a generation with no logged mutations
            is legal, and pre-WAL stores never wrote one).
        kind: index kind of the snapshot.
        n_points: rows in the snapshot.
        next_row_id: first global row id not yet allocated when this
            generation was published — an insert arriving after a
            restart continues the id sequence from here.
        reason: why the generation was published (``"initial"``,
            ``"size"``, ``"drift"``, or ``"manual"``).
    """

    generation_id: int
    directory: str
    snapshot_path: str
    ids_path: str
    wal_path: str
    kind: str
    n_points: int
    next_row_id: int
    reason: str

    def load_ids(self) -> np.ndarray:
        """Global row id per local row (``(n_points,)`` intp)."""
        ids = np.load(self.ids_path)
        return np.asarray(ids, dtype=np.intp)


class GenerationStore:
    """A versioned directory of snapshot generations plus a manifest.

    ``publish`` appends a generation and atomically repoints the
    manifest's ``active`` id at it; ``active()`` resolves the current
    generation; ``prune`` deletes all but the newest ``keep``
    generations (and any orphaned directory a crash left behind).
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, GENERATION_MANIFEST_NAME)

    def exists(self) -> bool:
        """Whether the store has been initialized (manifest present)."""
        return os.path.exists(self.manifest_path)

    def _read_manifest(self) -> dict:
        try:
            with open(self.manifest_path) as handle:
                raw = json.load(handle)
        except (OSError, ValueError) as error:
            raise GenerationError(
                f"{self.manifest_path}: not a readable generation "
                f"manifest ({error})"
            ) from error
        if raw.get("schema") != GENERATION_MANIFEST_SCHEMA:
            raise GenerationError(
                f"{self.manifest_path}: unexpected manifest schema "
                f"{raw.get('schema')!r} (this build reads "
                f"{GENERATION_MANIFEST_SCHEMA!r})"
            )
        return raw

    def _write_manifest(self, payload: dict) -> None:
        # tmp-then-replace keeps the manifest transition atomic: readers
        # see either the old generation list or the new one, never a
        # partially written file.
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=GENERATION_MANIFEST_NAME, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
                # Atomic is not durable: without fsync the rename can
                # hit disk before the tmp file's *contents*, and a
                # power loss would replay into a manifest full of
                # zeros.  Sync the data, then the rename itself.
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.manifest_path)
            _fsync_dir(self.root)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def _info(self, entry: dict) -> GenerationInfo:
        directory = os.path.join(self.root, entry["dir"])
        return GenerationInfo(
            generation_id=int(entry["id"]),
            directory=directory,
            snapshot_path=os.path.join(directory, _GENERATION_SNAPSHOT),
            ids_path=os.path.join(directory, _GENERATION_ROW_IDS),
            # Pre-WAL manifests carry no "wal" key; the conventional
            # name still resolves (to a file that simply is not there).
            wal_path=os.path.join(
                directory, str(entry.get("wal", _GENERATION_WAL))
            ),
            kind=str(entry["kind"]),
            n_points=int(entry["n_points"]),
            next_row_id=int(entry["next_row_id"]),
            reason=str(entry["reason"]),
        )

    def generations(self) -> tuple[GenerationInfo, ...]:
        """Every published generation, oldest first."""
        raw = self._read_manifest()
        try:
            infos = tuple(self._info(entry) for entry in raw["generations"])
        except (KeyError, TypeError, ValueError) as error:
            raise GenerationError(
                f"{self.manifest_path}: malformed generation manifest "
                f"({error})"
            ) from error
        return tuple(sorted(infos, key=lambda info: info.generation_id))

    def active(self) -> GenerationInfo:
        """The generation the manifest currently points at."""
        raw = self._read_manifest()
        active_id = int(raw.get("active", -1))
        for info in self.generations():
            if info.generation_id == active_id:
                return info
        raise GenerationError(
            f"{self.manifest_path}: active generation {active_id} is not "
            "in the manifest"
        )

    def prepare(
        self,
        index,
        row_ids,
        *,
        next_row_id: int,
        reason: str = "manual",
    ) -> GenerationInfo:
        """Write a new generation's directory without activating it.

        The snapshot, id sidecar, and directory entry are durably on
        disk when this returns, but the manifest still names the old
        generation — a crash here leaves only an orphan directory for
        :meth:`prune` to sweep.  The caller may add files to the
        directory (mutable serving seeds the write-ahead log at
        ``wal_path``) before :meth:`commit` makes the generation
        active.

        ``row_ids[i]`` is the global id of the snapshot's local row
        ``i``; ids must be strictly ascending so local-index tie-breaks
        equal global-id tie-breaks (the delta-merge correctness
        invariant), and ``next_row_id`` must exceed them all.
        """
        ids = np.asarray(row_ids, dtype=np.intp)
        if ids.ndim != 1 or ids.size != index.n_points:
            raise GenerationError(
                f"row_ids must be one id per snapshot row "
                f"({index.n_points}), got shape {ids.shape}"
            )
        if ids.size and np.any(np.diff(ids) <= 0):
            raise GenerationError(
                "row_ids must be strictly ascending so local-index "
                "tie-breaks equal global-id tie-breaks"
            )
        if ids.size and next_row_id <= int(ids[-1]):
            raise GenerationError(
                f"next_row_id={next_row_id} must exceed the largest "
                f"published row id {int(ids[-1])}"
            )
        os.makedirs(self.root, exist_ok=True)
        if self.exists():
            entries = list(self._read_manifest()["generations"])
            generation_id = (
                max(int(entry["id"]) for entry in entries) + 1
                if entries
                else 0
            )
        else:
            generation_id = 0
        directory = os.path.join(self.root, f"gen-{generation_id:06d}")
        os.makedirs(directory, exist_ok=True)
        snapshot_path = os.path.join(directory, _GENERATION_SNAPSHOT)
        ids_path = os.path.join(directory, _GENERATION_ROW_IDS)
        index.save(snapshot_path)
        np.save(ids_path, ids)
        # The manifest repoint in commit() is only an atomic cutover if
        # everything it will name is already durable.
        _fsync_file(snapshot_path)
        _fsync_file(ids_path)
        _fsync_dir(directory)
        _fsync_dir(self.root)
        return self._info(
            {
                "id": generation_id,
                "dir": os.path.basename(directory),
                "kind": index.kind,
                "n_points": int(index.n_points),
                "next_row_id": int(next_row_id),
                "reason": reason,
            }
        )

    def commit(self, info: GenerationInfo) -> GenerationInfo:
        """Activate a generation written by :meth:`prepare`.

        Appends the manifest entry and atomically repoints ``active``
        at it — the single commit point of a compaction.
        """
        if not os.path.exists(info.snapshot_path):
            raise GenerationError(
                f"{info.directory}: cannot commit a generation whose "
                "snapshot was never prepared"
            )
        entries = (
            list(self._read_manifest()["generations"])
            if self.exists()
            else []
        )
        if any(int(entry["id"]) >= info.generation_id for entry in entries):
            raise GenerationError(
                f"generation {info.generation_id} is stale: a newer "
                "generation was published after it was prepared"
            )
        entries.append(
            {
                "id": info.generation_id,
                "dir": os.path.basename(info.directory),
                "kind": info.kind,
                "n_points": info.n_points,
                "next_row_id": info.next_row_id,
                "reason": info.reason,
                "wal": os.path.basename(info.wal_path),
            }
        )
        self._write_manifest(
            {
                "schema": GENERATION_MANIFEST_SCHEMA,
                "active": info.generation_id,
                "generations": entries,
            }
        )
        return self._info(entries[-1])

    def publish(
        self,
        index,
        row_ids,
        *,
        next_row_id: int,
        reason: str = "manual",
    ) -> GenerationInfo:
        """Write ``index`` (+ id sidecar) as a new active generation.

        :meth:`prepare` then :meth:`commit` in one step, for callers
        with nothing to seed between the directory write and the
        manifest repoint.
        """
        return self.commit(
            self.prepare(
                index, row_ids, next_row_id=next_row_id, reason=reason
            )
        )

    def prune(self, keep: int = 2) -> tuple[int, ...]:
        """Drop all but the newest ``keep`` generations; returns dropped ids.

        Orphaned ``gen-*`` directories (from a crash between directory
        write and manifest publish) and stale ``generations.json*.tmp``
        files (from a crash mid-manifest-write) are deleted too.  The
        active generation is always kept.
        """
        if keep < 1:
            raise ValueError(f"keep must be positive, got {keep}")
        raw = self._read_manifest()
        infos = self.generations()
        active_id = int(raw.get("active", -1))
        kept_ids = {info.generation_id for info in infos[-keep:]}
        if any(info.generation_id == active_id for info in infos):
            kept_ids.add(active_id)
        kept_ids = sorted(kept_ids)
        dropped = tuple(
            info.generation_id
            for info in infos
            if info.generation_id not in kept_ids
        )
        entries = [
            entry
            for entry in raw["generations"]
            if int(entry["id"]) in kept_ids
        ]
        self._write_manifest(
            {
                "schema": GENERATION_MANIFEST_SCHEMA,
                "active": active_id,
                "generations": entries,
            }
        )
        named = {f"gen-{generation_id:06d}" for generation_id in kept_ids}
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name)
            if (
                name.startswith("gen-")
                and os.path.isdir(path)
                and name not in named
            ):
                shutil.rmtree(path)
            elif (
                name.startswith(GENERATION_MANIFEST_NAME)
                and name.endswith(".tmp")
                and os.path.isfile(path)
            ):
                # A crash between mkstemp and os.replace strands the
                # manifest's tmp file; it is never the live manifest
                # (os.replace consumed it if the write succeeded).
                os.unlink(path)
        return dropped
