"""An R-tree with STR bulk loading and best-first exact k-NN search.

The R-tree (Guttman, SIGMOD 1984) partitions the data into a hierarchy of
minimum bounding rectangles (MBRs).  This implementation bulk-loads with
Sort-Tile-Recursive (STR), which packs static data into near-optimal
pages, and answers k-NN queries with the best-first traversal of
Hjaltason & Samet: a priority queue ordered by MINDIST (the optimistic
bound of Roussopoulos et al.) from which nodes are popped until the bound
of the best unopened node exceeds the current k-th-best distance — at
which point every remaining node is provably prunable.

The tree lives in **flattened node arrays**: per node an MBR row in
``(m, d)`` lower/upper matrices, a leaf flag, and a ``[start, stop)``
slot range — into a corpus-row permutation array for leaves, into a flat
child-id array for inner nodes.  STR tiling is fully vectorized: one
``lexsort`` per dimension orders every pending slab at once and a
cumulative-boundary renumbering assigns the next level of slabs, so no
Python recursion ever touches individual pages; leaf MBRs come from one
``minimum.reduceat``/``maximum.reduceat`` pass.  The arrays serialize
directly to a snapshot (:mod:`repro.search.snapshot`).

The instrumentation mirrors the paper's Section 1.1 argument exactly:
when dimensionality is high, MINDIST of almost every MBR falls below the
k-th-best distance and nothing is pruned; after aggressive reduction the
same corpus prunes almost everything.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.search.batch import dispatch_query_batch
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot


def _mindist_squared(lower: np.ndarray, upper: np.ndarray, query: np.ndarray) -> float:
    """Squared MINDIST of a query to an MBR (0 inside the box)."""
    below = np.maximum(lower - query, 0.0)
    above = np.maximum(query - upper, 0.0)
    return float(np.sum(np.square(below)) + np.sum(np.square(above)))


def _mindist_squared_rows(
    lower: np.ndarray, upper: np.ndarray, query: np.ndarray
) -> np.ndarray:
    """Squared MINDIST of a query to many MBRs at once — same arithmetic
    as :func:`_mindist_squared` broadcast over rows."""
    below = np.maximum(lower - query, 0.0)
    above = np.maximum(query - upper, 0.0)
    return np.sum(np.square(below), axis=1) + np.sum(np.square(above), axis=1)


def _group_boundaries(group: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Starts and sizes of the contiguous runs of a sorted group array."""
    n = group.size
    starts = np.flatnonzero(np.r_[True, group[1:] != group[:-1]])
    sizes = np.diff(np.r_[starts, n])
    return starts, sizes


class RTreeIndex:
    """STR-bulk-loaded R-tree over a static corpus.

    Args:
        points: ``(n, d)`` corpus.
        page_size: maximum entries per node (leaf points / inner children).
    """

    # Snapshot kind: read by the registry, snapshot dispatch, and
    # the :class:`repro.search.Index` protocol.
    kind = "rtree"

    def __init__(self, points, page_size: int = 32) -> None:
        if page_size < 2:
            raise ValueError(f"page_size must be at least 2, got {page_size}")
        self._points = validate_corpus(points)
        self._page_size = page_size
        self._bulk_load()

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    @property
    def height(self) -> int:
        """Number of levels (1 for a single-leaf tree)."""
        levels = 1
        node = self._root_id
        while not self._node_is_leaf[node]:
            levels += 1
            node = int(self._child_ids[self._slot_start[node]])
        return levels

    # -- construction --------------------------------------------------

    def _str_partition(self) -> tuple[np.ndarray, np.ndarray]:
        """Sort-Tile-Recursive page assignment, vectorized level-wise.

        Returns a corpus-row permutation plus the page start offsets into
        it.  Each dimension pass sorts *every* pending slab at once with
        a single ``lexsort`` keyed on (slab id, coordinate), then slices
        each slab into sub-slabs sized so the final tiles hold at most
        ``page_size`` points — the same recurrence the classical
        recursive tiler performs one slab at a time.
        """
        points = self._points
        n, d = points.shape
        page = self._page_size
        order = np.arange(n, dtype=np.intp)
        group = np.zeros(n, dtype=np.int64)
        if n > page:
            positions = np.arange(n, dtype=np.int64)
            for dim in range(d):
                perm = np.lexsort((points[order, dim], group))
                order = order[perm]
                group = group[perm]
                starts, sizes = _group_boundaries(group)
                if sizes.max() <= page:
                    break
                n_pages = -(-sizes // page)
                n_slabs = np.ceil(
                    n_pages ** (1.0 / (d - dim))
                ).astype(np.int64)
                # Slabs already at page size stay whole (the recursive
                # tiler stops recursing into them).
                n_slabs[sizes <= page] = 1
                slab_size = -(-sizes // n_slabs)
                gidx = np.repeat(
                    np.arange(starts.size, dtype=np.int64), sizes
                )
                slab = (positions - starts[gidx]) // slab_size[gidx]
                change = np.r_[
                    True,
                    (gidx[1:] != gidx[:-1]) | (slab[1:] != slab[:-1]),
                ]
                group = np.cumsum(change) - 1
            starts, sizes = _group_boundaries(group)
            if sizes.max() > page:
                # More points than one page but no dimensions left to
                # slice (can happen with many duplicate points): chunk.
                gidx = np.repeat(
                    np.arange(starts.size, dtype=np.int64), sizes
                )
                slab = (positions - starts[gidx]) // page
                change = np.r_[
                    True,
                    (gidx[1:] != gidx[:-1]) | (slab[1:] != slab[:-1]),
                ]
                starts = np.flatnonzero(change)
        else:
            starts = np.zeros(1, dtype=np.int64)
        return order, np.asarray(starts, dtype=np.int64)

    def _bulk_load(self) -> None:
        """Build the flattened node arrays bottom-up from the STR pages."""
        points = self._points
        n, d = points.shape
        perm, page_starts = self._str_partition()
        ordered = points[perm]
        leaf_lower = np.minimum.reduceat(ordered, page_starts, axis=0)
        leaf_upper = np.maximum.reduceat(ordered, page_starts, axis=0)
        n_leaves = page_starts.size

        lowers = [leaf_lower]
        uppers = [leaf_upper]
        is_leaf = [np.ones(n_leaves, dtype=bool)]
        slot_start = [page_starts]
        slot_stop = [np.r_[page_starts[1:], n]]
        child_chunks: list[np.ndarray] = []
        child_cursor = 0

        level_ids = np.arange(n_leaves, dtype=np.int64)
        level_lower, level_upper = leaf_lower, leaf_upper
        next_id = n_leaves
        while level_ids.size > 1:
            # Pack children in center-order along the first two dimensions
            # (cheap proxy for STR at inner levels).
            centers = (level_lower + level_upper) / 2.0
            keys = tuple(
                centers[:, dim] for dim in range(min(d, 2) - 1, -1, -1)
            )
            order = np.lexsort(keys)
            ordered_ids = level_ids[order]
            group_starts = np.arange(
                0, ordered_ids.size, self._page_size, dtype=np.int64
            )
            parent_lower = np.minimum.reduceat(
                level_lower[order], group_starts, axis=0
            )
            parent_upper = np.maximum.reduceat(
                level_upper[order], group_starts, axis=0
            )
            n_parents = group_starts.size
            child_chunks.append(ordered_ids)
            slot_start.append(child_cursor + group_starts)
            slot_stop.append(
                child_cursor + np.r_[group_starts[1:], ordered_ids.size]
            )
            child_cursor += ordered_ids.size
            lowers.append(parent_lower)
            uppers.append(parent_upper)
            is_leaf.append(np.zeros(n_parents, dtype=bool))
            level_ids = np.arange(next_id, next_id + n_parents, dtype=np.int64)
            next_id += n_parents
            level_lower, level_upper = parent_lower, parent_upper

        self._perm = perm
        self._node_lower = np.ascontiguousarray(np.concatenate(lowers, axis=0))
        self._node_upper = np.ascontiguousarray(np.concatenate(uppers, axis=0))
        self._node_is_leaf = np.concatenate(is_leaf)
        self._slot_start = np.concatenate(slot_start)
        self._slot_stop = np.concatenate(slot_stop)
        self._child_ids = (
            np.concatenate(child_chunks)
            if child_chunks
            else np.zeros(0, dtype=np.int64)
        )
        self._root_id = next_id - 1

    # -- persistence ----------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot)."""
        write_snapshot(
            path,
            self.kind,
            {
                "points": self._points,
                "page_size": np.int64(self._page_size),
                "perm": self._perm,
                "node_lower": self._node_lower,
                "node_upper": self._node_upper,
                "node_is_leaf": self._node_is_leaf,
                "slot_start": self._slot_start,
                "slot_stop": self._slot_stop,
                "child_ids": self._child_ids,
                "root_id": np.int64(self._root_id),
            },
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "RTreeIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately."""
        data = read_snapshot(
            path,
            cls.kind,
            required=(
                "points", "page_size", "perm", "node_lower", "node_upper",
                "node_is_leaf", "slot_start", "slot_stop", "child_ids",
                "root_id",
            ),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index._page_size = int(data["page_size"])
        index._perm = data["perm"].astype(np.intp, copy=False)
        index._node_lower = data["node_lower"]
        index._node_upper = data["node_upper"]
        index._node_is_leaf = data["node_is_leaf"]
        index._slot_start = data["slot_start"]
        index._slot_stop = data["slot_stop"]
        index._child_ids = data["child_ids"]
        index._root_id = int(data["root_id"])
        return index

    # -- querying -------------------------------------------------------

    def _leaf_rows(self, node: int) -> np.ndarray:
        return self._perm[self._slot_start[node]:self._slot_stop[node]]

    def _children(self, node: int) -> np.ndarray:
        return self._child_ids[self._slot_start[node]:self._slot_stop[node]]

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k-NN via best-first (MINDIST priority queue) traversal."""
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        stats = QueryStats()

        counter = itertools.count()
        root = self._root_id
        frontier: list[tuple[float, int, int]] = [
            (
                _mindist_squared(
                    self._node_lower[root], self._node_upper[root], vector
                ),
                next(counter),
                root,
            )
        ]
        best: list[tuple[float, int]] = []  # max-heap via negation

        def visit_limit() -> float:
            """Current k-th best distance, padded by a relative epsilon.

            MINDIST sums squares in a different order than the exact
            scan, so for a degenerate (point-like) box it can land a few
            ulps *above* the true distance; without the pad an exact tie
            could be pruned and the index-order tie-break would diverge
            from brute force.  Visiting marginally more nodes is always
            safe — membership is decided by the exact scan.
            """
            if len(best) < k:
                return np.inf
            worst = -best[0][0]
            return worst + 1e-12 * worst

        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > visit_limit():
                # Everything still on the frontier has an even larger
                # bound: all of it is pruned at once.
                stats.nodes_pruned += 1 + len(frontier)
                break
            stats.nodes_visited += 1
            if self._node_is_leaf[node]:
                rows = self._leaf_rows(node)
                gaps = self._points[rows] - vector
                squared = np.sum(np.square(gaps), axis=1)
                stats.points_scanned += int(rows.size)
                for idx, d2 in zip(rows, squared):
                    entry = (-float(d2), -int(idx))
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
            else:
                children = self._children(node)
                bounds = _mindist_squared_rows(
                    self._node_lower[children],
                    self._node_upper[children],
                    vector,
                )
                limit = visit_limit()
                for child, child_bound in zip(children, bounds):
                    if child_bound <= limit:
                        heapq.heappush(
                            frontier,
                            (float(child_bound), next(counter), int(child)),
                        )
                    else:
                        stats.nodes_pruned += 1

        ordered = sorted(best, key=lambda entry: (-entry[0], -entry[1]))
        neighbors = tuple(
            Neighbor(index=-tie, distance=float(np.sqrt(-negated)))
            for negated, tie in ordered
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """k-NN for every row of ``queries``; bit-identical to looping
        :meth:`query`.  ``n_workers`` > 1 fans the rows out over a
        thread pool (best-first traversal does not vectorize)."""
        return dispatch_query_batch(self, queries, k, n_workers)

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query``.

        Subtrees whose MBR's MINDIST exceeds the radius are pruned;
        results are sorted by ascending distance (ties by index).
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        radius_sq = radius * radius
        # Pad the node-level cutoff: MINDIST can land a few ulps above
        # the true distance for degenerate boxes (see visit_limit in
        # query); exact membership is still decided by the leaf scan.
        node_limit = radius_sq + 1e-12 * radius_sq
        stats = QueryStats()
        found: list[tuple[float, int]] = []
        pending = [self._root_id]
        while pending:
            node = pending.pop()
            stats.nodes_visited += 1
            if self._node_is_leaf[node]:
                rows = self._leaf_rows(node)
                gaps = self._points[rows] - vector
                squared = np.sum(np.square(gaps), axis=1)
                stats.points_scanned += int(rows.size)
                for idx, d2 in zip(rows, squared):
                    if d2 <= radius_sq:
                        found.append((float(d2), int(idx)))
                continue
            children = self._children(node)
            bounds = _mindist_squared_rows(
                self._node_lower[children], self._node_upper[children], vector
            )
            for child, child_bound in zip(children, bounds):
                if child_bound <= node_limit:
                    pending.append(int(child))
                else:
                    stats.nodes_pruned += 1
        found.sort()
        neighbors = tuple(
            Neighbor(index=idx, distance=float(np.sqrt(d2))) for d2, idx in found
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def iter_nearest(self, query):
        """Yield corpus points in ascending distance order, lazily.

        The incremental nearest-neighbor algorithm of Hjaltason & Samet:
        one priority queue holds both nodes (keyed by MINDIST) and points
        (keyed by exact distance); a point is emitted exactly when it
        reaches the front, i.e. when nothing unexplored can beat it.
        Yields :class:`Neighbor` objects; stop iterating when satisfied —
        only the work needed so far is performed.
        """
        vector = validate_query(query, self.dimensionality)
        counter = itertools.count()
        root = self._root_id
        # Entries: (squared key, tie, kind, node id) where kind 0 = point
        # (tie is the corpus index so equal-distance points emit in index
        # order) and kind 1 = node.
        frontier: list[tuple[float, int, int, int]] = [
            (
                _mindist_squared(
                    self._node_lower[root], self._node_upper[root], vector
                ),
                0,
                1,
                root,
            )
        ]
        while frontier:
            key, tie, kind, node = heapq.heappop(frontier)
            if kind == 0:
                yield Neighbor(index=tie, distance=float(np.sqrt(key)))
                continue
            if self._node_is_leaf[node]:
                rows = self._leaf_rows(node)
                gaps = self._points[rows] - vector
                squared = np.sum(np.square(gaps), axis=1)
                for idx, d2 in zip(rows, squared):
                    heapq.heappush(frontier, (float(d2), int(idx), 0, -1))
            else:
                children = self._children(node)
                bounds = _mindist_squared_rows(
                    self._node_lower[children],
                    self._node_upper[children],
                    vector,
                )
                for child, bound in zip(children, bounds):
                    heapq.heappush(
                        frontier, (float(bound), next(counter), 1, int(child))
                    )


# Deprecated alias of ``RTreeIndex.kind``; kept one release for
# external callers that imported the module constant.
_SNAPSHOT_KIND = RTreeIndex.kind
