"""An R-tree with STR bulk loading and best-first exact k-NN search.

The R-tree (Guttman, SIGMOD 1984) partitions the data into a hierarchy of
minimum bounding rectangles (MBRs).  This implementation bulk-loads with
Sort-Tile-Recursive (STR), which packs static data into near-optimal
pages, and answers k-NN queries with the best-first traversal of
Hjaltason & Samet: a priority queue ordered by MINDIST (the optimistic
bound of Roussopoulos et al.) from which nodes are popped until the bound
of the best unopened node exceeds the current k-th-best distance — at
which point every remaining node is provably prunable.

The instrumentation mirrors the paper's Section 1.1 argument exactly:
when dimensionality is high, MINDIST of almost every MBR falls below the
k-th-best distance and nothing is pruned; after aggressive reduction the
same corpus prunes almost everything.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.search.batch import dispatch_query_batch
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)


@dataclass
class _RNode:
    """An R-tree node: an MBR plus either child nodes or corpus indices."""

    lower: np.ndarray
    upper: np.ndarray
    children: "list[_RNode] | None" = None
    indices: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


def _mindist_squared(lower: np.ndarray, upper: np.ndarray, query: np.ndarray) -> float:
    """Squared MINDIST of a query to an MBR (0 inside the box)."""
    below = np.maximum(lower - query, 0.0)
    above = np.maximum(query - upper, 0.0)
    return float(np.sum(np.square(below)) + np.sum(np.square(above)))


def _bounding_box(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return points.min(axis=0), points.max(axis=0)


class RTreeIndex:
    """STR-bulk-loaded R-tree over a static corpus.

    Args:
        points: ``(n, d)`` corpus.
        page_size: maximum entries per node (leaf points / inner children).
    """

    def __init__(self, points, page_size: int = 32) -> None:
        if page_size < 2:
            raise ValueError(f"page_size must be at least 2, got {page_size}")
        self._points = validate_corpus(points)
        self._page_size = page_size
        self._root = self._bulk_load()

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    @property
    def height(self) -> int:
        """Number of levels (1 for a single-leaf tree)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            levels += 1
            node = node.children[0]
        return levels

    # -- construction --------------------------------------------------

    def _str_tile(self, indices: np.ndarray) -> list[np.ndarray]:
        """Sort-Tile-Recursive: partition ``indices`` into pages.

        Recursively sorts along each dimension in turn and slices into
        vertical "slabs" sized so that the final tiles hold at most
        ``page_size`` points each.
        """
        pages: list[np.ndarray] = []

        def tile(subset: np.ndarray, dim: int) -> None:
            if subset.size <= self._page_size:
                pages.append(subset)
                return
            if dim >= self.dimensionality:
                # More points than one page but no dimensions left to
                # slice (can happen with many duplicate points): chunk.
                for start in range(0, subset.size, self._page_size):
                    pages.append(subset[start : start + self._page_size])
                return
            n_pages = math.ceil(subset.size / self._page_size)
            n_slabs = math.ceil(n_pages ** (1.0 / (self.dimensionality - dim)))
            slab_size = math.ceil(subset.size / n_slabs)
            order = subset[np.argsort(self._points[subset, dim], kind="stable")]
            for start in range(0, order.size, slab_size):
                tile(order[start : start + slab_size], dim + 1)

        tile(indices, 0)
        return pages

    def _bulk_load(self) -> _RNode:
        pages = self._str_tile(np.arange(self.n_points, dtype=np.intp))
        level: list[_RNode] = []
        for page in pages:
            lower, upper = _bounding_box(self._points[page])
            level.append(_RNode(lower=lower, upper=upper, indices=page))

        while len(level) > 1:
            parents: list[_RNode] = []
            # Pack children in center-order along alternating dimensions
            # (cheap proxy for STR at inner levels).
            centers = np.asarray(
                [(node.lower + node.upper) / 2.0 for node in level]
            )
            order = np.lexsort(tuple(centers[:, dim] for dim in range(
                min(self.dimensionality, 2) - 1, -1, -1
            )))
            ordered = [level[i] for i in order]
            for start in range(0, len(ordered), self._page_size):
                group = ordered[start : start + self._page_size]
                lower = np.min([node.lower for node in group], axis=0)
                upper = np.max([node.upper for node in group], axis=0)
                parents.append(_RNode(lower=lower, upper=upper, children=group))
            level = parents
        return level[0]

    # -- querying -------------------------------------------------------

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k-NN via best-first (MINDIST priority queue) traversal."""
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        stats = QueryStats()

        counter = itertools.count()
        frontier: list[tuple[float, int, _RNode]] = [
            (_mindist_squared(self._root.lower, self._root.upper, vector),
             next(counter), self._root)
        ]
        best: list[tuple[float, int]] = []  # max-heap via negation

        def visit_limit() -> float:
            """Current k-th best distance, padded by a relative epsilon.

            MINDIST sums squares in a different order than the exact
            scan, so for a degenerate (point-like) box it can land a few
            ulps *above* the true distance; without the pad an exact tie
            could be pruned and the index-order tie-break would diverge
            from brute force.  Visiting marginally more nodes is always
            safe — membership is decided by the exact scan.
            """
            if len(best) < k:
                return np.inf
            worst = -best[0][0]
            return worst + 1e-12 * worst

        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > visit_limit():
                # Everything still on the frontier has an even larger
                # bound: all of it is pruned at once.
                stats.nodes_pruned += 1 + len(frontier)
                break
            stats.nodes_visited += 1
            if node.is_leaf:
                gaps = self._points[node.indices] - vector
                squared = np.sum(np.square(gaps), axis=1)
                stats.points_scanned += int(node.indices.size)
                for idx, d2 in zip(node.indices, squared):
                    entry = (-float(d2), -int(idx))
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
            else:
                for child in node.children:
                    child_bound = _mindist_squared(
                        child.lower, child.upper, vector
                    )
                    if child_bound <= visit_limit():
                        heapq.heappush(
                            frontier, (child_bound, next(counter), child)
                        )
                    else:
                        stats.nodes_pruned += 1

        ordered = sorted(best, key=lambda entry: (-entry[0], -entry[1]))
        neighbors = tuple(
            Neighbor(index=-tie, distance=float(np.sqrt(-negated)))
            for negated, tie in ordered
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """k-NN for every row of ``queries``; bit-identical to looping
        :meth:`query`.  ``n_workers`` > 1 fans the rows out over a
        thread pool (best-first traversal does not vectorize)."""
        return dispatch_query_batch(self, queries, k, n_workers)

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query``.

        Subtrees whose MBR's MINDIST exceeds the radius are pruned;
        results are sorted by ascending distance (ties by index).
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        radius_sq = radius * radius
        # Pad the node-level cutoff: MINDIST can land a few ulps above
        # the true distance for degenerate boxes (see visit_limit in
        # query); exact membership is still decided by the leaf scan.
        node_limit = radius_sq + 1e-12 * radius_sq
        stats = QueryStats()
        found: list[tuple[float, int]] = []
        pending = [self._root]
        while pending:
            node = pending.pop()
            stats.nodes_visited += 1
            if node.is_leaf:
                gaps = self._points[node.indices] - vector
                squared = np.sum(np.square(gaps), axis=1)
                stats.points_scanned += int(node.indices.size)
                for idx, d2 in zip(node.indices, squared):
                    if d2 <= radius_sq:
                        found.append((float(d2), int(idx)))
                continue
            for child in node.children:
                if _mindist_squared(child.lower, child.upper, vector) <= node_limit:
                    pending.append(child)
                else:
                    stats.nodes_pruned += 1
        found.sort()
        neighbors = tuple(
            Neighbor(index=idx, distance=float(np.sqrt(d2))) for d2, idx in found
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def iter_nearest(self, query):
        """Yield corpus points in ascending distance order, lazily.

        The incremental nearest-neighbor algorithm of Hjaltason & Samet:
        one priority queue holds both nodes (keyed by MINDIST) and points
        (keyed by exact distance); a point is emitted exactly when it
        reaches the front, i.e. when nothing unexplored can beat it.
        Yields :class:`Neighbor` objects; stop iterating when satisfied —
        only the work needed so far is performed.
        """
        vector = validate_query(query, self.dimensionality)
        counter = itertools.count()
        # Entries: (squared key, tie, kind, payload) where kind 0 = point
        # (tie is the corpus index so equal-distance points emit in index
        # order) and kind 1 = node.
        frontier: list = [
            (
                _mindist_squared(self._root.lower, self._root.upper, vector),
                0,
                1,
                self._root,
            )
        ]
        while frontier:
            key, tie, kind, payload = heapq.heappop(frontier)
            if kind == 0:
                yield Neighbor(index=tie, distance=float(np.sqrt(key)))
                continue
            node = payload
            if node.is_leaf:
                gaps = self._points[node.indices] - vector
                squared = np.sum(np.square(gaps), axis=1)
                for idx, d2 in zip(node.indices, squared):
                    heapq.heappush(frontier, (float(d2), int(idx), 0, None))
            else:
                for child in node.children:
                    bound = _mindist_squared(child.lower, child.upper, vector)
                    heapq.heappush(frontier, (bound, next(counter), 1, child))
