"""Index substrate.

Exact k-nearest-neighbor indexes with pruning instrumentation: a linear
scan baseline, a kd-tree and an STR-bulk-loaded R-tree (both with
branch-and-bound / best-first search in the style of Roussopoulos et al.
and Hjaltason & Samet), and a VA-file.  The per-query statistics
(node accesses, points scanned, partitions pruned) substantiate the
paper's Section 1.1 argument: in high dimensionality the optimistic
bounds stop pruning, and aggressive dimensionality reduction restores
index effectiveness.

Every static index also persists to a single-file snapshot
(:func:`save_index` / :func:`load_index`): structures are stored as flat
arrays, so a loaded index is query-ready with zero rebuilding and
answers bit-identically to the freshly built original.

The kinds themselves are enumerated by :mod:`repro.search.registry` —
the single kind→class mapping in the codebase.  ``INDEX_KINDS`` lists
them, :func:`build_index` constructs one by name with validated
keywords, and every registered class satisfies the :class:`Index`
protocol.
"""

from repro.search.registry import (
    EXACT_KINDS,
    INDEX_KINDS,
    Index,
    KindSpec,
    ParamSpec,
    build_index,
    index_class,
    index_spec,
    iter_specs,
    shared_build_kwargs,
)
from repro.search.snapshot import (
    SnapshotError,
    load_index,
    save_index,
    snapshot_kind,
)
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    combine_stats,
)
from repro.search.bruteforce import BruteForceIndex
from repro.search.dynamic_rtree import DynamicRTree
from repro.search.idistance import IDistanceIndex
from repro.search.igrid import IGridIndex, igrid_discretization
from repro.search.kdtree import KdTreeIndex
from repro.search.lsh import LshIndex
from repro.search.projected import (
    ProjectionScreenedIndex,
    ProjectionSpec,
    fit_projection,
)
from repro.search.pyramid import PyramidIndex
from repro.search.recall import ExactnessViolation, recall_against_exact
from repro.search.rtree import RTreeIndex
from repro.search.vafile import VAFileIndex

__all__ = [
    "BatchKnnResult",
    "BruteForceIndex",
    "build_index",
    "combine_stats",
    "DynamicRTree",
    "EXACT_KINDS",
    "ExactnessViolation",
    "fit_projection",
    "IDistanceIndex",
    "IGridIndex",
    "igrid_discretization",
    "Index",
    "INDEX_KINDS",
    "index_class",
    "index_spec",
    "iter_specs",
    "KdTreeIndex",
    "KindSpec",
    "KnnResult",
    "load_index",
    "LshIndex",
    "Neighbor",
    "ParamSpec",
    "ProjectionScreenedIndex",
    "ProjectionSpec",
    "PyramidIndex",
    "QueryStats",
    "recall_against_exact",
    "RTreeIndex",
    "save_index",
    "shared_build_kwargs",
    "snapshot_kind",
    "SnapshotError",
    "VAFileIndex",
]
