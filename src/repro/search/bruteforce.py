"""Linear-scan exact k-NN — the baseline every index is checked against."""

from __future__ import annotations

import numpy as np

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    combine_stats,
    validate_corpus,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot

_SNAPSHOT_KIND = "bruteforce"

# Block size for batched queries, in distance-matrix entries: query rows
# are processed in blocks of ``_BLOCK_ENTRIES // n`` so the ``(q, n)``
# scratch matrices stay around 32 MB regardless of batch size.
_BLOCK_ENTRIES = 4_194_304


class BruteForceIndex:
    """Exact k-NN by scanning every corpus point.

    Always correct, never prunes; its :class:`QueryStats` (``n`` points
    scanned, zero nodes) anchor the pruning comparisons.
    """

    def __init__(self, points) -> None:
        self._points = validate_corpus(points)
        # ||p||^2 per corpus row, for the batched Gram expansion.
        self._sq_norms = np.einsum(
            "nd,nd->n", self._points, self._points
        )
        self._max_sq_norm = float(self._sq_norms.max())
        # float32 shadow corpus for batched candidate scoring, built on
        # first use so purely sequential callers pay nothing.
        self._points_f32: np.ndarray | None = None
        self._sq_norms_f32: np.ndarray | None = None

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot)."""
        write_snapshot(
            path,
            _SNAPSHOT_KIND,
            {"points": self._points, "sq_norms": self._sq_norms},
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "BruteForceIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately.

        ``mmap_points=True`` maps the corpus from the file instead of
        reading it into memory.
        """
        data = read_snapshot(
            path,
            _SNAPSHOT_KIND,
            required=("points", "sq_norms"),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index._sq_norms = data["sq_norms"]
        index._max_sq_norm = float(index._sq_norms.max())
        index._points_f32 = None
        index._sq_norms_f32 = None
        return index

    def query(self, query, k: int = 1) -> KnnResult:
        """Return the ``k`` nearest corpus points to ``query`` (Euclidean).

        Ties are broken by corpus index (lower index wins), which makes
        results deterministic and comparable across index structures.
        """
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)

        gaps = self._points - vector
        squared = np.sum(np.square(gaps), axis=1)
        # argsort is O(n log n); for the corpus sizes here the simplicity
        # beats a partial-selection micro-optimization, and full sorting
        # gives the deterministic tie-break for free.
        order = np.argsort(squared, kind="stable")[:k]
        neighbors = tuple(
            Neighbor(index=int(i), distance=float(np.sqrt(squared[i])))
            for i in order
        )
        stats = QueryStats(points_scanned=self.n_points)
        return KnnResult(neighbors=neighbors, stats=stats)

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """Vectorized k-NN for every row of ``queries``.

        One BLAS matrix multiply produces all squared distances at once
        via ``||q - p||^2 = ||q||^2 - 2 q.p + ||p||^2``; ``argpartition``
        narrows each row to its top-k candidates.  Because the expansion
        loses a few ulps to cancellation, candidate selection keeps a
        conservative margin around the k-th partitioned value and the
        survivors' distances are recomputed with the same subtract-square
        arithmetic the sequential path uses — so the returned neighbors,
        distances, and tie-breaks are bit-identical to looping
        :meth:`query`.

        ``n_workers`` is accepted for protocol uniformity across the
        index family and ignored: the vectorized path outruns any thread
        fan-out.
        """
        del n_workers
        array = validate_queries(queries, self.dimensionality)
        k = validate_k(k, self.n_points)
        block = max(1, _BLOCK_ENTRIES // self.n_points)
        results: list[KnnResult] = []
        for start in range(0, array.shape[0], block):
            results.extend(self._query_block(array[start : start + block], k))
        return BatchKnnResult(
            results=tuple(results),
            stats=combine_stats(r.stats for r in results),
        )

    def _candidate_mask(
        self, rows: np.ndarray, q_sq: np.ndarray, k: int
    ) -> np.ndarray:
        """Boolean ``(q, n)`` mask of exact-top-k candidates per query.

        The scores only *select* candidates — exact distances are
        recomputed afterwards — so the (memory-bound) score matrix runs
        in float32 when magnitudes permit, with a margin around the k-th
        partitioned value that dominates the combined cancellation and
        precision error.  Every point whose exact distance ties or beats
        the exact k-th therefore survives the mask.
        """
        d = self.dimensionality
        use_f32 = (
            self._max_sq_norm < 1e30 and float(q_sq.max(initial=0.0)) < 1e30
        )
        if use_f32:
            if self._points_f32 is None:
                self._points_f32 = self._points.astype(np.float32)
                self._sq_norms_f32 = self._sq_norms.astype(np.float32)
            # In-place expansion: every avoided temporary is a full pass
            # over the (q, n) matrix.
            approx = rows.astype(np.float32) @ self._points_f32.T
            approx *= -2.0
            approx += q_sq.astype(np.float32)[:, None]
            approx += self._sq_norms_f32
            margin = 1e-5 * (d + 100.0) * (q_sq + self._max_sq_norm) + 1e-30
        else:
            approx = rows @ self._points.T
            approx *= -2.0
            approx += q_sq[:, None]
            approx += self._sq_norms
            margin = 1e-14 * (d + 100.0) * (q_sq + self._max_sq_norm) + 1e-30
        kth = np.partition(approx, k - 1, axis=1)[:, k - 1]
        # Doubled margin: the k-th value itself carries the same error as
        # the scores it is compared against.
        limit = kth.astype(np.float64) + 2.0 * margin
        return approx <= limit.astype(approx.dtype)[:, None]

    def _query_block(self, rows: np.ndarray, k: int) -> list[KnnResult]:
        """Exact top-k for a block of query rows (the vectorized core)."""
        corpus = self._points
        q_sq = np.einsum("qd,qd->q", rows, rows)
        mask = self._candidate_mask(rows, q_sq, k)

        # Flat exact recompute over the surviving candidates only, in
        # bounded chunks (tie-heavy corpora can make the mask wide).
        row_of, col_of = np.nonzero(mask)
        exact_flat = np.empty(row_of.size)
        step = max(1, _BLOCK_ENTRIES // max(1, corpus.shape[1]))
        for flat_start in range(0, row_of.size, step):
            piece = slice(flat_start, flat_start + step)
            gaps = corpus[col_of[piece]] - rows[row_of[piece]]
            exact_flat[piece] = np.sum(np.square(gaps), axis=1)

        # Scatter into a padded (q, width) table.  np.nonzero emits the
        # columns of each row in ascending order, so a *stable* argsort
        # on the exact distances reproduces the sequential tie-break
        # (equal distances resolve to the lower corpus index).
        counts = mask.sum(axis=1)
        width = int(counts.max())
        position = np.arange(row_of.size) - (np.cumsum(counts) - counts)[row_of]
        exact = np.full((rows.shape[0], width), np.inf)
        candidates = np.zeros((rows.shape[0], width), dtype=np.intp)
        exact[row_of, position] = exact_flat
        candidates[row_of, position] = col_of

        order = np.argsort(exact, axis=1, kind="stable")[:, :k]
        top_indices = np.take_along_axis(candidates, order, axis=1)
        top_distances = np.sqrt(np.take_along_axis(exact, order, axis=1))

        results = []
        for query_row in range(rows.shape[0]):
            neighbors = tuple(
                Neighbor(index=int(idx), distance=float(dist))
                for idx, dist in zip(
                    top_indices[query_row], top_distances[query_row]
                )
            )
            stats = QueryStats(points_scanned=self.n_points)
            results.append(KnnResult(neighbors=neighbors, stats=stats))
        return results

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query`` (Euclidean).

        Results are sorted by ascending distance (ties by index).
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        gaps = self._points - vector
        squared = np.sum(np.square(gaps), axis=1)
        within = np.flatnonzero(squared <= radius * radius)
        order = within[np.argsort(squared[within], kind="stable")]
        neighbors = tuple(
            Neighbor(index=int(i), distance=float(np.sqrt(squared[i])))
            for i in order
        )
        stats = QueryStats(points_scanned=self.n_points)
        return KnnResult(neighbors=neighbors, stats=stats)
