"""Linear-scan exact k-NN — the baseline every index is checked against."""

from __future__ import annotations

import numpy as np

from repro.search.batch import (
    GramScanner,
    refine_masked_candidates,
    validate_gram_dtype,
)
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    combine_stats,
    validate_corpus,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot

# Block size for batched queries, in distance-matrix entries: query rows
# are processed in blocks of ``_BLOCK_ENTRIES // n`` so the ``(q, n)``
# scratch matrices stay around 32 MB regardless of batch size.
_BLOCK_ENTRIES = 4_194_304


class BruteForceIndex:
    """Exact k-NN by scanning every corpus point.

    Always correct, never prunes; its :class:`QueryStats` (``n`` points
    scanned, zero nodes) anchor the pruning comparisons.

    Args:
        points: ``(n, d)`` corpus.
        dtype: scoring dtype for the batched Gram-expansion scan —
            ``"auto"`` (float32 whenever magnitudes permit, the
            default), ``"float32"`` (request the memory-lean path; an
            overflow guard still falls back to float64 when squared
            magnitudes approach float32 infinity), or ``"float64"``.
            The scores only select candidates — survivors are
            recomputed in float64 — so every choice returns
            bit-identical answers; the knob trades scan bytes only.
    """

    # Snapshot kind: read by the registry, snapshot dispatch, and
    # the :class:`repro.search.Index` protocol.
    kind = "bruteforce"

    def __init__(self, points, dtype: str = "auto") -> None:
        self._points = validate_corpus(points)
        self._dtype = validate_gram_dtype(dtype)
        # ||p||^2 per corpus row, for the batched Gram expansion.
        self._sq_norms = np.einsum(
            "nd,nd->n", self._points, self._points
        )
        self._scanner = GramScanner(
            self._points, dtype=self._dtype, sq_norms=self._sq_norms
        )

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    @property
    def dtype(self) -> str:
        """The batched-scan scoring knob this index was built with."""
        return self._dtype

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot)."""
        write_snapshot(
            path,
            self.kind,
            {
                "points": self._points,
                "sq_norms": self._sq_norms,
                "scan_dtype": np.bytes_(self._dtype.encode()),
            },
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "BruteForceIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately.

        ``mmap_points=True`` maps the corpus from the file instead of
        reading it into memory.
        """
        data = read_snapshot(
            path,
            cls.kind,
            required=("points", "sq_norms"),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index._sq_norms = data["sq_norms"]
        # Snapshots written before the dtype knob existed carry no
        # scan_dtype member; they scored with the "auto" heuristic.
        if "scan_dtype" in data:
            index._dtype = bytes(data["scan_dtype"]).decode()
        else:
            index._dtype = "auto"
        validate_gram_dtype(index._dtype)
        index._scanner = GramScanner(
            index._points, dtype=index._dtype, sq_norms=index._sq_norms
        )
        return index

    def query(self, query, k: int = 1) -> KnnResult:
        """Return the ``k`` nearest corpus points to ``query`` (Euclidean).

        Ties are broken by corpus index (lower index wins), which makes
        results deterministic and comparable across index structures.
        """
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)

        gaps = self._points - vector
        squared = np.sum(np.square(gaps), axis=1)
        # argsort is O(n log n); for the corpus sizes here the simplicity
        # beats a partial-selection micro-optimization, and full sorting
        # gives the deterministic tie-break for free.
        order = np.argsort(squared, kind="stable")[:k]
        neighbors = tuple(
            Neighbor(index=int(i), distance=float(np.sqrt(squared[i])))
            for i in order
        )
        stats = QueryStats(points_scanned=self.n_points)
        return KnnResult(neighbors=neighbors, stats=stats)

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """Vectorized k-NN for every row of ``queries``.

        One BLAS matrix multiply produces all squared distances at once
        via the :class:`~repro.search.batch.GramScanner` kernel (in the
        dtype the index was built with); ``argpartition`` narrows each
        row to its top-k candidates.  Because the expansion loses a few
        ulps to cancellation, candidate selection keeps a conservative
        margin around the k-th partitioned value and the survivors'
        distances are recomputed with the same subtract-square
        arithmetic the sequential path uses — so the returned neighbors,
        distances, and tie-breaks are bit-identical to looping
        :meth:`query`.

        ``n_workers`` is accepted for protocol uniformity across the
        index family and ignored: the vectorized path outruns any thread
        fan-out.
        """
        del n_workers
        array = validate_queries(queries, self.dimensionality)
        k = validate_k(k, self.n_points)
        block = max(1, _BLOCK_ENTRIES // self.n_points)
        results: list[KnnResult] = []
        for start in range(0, array.shape[0], block):
            results.extend(self._query_block(array[start : start + block], k))
        return BatchKnnResult(
            results=tuple(results),
            stats=combine_stats(r.stats for r in results),
        )

    def _candidate_mask(
        self, rows: np.ndarray, q_sq: np.ndarray, k: int
    ) -> np.ndarray:
        """Boolean ``(q, n)`` mask of exact-top-k candidates per query.

        The scores only *select* candidates — exact distances are
        recomputed afterwards — so the (memory-bound) score matrix may
        run in float32, with a margin around the k-th partitioned value
        that dominates the combined cancellation and precision error.
        Every point whose exact distance ties or beats the exact k-th
        therefore survives the mask.
        """
        approx, margin = self._scanner.scores(rows, q_sq)
        kth = np.partition(approx, k - 1, axis=1)[:, k - 1]
        # Doubled margin: the k-th value itself carries the same error as
        # the scores it is compared against.
        limit = kth.astype(np.float64) + 2.0 * margin
        return approx <= limit.astype(approx.dtype)[:, None]

    def _query_block(self, rows: np.ndarray, k: int) -> list[KnnResult]:
        """Exact top-k for a block of query rows (the vectorized core)."""
        q_sq = np.einsum("qd,qd->q", rows, rows)
        mask = self._candidate_mask(rows, q_sq, k)

        # Masks here are only ~k wide (the margin admits few rows past
        # the true top-k), which is the gather kernel's sweet spot; the
        # precomputed norms ride along for callers that flip the knob.
        top_indices, top_squared, _ = refine_masked_candidates(
            self._points, rows, mask, k, block_entries=_BLOCK_ENTRIES,
            sq_norms=self._sq_norms,
        )
        top_distances = np.sqrt(top_squared)

        results = []
        for query_row in range(rows.shape[0]):
            neighbors = tuple(
                Neighbor(index=int(idx), distance=float(dist))
                for idx, dist in zip(
                    top_indices[query_row], top_distances[query_row]
                )
            )
            stats = QueryStats(points_scanned=self.n_points)
            results.append(KnnResult(neighbors=neighbors, stats=stats))
        return results

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query`` (Euclidean).

        Results are sorted by ascending distance (ties by index).
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        gaps = self._points - vector
        squared = np.sum(np.square(gaps), axis=1)
        within = np.flatnonzero(squared <= radius * radius)
        order = within[np.argsort(squared[within], kind="stable")]
        neighbors = tuple(
            Neighbor(index=int(i), distance=float(np.sqrt(squared[i])))
            for i in order
        )
        stats = QueryStats(points_scanned=self.n_points)
        return KnnResult(neighbors=neighbors, stats=stats)


# Deprecated alias of ``BruteForceIndex.kind``; kept one release for
# external callers that imported the module constant.
_SNAPSHOT_KIND = BruteForceIndex.kind
