"""Linear-scan exact k-NN — the baseline every index is checked against."""

from __future__ import annotations

import numpy as np

from repro.search.results import (
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)


class BruteForceIndex:
    """Exact k-NN by scanning every corpus point.

    Always correct, never prunes; its :class:`QueryStats` (``n`` points
    scanned, zero nodes) anchor the pruning comparisons.
    """

    def __init__(self, points) -> None:
        self._points = validate_corpus(points)

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def query(self, query, k: int = 1) -> KnnResult:
        """Return the ``k`` nearest corpus points to ``query`` (Euclidean).

        Ties are broken by corpus index (lower index wins), which makes
        results deterministic and comparable across index structures.
        """
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)

        gaps = self._points - vector
        squared = np.sum(np.square(gaps), axis=1)
        # argsort is O(n log n); for the corpus sizes here the simplicity
        # beats a partial-selection micro-optimization, and full sorting
        # gives the deterministic tie-break for free.
        order = np.argsort(squared, kind="stable")[:k]
        neighbors = tuple(
            Neighbor(index=int(i), distance=float(np.sqrt(squared[i])))
            for i in order
        )
        stats = QueryStats(points_scanned=self.n_points)
        return KnnResult(neighbors=neighbors, stats=stats)

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query`` (Euclidean).

        Results are sorted by ascending distance (ties by index).
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        gaps = self._points - vector
        squared = np.sum(np.square(gaps), axis=1)
        within = np.flatnonzero(squared <= radius * radius)
        order = within[np.argsort(squared[within], kind="stable")]
        neighbors = tuple(
            Neighbor(index=int(i), distance=float(np.sqrt(squared[i])))
            for i in order
        )
        stats = QueryStats(points_scanned=self.n_points)
        return KnnResult(neighbors=neighbors, stats=stats)
