"""A VA-file (vector-approximation file) for exact k-NN.

Weber, Schek & Blott (VLDB 1998) — reference [21] of the paper — showed
that partitioning indexes degrade to worse-than-scan in high
dimensionality and proposed scanning compact bit-quantized
*approximations* instead, refining only candidates whose lower bound
beats the current k-th best exact distance.

Phase 1 scans every approximation cell, maintaining the k-th smallest
*upper* bound and discarding cells whose *lower* bound exceeds it.
Phase 2 visits the surviving candidates in ascending lower-bound order
and computes exact distances, stopping when the next lower bound exceeds
the k-th best exact distance.  The fraction of vectors refined in phase 2
is the VA-file's effectiveness measure.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    combine_stats,
    validate_corpus,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot

_SNAPSHOT_KIND = "vafile"

# Block size for batched phase-1 bound computation, in (query, point,
# dimension) scratch entries — keeps the broadcast temporaries ~32 MB.
_BLOCK_ENTRIES = 4_194_304


class VAFileIndex:
    """Scalar-quantized vector approximation file.

    Args:
        points: ``(n, d)`` corpus.
        bits_per_dim: quantization resolution; each dimension is split
            into ``2**bits_per_dim`` equi-width cells.
    """

    def __init__(self, points, bits_per_dim: int = 4) -> None:
        if not 1 <= bits_per_dim <= 16:
            raise ValueError(
                f"bits_per_dim must lie in [1, 16], got {bits_per_dim}"
            )
        self._points = validate_corpus(points)
        self._bits = bits_per_dim
        self._n_cells = 2**bits_per_dim

        lower = self._points.min(axis=0)
        upper = self._points.max(axis=0)
        span = upper - lower
        span[span == 0.0] = 1.0  # constant dimensions quantize to cell 0
        self._origin = lower
        self._cell_width = span / self._n_cells

        scaled = (self._points - self._origin) / self._cell_width
        cells = np.floor(scaled).astype(np.int64)
        np.clip(cells, 0, self._n_cells - 1, out=cells)
        self._cells = cells
        self._set_cell_bounds()

    def _set_cell_bounds(self) -> None:
        # Reconstructed cell boxes, padded by a relative epsilon:
        # floating-point rounding can place a point that sits exactly on
        # a cell boundary a few ulps *outside* the reconstructed box,
        # which would make the "lower bound" exceed the true distance and
        # wrongly prune the point.  The padding keeps the bounds
        # conservative.  Static per corpus, so built once.
        span = self._cell_width * self._n_cells
        pad = 1e-9 * np.maximum(span, np.abs(self._origin) + span)
        self._cell_low = self._origin + self._cells * self._cell_width - pad
        self._cell_high = self._cell_low + self._cell_width + 2.0 * pad

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot)."""
        write_snapshot(
            path,
            _SNAPSHOT_KIND,
            {
                "points": self._points,
                "bits_per_dim": np.int64(self._bits),
                "origin": self._origin,
                "cell_width": self._cell_width,
                # 1..16 bits per dimension fit in uint16; the cell boxes
                # are rederived at load with the constructor arithmetic.
                "cells": self._cells.astype(np.uint16),
            },
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "VAFileIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately."""
        data = read_snapshot(
            path,
            _SNAPSHOT_KIND,
            required=("points", "bits_per_dim", "origin", "cell_width", "cells"),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index._bits = int(data["bits_per_dim"])
        index._n_cells = 2**index._bits
        index._origin = data["origin"]
        index._cell_width = data["cell_width"]
        index._cells = data["cells"].astype(np.int64)
        index._set_cell_bounds()
        return index

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def compression_ratio(self) -> float:
        """Approximation size relative to the raw 64-bit vectors."""
        return self._bits / 64.0

    def _bounds_squared(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-point squared lower/upper distance bounds from the cells."""
        below = np.maximum(self._cell_low - query, 0.0)
        above = np.maximum(query - self._cell_high, 0.0)
        lower_sq = np.sum(np.square(below) + np.square(above), axis=1)

        far_corner = np.maximum(
            np.abs(query - self._cell_low), np.abs(self._cell_high - query)
        )
        upper_sq = np.sum(np.square(far_corner), axis=1)
        return lower_sq, upper_sq

    def _bounds_squared_block(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Phase-1 bounds for a block of queries at once: ``(q, n)`` each.

        Same arithmetic as :meth:`_bounds_squared` broadcast over the
        query axis, so every entry is bit-identical to the per-query
        path — the reductions run over the same (last) axis.
        """
        queries = rows[:, None, :]
        below = np.maximum(self._cell_low - queries, 0.0)
        above = np.maximum(queries - self._cell_high, 0.0)
        lower_sq = np.sum(np.square(below) + np.square(above), axis=2)

        far_corner = np.maximum(
            np.abs(queries - self._cell_low), np.abs(self._cell_high - queries)
        )
        upper_sq = np.sum(np.square(far_corner), axis=2)
        return lower_sq, upper_sq

    def _refine(
        self,
        vector: np.ndarray,
        lower_sq: np.ndarray,
        upper_sq: np.ndarray,
        k: int,
    ) -> KnnResult:
        """Two-phase filtering given precomputed bounds for one query."""
        stats = QueryStats()
        stats.nodes_visited = self.n_points  # every approximation is read

        # Phase 1: k-th smallest upper bound prunes hopeless candidates.
        kth_upper = np.partition(upper_sq, k - 1)[k - 1]
        candidates = np.flatnonzero(lower_sq <= kth_upper)
        stats.nodes_pruned = self.n_points - int(candidates.size)

        # Phase 2: refine candidates in ascending lower-bound order.
        order = candidates[np.argsort(lower_sq[candidates], kind="stable")]
        best: list[tuple[float, int]] = []  # max-heap via negation

        def worst_squared() -> float:
            return -best[0][0] if len(best) == k else np.inf

        for idx in order:
            if lower_sq[idx] > worst_squared():
                break
            gap = self._points[idx] - vector
            d2 = float(np.sum(np.square(gap)))
            stats.points_scanned += 1
            entry = (-d2, -int(idx))
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)

        ordered = sorted(best, key=lambda entry: (-entry[0], -entry[1]))
        neighbors = tuple(
            Neighbor(index=-tie, distance=float(np.sqrt(-negated)))
            for negated, tie in ordered
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k-NN with two-phase VA-file filtering."""
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        lower_sq, upper_sq = self._bounds_squared(vector)
        return self._refine(vector, lower_sq, upper_sq, k)

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """Batched k-NN with vectorized phase-1 bound computation.

        The bound matrices for a whole block of queries come from one
        broadcast pass over the approximation cells — the scan that
        Weber et al.'s argument says should amortize across queries —
        and phase 2 then refines each query's few surviving candidates.
        Results are bit-identical to looping :meth:`query`.

        ``n_workers`` is accepted for protocol uniformity across the
        index family and ignored: the shared phase-1 scan is the batch
        win here.
        """
        del n_workers
        array = validate_queries(queries, self.dimensionality)
        k = validate_k(k, self.n_points)
        block = max(
            1, _BLOCK_ENTRIES // (self.n_points * self.dimensionality)
        )
        results: list[KnnResult] = []
        for start in range(0, array.shape[0], block):
            rows = array[start : start + block]
            lower_sq, upper_sq = self._bounds_squared_block(rows)
            results.extend(
                self._refine(rows[i], lower_sq[i], upper_sq[i], k)
                for i in range(rows.shape[0])
            )
        return BatchKnnResult(
            results=tuple(results),
            stats=combine_stats(r.stats for r in results),
        )

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query``.

        Cells whose lower bound exceeds the radius are never refined;
        cells whose *upper* bound is within it could in principle be
        accepted unrefined, but exact distances are needed for the
        result anyway, so every surviving candidate is refined.
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        radius_sq = radius * radius
        stats = QueryStats()
        lower_sq, _ = self._bounds_squared(vector)
        stats.nodes_visited = self.n_points
        candidates = np.flatnonzero(lower_sq <= radius_sq)
        stats.nodes_pruned = self.n_points - int(candidates.size)

        found: list[tuple[float, int]] = []
        for idx in candidates:
            gap = self._points[idx] - vector
            d2 = float(np.sum(np.square(gap)))
            stats.points_scanned += 1
            if d2 <= radius_sq:
                found.append((d2, int(idx)))
        found.sort()
        neighbors = tuple(
            Neighbor(index=idx, distance=float(np.sqrt(d2))) for d2, idx in found
        )
        return KnnResult(neighbors=neighbors, stats=stats)
