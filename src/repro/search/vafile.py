"""A VA-file (vector-approximation file) for exact k-NN.

Weber, Schek & Blott (VLDB 1998) — reference [21] of the paper — showed
that partitioning indexes degrade to worse-than-scan in high
dimensionality and proposed scanning compact bit-quantized
*approximations* instead, refining only candidates whose lower bound
beats the current k-th best exact distance.

Phase 1 scans every approximation cell, maintaining the k-th smallest
*upper* bound and discarding cells whose *lower* bound exceeds it.
Phase 2 visits the surviving candidates in ascending lower-bound order
and computes exact distances, stopping when the next lower bound exceeds
the k-th best exact distance.  The fraction of vectors refined in phase 2
is the VA-file's effectiveness measure.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.search.results import (
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)


class VAFileIndex:
    """Scalar-quantized vector approximation file.

    Args:
        points: ``(n, d)`` corpus.
        bits_per_dim: quantization resolution; each dimension is split
            into ``2**bits_per_dim`` equi-width cells.
    """

    def __init__(self, points, bits_per_dim: int = 4) -> None:
        if not 1 <= bits_per_dim <= 16:
            raise ValueError(
                f"bits_per_dim must lie in [1, 16], got {bits_per_dim}"
            )
        self._points = validate_corpus(points)
        self._bits = bits_per_dim
        self._n_cells = 2**bits_per_dim

        lower = self._points.min(axis=0)
        upper = self._points.max(axis=0)
        span = upper - lower
        span[span == 0.0] = 1.0  # constant dimensions quantize to cell 0
        self._origin = lower
        self._cell_width = span / self._n_cells

        scaled = (self._points - self._origin) / self._cell_width
        cells = np.floor(scaled).astype(np.int64)
        np.clip(cells, 0, self._n_cells - 1, out=cells)
        self._cells = cells

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def compression_ratio(self) -> float:
        """Approximation size relative to the raw 64-bit vectors."""
        return self._bits / 64.0

    def _bounds_squared(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-point squared lower/upper distance bounds from the cells.

        Cell boxes are padded by a relative epsilon: floating-point
        rounding can place a point that sits exactly on a cell boundary
        a few ulps *outside* the reconstructed box, which would make the
        "lower bound" exceed the true distance and wrongly prune the
        point.  The padding keeps the bounds conservative.
        """
        span = self._cell_width * self._n_cells
        pad = 1e-9 * np.maximum(span, np.abs(self._origin) + span)
        cell_low = self._origin + self._cells * self._cell_width - pad
        cell_high = cell_low + self._cell_width + 2.0 * pad

        below = np.maximum(cell_low - query, 0.0)
        above = np.maximum(query - cell_high, 0.0)
        lower_sq = np.sum(np.square(below) + np.square(above), axis=1)

        far_corner = np.maximum(np.abs(query - cell_low), np.abs(cell_high - query))
        upper_sq = np.sum(np.square(far_corner), axis=1)
        return lower_sq, upper_sq

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k-NN with two-phase VA-file filtering."""
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        stats = QueryStats()

        lower_sq, upper_sq = self._bounds_squared(vector)
        stats.nodes_visited = self.n_points  # every approximation is read

        # Phase 1: k-th smallest upper bound prunes hopeless candidates.
        kth_upper = np.partition(upper_sq, k - 1)[k - 1]
        candidates = np.flatnonzero(lower_sq <= kth_upper)
        stats.nodes_pruned = self.n_points - int(candidates.size)

        # Phase 2: refine candidates in ascending lower-bound order.
        order = candidates[np.argsort(lower_sq[candidates], kind="stable")]
        best: list[tuple[float, int]] = []  # max-heap via negation

        def worst_squared() -> float:
            return -best[0][0] if len(best) == k else np.inf

        for idx in order:
            if lower_sq[idx] > worst_squared():
                break
            gap = self._points[idx] - vector
            d2 = float(np.sum(np.square(gap)))
            stats.points_scanned += 1
            entry = (-d2, -int(idx))
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)

        ordered = sorted(best, key=lambda entry: (-entry[0], -entry[1]))
        neighbors = tuple(
            Neighbor(index=-tie, distance=float(np.sqrt(-negated)))
            for negated, tie in ordered
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query``.

        Cells whose lower bound exceeds the radius are never refined;
        cells whose *upper* bound is within it could in principle be
        accepted unrefined, but exact distances are needed for the
        result anyway, so every surviving candidate is refined.
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        radius_sq = radius * radius
        stats = QueryStats()
        lower_sq, _ = self._bounds_squared(vector)
        stats.nodes_visited = self.n_points
        candidates = np.flatnonzero(lower_sq <= radius_sq)
        stats.nodes_pruned = self.n_points - int(candidates.size)

        found: list[tuple[float, int]] = []
        for idx in candidates:
            gap = self._points[idx] - vector
            d2 = float(np.sum(np.square(gap)))
            stats.points_scanned += 1
            if d2 <= radius_sq:
                found.append((d2, int(idx)))
        found.sort()
        neighbors = tuple(
            Neighbor(index=idx, distance=float(np.sqrt(d2))) for d2, idx in found
        )
        return KnnResult(neighbors=neighbors, stats=stats)
