"""A VA-file (vector-approximation file) for exact k-NN.

Weber, Schek & Blott (VLDB 1998) — reference [21] of the paper — showed
that partitioning indexes degrade to worse-than-scan in high
dimensionality and proposed scanning compact bit-quantized
*approximations* instead, refining only candidates whose lower bound
beats the current k-th best exact distance.

Phase 1 scans every approximation cell, maintaining the k-th smallest
*upper* bound and discarding cells whose *lower* bound exceeds it.
Phase 2 refines the survivors with a seeded threshold: the ``k``
candidates with the smallest lower bounds are computed exactly, the
k-th of those exact distances becomes ``tau`` (an upper bound on the
true k-th distance, since ``k`` points already sit within it), and only
candidates with ``lower <= tau`` are re-ranked — through the shared
:func:`~repro.search.batch.refine_masked_candidates` kernel, fully
vectorized across a query block.  Every true top-k member has
``lower <= exact <= tau``, ties included, so the answers stay exact and
bit-identical to brute force.  The fraction of vectors refined in phase
2 is the VA-file's effectiveness measure.

Bit budgets need not be spent uniformly: with
``bit_allocation="variance"`` the total budget (``d * bits_per_dim``)
is assigned greedily to the dimension whose current expected squared
quantization error — proportional to ``var_i / 4**bits_i``, since one
more bit halves the cell width — is largest.  Dimensions that barely
vary get few (or zero) bits; high-spread dimensions, which dominate the
distance bounds, get the resolution.  Cells stay equi-width *within*
each dimension, so the bound arithmetic is unchanged; only the
per-dimension cell counts differ.
"""

from __future__ import annotations

import numpy as np

from repro.search.batch import (
    refine_masked_candidates,
    validate_refine_kernel,
)
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    combine_stats,
    validate_corpus,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot

# Block size for batched phase-1 bound computation, in (query, point,
# dimension) scratch entries — keeps the broadcast temporaries ~32 MB.
_BLOCK_ENTRIES = 4_194_304

BIT_ALLOCATIONS = ("uniform", "variance")


def allocate_bits(
    points: np.ndarray, bits_per_dim: int, mode: str
) -> np.ndarray:
    """Per-dimension bit allocation under a total budget.

    ``"uniform"`` gives every dimension ``bits_per_dim`` bits — the
    classic VA-file.  ``"variance"`` spends the same total budget
    (``d * bits_per_dim``) greedily: each bit goes to the dimension with
    the largest remaining expected squared quantization error,
    ``var_i / 4**bits_i`` (one more bit halves the cell width, hence
    quarters the squared error).  Ties resolve to the lower dimension;
    no dimension exceeds 16 bits (the ``uint16`` cell storage).  A
    zero-variance corpus falls back to uniform — there is no spread to
    chase, and uniform keeps the cells well-defined.
    """
    if mode not in BIT_ALLOCATIONS:
        raise ValueError(
            f"bit_allocation must be one of {BIT_ALLOCATIONS}, got {mode!r}"
        )
    d = points.shape[1]
    if mode == "uniform":
        return np.full(d, bits_per_dim, dtype=np.int64)
    variance = np.asarray(points, dtype=np.float64).var(axis=0)
    if not np.any(variance > 0.0):
        return np.full(d, bits_per_dim, dtype=np.int64)
    bits = np.zeros(d, dtype=np.int64)
    gain = variance.copy()
    for _ in range(bits_per_dim * d):
        dim = int(np.argmax(gain))
        if gain[dim] == -np.inf:
            break  # every dimension at the 16-bit cap
        bits[dim] += 1
        gain[dim] = (
            variance[dim] / 4.0 ** bits[dim] if bits[dim] < 16 else -np.inf
        )
    return bits


class VAFileIndex:
    """Scalar-quantized vector approximation file.

    Args:
        points: ``(n, d)`` corpus.
        bits_per_dim: quantization budget per dimension; the total
            budget is ``d * bits_per_dim`` bits per vector.
        bit_allocation: ``"uniform"`` splits the budget evenly (each
            dimension gets ``2**bits_per_dim`` equi-width cells);
            ``"variance"`` spends it where the spread is (see
            :func:`allocate_bits`).  Either way cells are equi-width
            within a dimension and answers stay exact.
        refine_kernel: exact re-ranking kernel for the phase-2
            survivors, ``"gather"`` or ``"gemm"`` (see
            :func:`~repro.search.batch.refine_masked_candidates`); both
            produce bit-identical answers.  Not persisted in snapshots.
    """

    # Snapshot kind: read by the registry, snapshot dispatch, and
    # the :class:`repro.search.Index` protocol.
    kind = "vafile"

    def __init__(
        self,
        points,
        bits_per_dim: int = 4,
        *,
        bit_allocation: str = "uniform",
        refine_kernel: str = "gemm",
    ) -> None:
        if not 1 <= bits_per_dim <= 16:
            raise ValueError(
                f"bits_per_dim must lie in [1, 16], got {bits_per_dim}"
            )
        self._points = validate_corpus(points)
        self.refine_kernel = validate_refine_kernel(refine_kernel)
        self._budget = bits_per_dim
        self.bit_allocation = bit_allocation
        self._bits = allocate_bits(self._points, bits_per_dim, bit_allocation)
        self._finish_build()

    def _finish_build(self) -> None:
        """Quantize the corpus under the per-dimension bit vector."""
        self._n_cells = (np.int64(2) ** self._bits).astype(np.int64)
        lower = self._points.min(axis=0)
        upper = self._points.max(axis=0)
        span = upper - lower
        span[span == 0.0] = 1.0  # constant dimensions quantize to cell 0
        self._origin = lower
        width = span / self._n_cells
        # A subnormal span can underflow this division to zero width,
        # which would blow the scaled coordinates up to inf; such a
        # dimension is effectively constant, so give it the
        # constant-dimension treatment (every point in cell 0, bounds
        # stay conservative).
        width[width == 0.0] = 1.0
        self._cell_width = width

        scaled = (self._points - self._origin) / self._cell_width
        cells = np.floor(scaled).astype(np.int64)
        np.clip(cells, 0, self._n_cells - 1, out=cells)
        self._cells = cells
        self._set_cell_bounds()

    def _set_cell_bounds(self) -> None:
        # Reconstructed cell boxes, padded by a relative epsilon:
        # floating-point rounding can place a point that sits exactly on
        # a cell boundary a few ulps *outside* the reconstructed box,
        # which would make the "lower bound" exceed the true distance and
        # wrongly prune the point.  The padding keeps the bounds
        # conservative.  Static per corpus, so built once.
        span = self._cell_width * self._n_cells
        pad = 1e-9 * np.maximum(span, np.abs(self._origin) + span)
        self._cell_low = self._origin + self._cells * self._cell_width - pad
        self._cell_high = self._cell_low + self._cell_width + 2.0 * pad

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot).

        Snapshot version 2 adds the per-dimension ``bits`` vector;
        version-1 files (written before variance-weighted allocation
        existed) load by expanding their scalar ``bits_per_dim`` into a
        uniform vector, which is exactly how they were built.
        """
        write_snapshot(
            path,
            self.kind,
            {
                "points": self._points,
                "bits_per_dim": np.int64(self._budget),
                "bits": self._bits,
                "origin": self._origin,
                "cell_width": self._cell_width,
                # 0..16 bits per dimension fit in uint16; the cell boxes
                # are rederived at load with the constructor arithmetic.
                "cells": self._cells.astype(np.uint16),
            },
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "VAFileIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately."""
        data = read_snapshot(
            path,
            cls.kind,
            required=("points", "bits_per_dim", "origin", "cell_width", "cells"),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index.refine_kernel = "gemm"
        index._budget = int(data["bits_per_dim"])
        if "bits" in data:
            index._bits = data["bits"].astype(np.int64)
            index.bit_allocation = (
                "uniform"
                if np.all(index._bits == index._budget)
                else "variance"
            )
        else:
            index._bits = np.full(
                data["points"].shape[1], index._budget, dtype=np.int64
            )
            index.bit_allocation = "uniform"
        index._n_cells = (np.int64(2) ** index._bits).astype(np.int64)
        index._origin = data["origin"]
        index._cell_width = data["cell_width"]
        index._cells = data["cells"].astype(np.int64)
        index._set_cell_bounds()
        return index

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    @property
    def bits(self) -> np.ndarray:
        """Per-dimension bit allocation (read-only view)."""
        return self._bits

    def compression_ratio(self) -> float:
        """Approximation size relative to the raw 64-bit vectors."""
        return float(self._bits.mean() / 64.0)

    def _bounds_squared(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-point squared lower/upper distance bounds from the cells."""
        below = np.maximum(self._cell_low - query, 0.0)
        above = np.maximum(query - self._cell_high, 0.0)
        lower_sq = np.sum(np.square(below) + np.square(above), axis=1)

        far_corner = np.maximum(
            np.abs(query - self._cell_low), np.abs(self._cell_high - query)
        )
        upper_sq = np.sum(np.square(far_corner), axis=1)
        return lower_sq, upper_sq

    def _bounds_squared_block(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Phase-1 bounds for a block of queries at once: ``(q, n)`` each.

        Same arithmetic as :meth:`_bounds_squared` broadcast over the
        query axis, so every entry is bit-identical to the per-query
        path — the reductions run over the same (last) axis.
        """
        queries = rows[:, None, :]
        below = np.maximum(self._cell_low - queries, 0.0)
        above = np.maximum(queries - self._cell_high, 0.0)
        lower_sq = np.sum(np.square(below) + np.square(above), axis=2)

        far_corner = np.maximum(
            np.abs(queries - self._cell_low), np.abs(self._cell_high - queries)
        )
        upper_sq = np.sum(np.square(far_corner), axis=2)
        return lower_sq, upper_sq

    def _refine_block(
        self, rows: np.ndarray, lower_sq: np.ndarray, upper_sq: np.ndarray, k: int
    ) -> list[KnnResult]:
        """Two-phase filtering for a block of queries, vectorized.

        Phase 1 prunes with the k-th smallest upper bound.  Phase 2
        seeds ``tau`` with the k-th exact distance among the ``k``
        smallest-lower-bound candidates: ``k`` points sit within
        ``tau``, so the true k-th distance is at most ``tau`` and every
        true top-k member satisfies ``lower <= exact <= tau`` — the
        ``lower <= tau`` survivor set (ties kept by ``<=``) is a
        superset of the answer, and the shared refine kernel re-ranks it
        exactly.  ``points_scanned`` counts the distinct survivors;
        ``candidates_generated`` the phase-1 survivors (the funnel the
        seeded threshold then narrows).
        """
        m, n = lower_sq.shape
        kth_upper = np.partition(upper_sq, k - 1, axis=1)[:, k - 1]
        phase1 = lower_sq <= kth_upper[:, None]

        # Seeds: the k smallest lower bounds are always phase-1
        # survivors (at least k points have upper <= kth_upper, and
        # every survivor's lower bound is below every pruned one's).
        seeds = np.argpartition(lower_sq, k - 1, axis=1)[:, :k]
        gaps = (
            self._points[seeds.reshape(-1)]
            - np.repeat(rows, k, axis=0)
        )
        seed_sq = np.sum(np.square(gaps), axis=1).reshape(m, k)
        tau = seed_sq.max(axis=1)

        survivors = lower_sq <= tau[:, None]
        top_indices, top_squared, counts = refine_masked_candidates(
            self._points, rows, survivors, k, kernel=self.refine_kernel
        )
        results: list[KnnResult] = []
        for q in range(m):
            neighbors = tuple(
                Neighbor(
                    index=int(top_indices[q, j]),
                    distance=float(np.sqrt(top_squared[q, j])),
                )
                for j in range(k)
            )
            stats = QueryStats(
                points_scanned=int(counts[q]),
                nodes_visited=n,  # every approximation is read
                nodes_pruned=n - int(np.count_nonzero(phase1[q])),
                candidates_generated=int(np.count_nonzero(phase1[q])),
            )
            results.append(KnnResult(neighbors=neighbors, stats=stats))
        return results

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k-NN with two-phase VA-file filtering."""
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        lower_sq, upper_sq = self._bounds_squared(vector)
        return self._refine_block(
            vector.reshape(1, -1), lower_sq.reshape(1, -1),
            upper_sq.reshape(1, -1), k,
        )[0]

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """Batched k-NN with vectorized phase-1 bound computation.

        The bound matrices for a whole block of queries come from one
        broadcast pass over the approximation cells — the scan that
        Weber et al.'s argument says should amortize across queries —
        and phase 2 refines each block's survivors through the shared
        exact kernel.  Results are bit-identical to looping
        :meth:`query`.

        ``n_workers`` is accepted for protocol uniformity across the
        index family and ignored: the shared phase-1 scan is the batch
        win here.
        """
        del n_workers
        array = validate_queries(queries, self.dimensionality)
        k = validate_k(k, self.n_points)
        block = max(
            1, _BLOCK_ENTRIES // (self.n_points * self.dimensionality)
        )
        results: list[KnnResult] = []
        for start in range(0, array.shape[0], block):
            rows = array[start : start + block]
            lower_sq, upper_sq = self._bounds_squared_block(rows)
            results.extend(self._refine_block(rows, lower_sq, upper_sq, k))
        return BatchKnnResult(
            results=tuple(results),
            stats=combine_stats(r.stats for r in results),
        )

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query``.

        Cells whose lower bound exceeds the radius are never refined;
        cells whose *upper* bound is within it could in principle be
        accepted unrefined, but exact distances are needed for the
        result anyway, so every surviving candidate is refined.
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        radius_sq = radius * radius
        stats = QueryStats()
        lower_sq, _ = self._bounds_squared(vector)
        stats.nodes_visited = self.n_points
        candidates = np.flatnonzero(lower_sq <= radius_sq)
        stats.nodes_pruned = self.n_points - int(candidates.size)
        stats.candidates_generated = int(candidates.size)

        found: list[tuple[float, int]] = []
        for idx in candidates:
            gap = self._points[idx] - vector
            d2 = float(np.sum(np.square(gap)))
            stats.points_scanned += 1
            if d2 <= radius_sq:
                found.append((d2, int(idx)))
        found.sort()
        neighbors = tuple(
            Neighbor(index=idx, distance=float(np.sqrt(d2))) for d2, idx in found
        )
        return KnnResult(neighbors=neighbors, stats=stats)


# Deprecated alias of ``VAFileIndex.kind``; kept one release for
# external callers that imported the module constant.
_SNAPSHOT_KIND = VAFileIndex.kind
