"""The IGrid index: proximity by shared discretized ranges.

Aggarwal & Yu (KDD 2000), the paper's reference [3] — "The IGrid Index:
Reversing the Dimensionality Curse".  Instead of an L_p norm over raw
coordinates (which Section 1.1 shows becomes meaningless in high
dimensionality), IGrid discretizes every dimension into ``k_d``
equi-depth ranges and scores two points by *in which dimensions they
fall into the same range*, with a per-dimension proximity bonus for
being close within the shared range:

    similarity(x, y) = sum over dims j in S(x, y) of
                       [1 - |x_j - y_j| / width_j(range)] ** p

where ``S(x, y)`` is the set of dimensions sharing a range.  Because the
expected size of ``S`` is ``d / k_d`` and its variance grows with ``d``,
the similarity stays discriminative as dimensionality rises — the
"reversing" of the title.

The inverted-list index stores, per (dimension, range), the points that
fall there; a query only touches the lists of its own ranges, which is
how candidate generation avoids a full scan on every dimension.
"""

from __future__ import annotations

import numpy as np

from repro.search.batch import dispatch_query_batch
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot


def igrid_discretization(
    points, ranges_per_dim: int = 4
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-depth ``(edges, widths)`` discretization of a corpus.

    ``edges`` is ``(k_d + 1, d)`` range boundaries per dimension from the
    empirical quantiles, outer edges pushed to infinity so every query
    value lands in some range.  ``widths`` is the ``(k_d, d)`` finite
    span of each range (falling back to a fraction of the dimension's
    full span for degenerate ranges), used by the proximity bonus.

    Factored out of :class:`IGridIndex` so callers that split one corpus
    across several indexes (:func:`repro.shard.build_shards`) can
    compute the discretization **once over the full corpus** and pass it
    to every sub-index: the IGrid similarity function is defined by
    these boundaries, so sub-indexes discretizing their own subsets
    would each score by a different function and could never merge
    bit-identically.
    """
    array = validate_corpus(points)
    quantiles = np.linspace(0.0, 1.0, ranges_per_dim + 1)
    edges = np.quantile(array, quantiles, axis=0)  # (k+1, d)
    edges[0, :] = -np.inf
    edges[-1, :] = np.inf
    finite_low = np.quantile(array, quantiles[:-1], axis=0)
    finite_high = np.quantile(array, quantiles[1:], axis=0)
    widths = finite_high - finite_low
    fallback = np.maximum(
        array.max(axis=0) - array.min(axis=0), 1e-12
    )
    widths = np.where(widths > 0.0, widths, fallback / ranges_per_dim)
    return edges, widths


class IGridIndex:
    """Inverted grid index with the IGrid similarity function.

    Args:
        points: ``(n, d)`` corpus.
        ranges_per_dim: ``k_d``, the number of equi-depth ranges per
            dimension.  The IGrid paper recommends ``k_d`` proportional
            to ``d`` so the expected number of shared dimensions stays
            constant; callers doing high-dimensional work should scale it.
        p: exponent of the within-range proximity bonus.
        discretization: optional ``(edges, widths)`` pair (shapes
            ``(k_d + 1, d)`` and ``(k_d, d)``) overriding the boundaries
            derived from ``points`` — see :func:`igrid_discretization`.
    """

    # Snapshot kind: read by the registry, snapshot dispatch, and
    # the :class:`repro.search.Index` protocol.
    kind = "igrid"

    def __init__(
        self,
        points,
        ranges_per_dim: int = 4,
        p: float = 2.0,
        discretization: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        if ranges_per_dim < 2:
            raise ValueError(
                f"ranges_per_dim must be at least 2, got {ranges_per_dim}"
            )
        if p <= 0:
            raise ValueError(f"p must be positive, got {p}")
        self._points = validate_corpus(points)
        self.ranges_per_dim = ranges_per_dim
        self.p = p

        n, d = self._points.shape
        if discretization is None:
            edges, widths = igrid_discretization(
                self._points, ranges_per_dim
            )
        else:
            edges = np.asarray(discretization[0], dtype=np.float64)
            widths = np.asarray(discretization[1], dtype=np.float64)
            if edges.shape != (ranges_per_dim + 1, d) or widths.shape != (
                ranges_per_dim,
                d,
            ):
                raise ValueError(
                    "discretization shapes must be "
                    f"({ranges_per_dim + 1}, {d}) and ({ranges_per_dim}, "
                    f"{d}), got {edges.shape} and {widths.shape}"
                )
        self._edges = edges
        self._widths = widths  # (k, d)

        assignments = self._assign(self._points)  # (n, d) range ids
        # Inverted lists in CSR form: per dimension, the corpus rows in
        # range order (stable argsort keeps ascending row index within a
        # range, matching a per-range flatnonzero) plus range offsets.
        order = np.argsort(assignments, axis=0, kind="stable")
        self._list_order = np.ascontiguousarray(order.T)  # (d, n)
        counts = np.bincount(
            (assignments + ranges_per_dim * np.arange(d)).ravel(),
            minlength=ranges_per_dim * d,
        ).reshape(d, ranges_per_dim)
        starts = np.zeros((d, ranges_per_dim + 1), dtype=np.int64)
        np.cumsum(counts, axis=1, out=starts[:, 1:])
        self._list_starts = starts
        self._set_list_views()

    def _set_list_views(self) -> None:
        """Per (dimension, range): the corpus rows falling there."""
        starts = self._list_starts
        self._lists = [
            [
                self._list_order[j, starts[j, r]:starts[j, r + 1]]
                for r in range(starts.shape[1] - 1)
            ]
            for j in range(starts.shape[0])
        ]

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot)."""
        write_snapshot(
            path,
            self.kind,
            {
                "points": self._points,
                "ranges_per_dim": np.int64(self.ranges_per_dim),
                "p": np.float64(self.p),
                "edges": self._edges,
                "widths": self._widths,
                "list_order": self._list_order,
                "list_starts": self._list_starts,
            },
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "IGridIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately."""
        data = read_snapshot(
            path,
            cls.kind,
            required=(
                "points", "ranges_per_dim", "p", "edges", "widths",
                "list_order", "list_starts",
            ),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index.ranges_per_dim = int(data["ranges_per_dim"])
        index.p = float(data["p"])
        index._edges = data["edges"]
        index._widths = data["widths"]
        index._list_order = data["list_order"].astype(np.intp, copy=False)
        index._list_starts = data["list_starts"]
        index._set_list_views()
        return index

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def _assign(self, rows: np.ndarray) -> np.ndarray:
        """Range id of every value, per dimension (vectorized searchsorted)."""
        single = rows.ndim == 1
        if single:
            rows = rows.reshape(1, -1)
        assignments = np.empty(rows.shape, dtype=np.int64)
        for j in range(self.dimensionality):
            assignments[:, j] = (
                np.searchsorted(self._edges[1:-1, j], rows[:, j], side="right")
            )
        return assignments[0] if single else assignments

    def similarity(self, x, y) -> float:
        """The IGrid similarity between two vectors (higher = closer)."""
        a = validate_query(x, self.dimensionality)
        b = validate_query(y, self.dimensionality)
        ra = self._assign(a)
        rb = self._assign(b)
        shared = ra == rb
        if not shared.any():
            return 0.0
        dims = np.flatnonzero(shared)
        widths = self._widths[ra[dims], dims]
        closeness = 1.0 - np.abs(a[dims] - b[dims]) / widths
        np.clip(closeness, 0.0, 1.0, out=closeness)
        return float(np.sum(closeness**self.p))

    def query(self, query, k: int = 1) -> KnnResult:
        """Top-``k`` corpus points by IGrid similarity.

        The inverted lists of the query's own ranges supply candidate
        points and, simultaneously, all the data needed to score them —
        a point absent from every shared list has similarity 0.  Reported
        "distance" is ``-similarity`` so results sort like the other
        indexes (ascending = best first); ties break by corpus index.
        """
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        stats = QueryStats()

        ranges = self._assign(vector)
        scores = np.zeros(self.n_points)
        touched = np.zeros(self.n_points, dtype=bool)
        for j in range(self.dimensionality):
            members = self._lists[j][ranges[j]]
            stats.nodes_visited += 1
            if members.size == 0:
                continue
            touched[members] = True
            width = self._widths[ranges[j], j]
            closeness = 1.0 - np.abs(
                self._points[members, j] - vector[j]
            ) / width
            np.clip(closeness, 0.0, 1.0, out=closeness)
            scores[members] += closeness**self.p

        stats.points_scanned = int(np.sum(touched))
        stats.nodes_pruned = self.n_points - stats.points_scanned
        order = np.lexsort((np.arange(self.n_points), -scores))[:k]
        neighbors = tuple(
            Neighbor(index=int(i), distance=float(-scores[i])) for i in order
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """Top-``k`` by IGrid similarity for every row of ``queries``;
        bit-identical to looping :meth:`query`.  ``n_workers`` > 1 fans
        the rows out over a thread pool."""
        return dispatch_query_batch(self, queries, k, n_workers)


# Deprecated alias of ``IGridIndex.kind``; kept one release for
# external callers that imported the module constant.
_SNAPSHOT_KIND = IGridIndex.kind
