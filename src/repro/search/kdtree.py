"""A kd-tree with branch-and-bound exact k-NN search.

Classic median-split construction; the query descends toward the leaf
containing the query point, then backtracks, pruning any subtree whose
splitting hyperplane is farther than the current k-th best distance.
This is the canonical "optimistic bound" pruning the paper's Section 1.1
discusses — and the per-query statistics show it collapsing as
dimensionality grows.

The tree lives in **flattened node arrays** rather than linked node
objects: per node a split dimension (``-1`` marks a leaf), a split
value, left/right child ids, and — for leaves — a ``[start, stop)``
range into one corpus-row permutation array.  Construction is an
iterative worklist over ranges of that permutation, splitting each node
in place with ``np.argpartition`` around the positional median (no
per-level boolean masks, no per-node index copies), which keeps the
build vectorized and the resulting arrays serialize directly to a
snapshot (:mod:`repro.search.snapshot`).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.search.batch import dispatch_query_batch
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot


class KdTreeIndex:
    """Median-split kd-tree over a static corpus.

    Args:
        points: ``(n, d)`` corpus.
        leaf_size: maximum number of points stored in a leaf.
    """

    # Snapshot kind: read by the registry, snapshot dispatch, and
    # the :class:`repro.search.Index` protocol.
    kind = "kdtree"

    def __init__(self, points, leaf_size: int = 16) -> None:
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        self._points = validate_corpus(points)
        self._leaf_size = leaf_size
        self._build()

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def _build(self) -> None:
        """Level-synchronous median-split build into flattened node arrays.

        All nodes of one tree level are processed together with no
        per-node Python at all: every splitting segment's coordinates
        along its split dimension are gathered into rectangular blocks
        (positional halving keeps all segments on a level within one
        point of the same size, so at most two block shapes exist) and a
        row-wise ``argpartition`` arranges every segment around its
        positional median at once.  The split dimension is the widest
        side of the node's bounding box, maintained incrementally (tight
        at the root, narrowed along the split dimension at every split),
        so dimension selection costs O(segments), not a min/max pass over
        the subset.  Total work is O(n log² n) in a handful of vectorized
        passes per level.  Children are contiguous ``[lo, hi)`` ranges of
        the shared permutation array, so leaves need only their bounds.
        """
        points = self._points
        n = self.n_points
        leaf_size = self._leaf_size
        perm = np.arange(n, dtype=np.intp)

        # Per-level chunks of the node arrays, concatenated at the end.
        # Node ids are assigned in creation order, which is level order.
        dim_chunks: list[np.ndarray] = []
        value_chunks: list[np.ndarray] = []
        left_chunks: list[np.ndarray] = []
        right_chunks: list[np.ndarray] = []
        start_chunks: list[np.ndarray] = []
        stop_chunks: list[np.ndarray] = []

        # Pending nodes (created, not yet resolved into leaf-or-split),
        # as parallel arrays; the root starts with the tight corpus box.
        los = np.zeros(1, dtype=np.int64)
        his = np.full(1, n, dtype=np.int64)
        box_low = points.min(axis=0).reshape(1, -1)
        box_high = points.max(axis=0).reshape(1, -1)
        n_nodes = 1

        while los.size:
            pending = los.size
            sizes = his - los
            # Split each pending node on the widest side of its box — an
            # O(1) per-segment stand-in for the data spread that still
            # adapts to skew, unlike pure depth cycling.  A zero widest
            # side means every remaining point is identical: leaf.
            spreads = box_high - box_low
            dims = np.argmax(spreads, axis=1)
            leaf = (sizes <= leaf_size) | (
                spreads[np.arange(pending), dims] <= 0.0
            )
            split = np.flatnonzero(~leaf)

            medians = np.zeros(split.size)
            if split.size:
                sub_lo = los[split]
                sub_sizes = sizes[split]
                sub_dims = dims[split]
                offsets = np.concatenate(([0], np.cumsum(sub_sizes)))
                m = int(offsets[-1])
                flat = np.arange(m)
                group = np.repeat(np.arange(split.size), sub_sizes)
                within = flat - np.repeat(offsets[:-1], sub_sizes)
                positions = np.repeat(sub_lo, sub_sizes) + within
                active = perm[positions]
                values = points[active, sub_dims[group]]

                # Positional halving keeps every segment on a level
                # within one point of the same size, so the splitting
                # segments form at most two exact rectangular blocks —
                # no padding — and a row-wise argpartition around the
                # positional median orders each block at once.  Only the
                # partition invariant (left <= median <= right, valid
                # for both children even under duplicates) matters to
                # the query bound; order inside the halves is free, and
                # partitioning skips the log factor a full sort pays.
                mids = sub_sizes // 2
                medians = np.empty(split.size)
                for size in np.unique(sub_sizes):
                    rows = np.flatnonzero(sub_sizes == size)
                    mid = int(size) // 2
                    block_pos = offsets[rows][:, None] + np.arange(size)
                    block = values[block_pos]
                    order = np.argpartition(block, mid, axis=1)
                    medians[rows] = np.take_along_axis(
                        block, order[:, mid:mid + 1], axis=1
                    )[:, 0]
                    perm[positions[block_pos]] = np.take_along_axis(
                        active[block_pos], order, axis=1
                    )

            # Children ids continue the creation order: the two children
            # of the i-th splitting segment get ids base + 2i, base + 2i + 1.
            pair = 2 * np.arange(split.size)
            left_ids = np.full(pending, -1, dtype=np.int32)
            right_ids = np.full(pending, -1, dtype=np.int32)
            left_ids[split] = n_nodes + pair
            right_ids[split] = n_nodes + pair + 1
            node_dims = np.where(leaf, -1, dims).astype(np.int32)
            node_values = np.zeros(pending)
            node_values[split] = medians
            dim_chunks.append(node_dims)
            value_chunks.append(node_values)
            left_chunks.append(left_ids)
            right_chunks.append(right_ids)
            start_chunks.append(np.where(leaf, los, 0))
            stop_chunks.append(np.where(leaf, his, 0))
            n_nodes += 2 * split.size

            if split.size:
                cut = los[split] + mids
                next_los = np.empty(2 * split.size, dtype=np.int64)
                next_his = np.empty(2 * split.size, dtype=np.int64)
                next_los[0::2], next_his[0::2] = los[split], cut
                next_los[1::2], next_his[1::2] = cut, his[split]
                next_low = np.repeat(box_low[split], 2, axis=0)
                next_high = np.repeat(box_high[split], 2, axis=0)
                next_high[pair, sub_dims] = medians
                next_low[pair + 1, sub_dims] = medians
                los, his = next_los, next_his
                box_low, box_high = next_low, next_high
            else:
                los = np.zeros(0, dtype=np.int64)
                his = los

        self._perm = perm
        self._split_dim = np.concatenate(dim_chunks).astype(np.int32)
        self._split_value = np.concatenate(value_chunks)
        self._left = np.concatenate(left_chunks).astype(np.int32)
        self._right = np.concatenate(right_chunks).astype(np.int32)
        self._start = np.concatenate(start_chunks).astype(np.int64)
        self._stop = np.concatenate(stop_chunks).astype(np.int64)

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot)."""
        write_snapshot(
            path,
            self.kind,
            {
                "points": self._points,
                "leaf_size": np.int64(self._leaf_size),
                "perm": self._perm,
                "split_dim": self._split_dim,
                "split_value": self._split_value,
                "left": self._left,
                "right": self._right,
                "start": self._start,
                "stop": self._stop,
            },
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "KdTreeIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately."""
        data = read_snapshot(
            path,
            cls.kind,
            required=(
                "points", "leaf_size", "perm", "split_dim", "split_value",
                "left", "right", "start", "stop",
            ),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index._leaf_size = int(data["leaf_size"])
        index._perm = data["perm"].astype(np.intp, copy=False)
        index._split_dim = data["split_dim"]
        index._split_value = data["split_value"]
        index._left = data["left"]
        index._right = data["right"]
        index._start = data["start"]
        index._stop = data["stop"]
        return index

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k nearest neighbors via branch-and-bound descent."""
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        stats = QueryStats()

        points = self._points
        perm = self._perm
        split_dim = self._split_dim
        split_value = self._split_value
        left, right = self._left, self._right
        start, stop = self._start, self._stop

        # Max-heap of the k best (negated squared distance, tie-break index).
        best: list[tuple[float, int]] = []

        def worst_squared() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def scan_leaf(indices: np.ndarray) -> None:
            gaps = points[indices] - vector
            squared = np.sum(np.square(gaps), axis=1)
            stats.points_scanned += int(indices.size)
            for idx, d2 in zip(indices, squared):
                entry = (-float(d2), -int(idx))
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry > best[0]:
                    heapq.heapreplace(best, entry)

        # Squared distance from the query to the current node's region,
        # tracked per dimension: when descending to the far child of a
        # split on dimension s, the contribution of s is *replaced* by
        # offset^2 (not added — repeated splits on one dimension must not
        # compound, or the bound overestimates and prunes real answers).
        side_squared = np.zeros(self.dimensionality)

        def visit(node: int, rect_distance_sq: float) -> None:
            stats.nodes_visited += 1
            dim = split_dim[node]
            if dim < 0:
                scan_leaf(perm[start[node]:stop[node]])
                return
            offset = vector[dim] - split_value[node]
            near, far = (
                (left[node], right[node])
                if offset <= 0
                else (right[node], left[node])
            )
            visit(near, rect_distance_sq)
            previous = side_squared[dim]
            far_bound = rect_distance_sq - previous + offset * offset
            # <= (not <) so equal-distance points can still compete on the
            # index tie-break, keeping results identical to brute force.
            if far_bound <= worst_squared():
                side_squared[dim] = offset * offset
                visit(far, far_bound)
                side_squared[dim] = previous
            else:
                stats.nodes_pruned += 1

        visit(0, 0.0)

        ordered = sorted(best, key=lambda entry: (-entry[0], -entry[1]))
        neighbors = tuple(
            Neighbor(index=-tie, distance=float(np.sqrt(-negated)))
            for negated, tie in ordered
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """k-NN for every row of ``queries``; bit-identical to looping
        :meth:`query`.  ``n_workers`` > 1 fans the rows out over a
        thread pool (the traversal itself does not vectorize)."""
        return dispatch_query_batch(self, queries, k, n_workers)

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query``.

        Subtrees whose region lies farther than ``radius`` are pruned
        with the same per-dimension side-distance bound the k-NN search
        uses; results are sorted by ascending distance (ties by index).
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        radius_sq = radius * radius
        stats = QueryStats()
        found: list[tuple[float, int]] = []
        side_squared = np.zeros(self.dimensionality)

        points = self._points
        perm = self._perm
        split_dim = self._split_dim
        split_value = self._split_value
        left, right = self._left, self._right
        start, stop = self._start, self._stop

        def visit(node: int, rect_distance_sq: float) -> None:
            stats.nodes_visited += 1
            dim = split_dim[node]
            if dim < 0:
                indices = perm[start[node]:stop[node]]
                gaps = points[indices] - vector
                squared = np.sum(np.square(gaps), axis=1)
                stats.points_scanned += int(indices.size)
                for idx, d2 in zip(indices, squared):
                    if d2 <= radius_sq:
                        found.append((float(d2), int(idx)))
                return
            offset = vector[dim] - split_value[node]
            near, far = (
                (left[node], right[node])
                if offset <= 0
                else (right[node], left[node])
            )
            visit(near, rect_distance_sq)
            previous = side_squared[dim]
            far_bound = rect_distance_sq - previous + offset * offset
            if far_bound <= radius_sq:
                side_squared[dim] = offset * offset
                visit(far, far_bound)
                side_squared[dim] = previous
            else:
                stats.nodes_pruned += 1

        visit(0, 0.0)
        found.sort()
        neighbors = tuple(
            Neighbor(index=idx, distance=float(np.sqrt(d2))) for d2, idx in found
        )
        return KnnResult(neighbors=neighbors, stats=stats)


# Deprecated alias of ``KdTreeIndex.kind``; kept one release for
# external callers that imported the module constant.
_SNAPSHOT_KIND = KdTreeIndex.kind
