"""A kd-tree with branch-and-bound exact k-NN search.

Classic median-split construction; the query descends toward the leaf
containing the query point, then backtracks, pruning any subtree whose
splitting hyperplane is farther than the current k-th best distance.
This is the canonical "optimistic bound" pruning the paper's Section 1.1
discusses — and the per-query statistics show it collapsing as
dimensionality grows.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.search.batch import dispatch_query_batch
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)


@dataclass
class _Node:
    """One kd-tree node.

    Internal nodes carry a split ``(dimension, value)`` and two children;
    leaves carry corpus row indices.
    """

    indices: np.ndarray | None = None
    split_dim: int = -1
    split_value: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


class KdTreeIndex:
    """Median-split kd-tree over a static corpus.

    Args:
        points: ``(n, d)`` corpus.
        leaf_size: maximum number of points stored in a leaf.
    """

    def __init__(self, points, leaf_size: int = 16) -> None:
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        self._points = validate_corpus(points)
        self._leaf_size = leaf_size
        self._root = self._build(np.arange(self.n_points, dtype=np.intp), depth=0)

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def _build(self, indices: np.ndarray, depth: int) -> _Node:
        if indices.size <= self._leaf_size:
            return _Node(indices=indices)

        # Split the dimension with the largest spread among the subset —
        # better-balanced boxes than pure depth cycling on skewed data.
        subset = self._points[indices]
        spreads = subset.max(axis=0) - subset.min(axis=0)
        split_dim = int(np.argmax(spreads))
        if spreads[split_dim] == 0.0:
            # All remaining points identical: store as one leaf.
            return _Node(indices=indices)

        values = subset[:, split_dim]
        split_value = float(np.median(values))
        left_mask = values <= split_value
        # Guard against a degenerate median (all values on one side).
        if left_mask.all() or not left_mask.any():
            left_mask = values < split_value
            if not left_mask.any():
                return _Node(indices=indices)

        return _Node(
            split_dim=split_dim,
            split_value=split_value,
            left=self._build(indices[left_mask], depth + 1),
            right=self._build(indices[~left_mask], depth + 1),
        )

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k nearest neighbors via branch-and-bound descent."""
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        stats = QueryStats()

        # Max-heap of the k best (negated squared distance, tie-break index).
        best: list[tuple[float, int]] = []

        def worst_squared() -> float:
            return -best[0][0] if len(best) == k else np.inf

        def scan_leaf(indices: np.ndarray) -> None:
            gaps = self._points[indices] - vector
            squared = np.sum(np.square(gaps), axis=1)
            stats.points_scanned += int(indices.size)
            for idx, d2 in zip(indices, squared):
                entry = (-float(d2), -int(idx))
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry > best[0]:
                    heapq.heapreplace(best, entry)

        # Squared distance from the query to the current node's region,
        # tracked per dimension: when descending to the far child of a
        # split on dimension s, the contribution of s is *replaced* by
        # offset^2 (not added — repeated splits on one dimension must not
        # compound, or the bound overestimates and prunes real answers).
        side_squared = np.zeros(self.dimensionality)

        def visit(node: _Node, rect_distance_sq: float) -> None:
            stats.nodes_visited += 1
            if node.is_leaf:
                scan_leaf(node.indices)
                return
            offset = vector[node.split_dim] - node.split_value
            near, far = (
                (node.left, node.right) if offset <= 0 else (node.right, node.left)
            )
            visit(near, rect_distance_sq)
            previous = side_squared[node.split_dim]
            far_bound = rect_distance_sq - previous + offset * offset
            # <= (not <) so equal-distance points can still compete on the
            # index tie-break, keeping results identical to brute force.
            if far_bound <= worst_squared():
                side_squared[node.split_dim] = offset * offset
                visit(far, far_bound)
                side_squared[node.split_dim] = previous
            else:
                stats.nodes_pruned += 1

        visit(self._root, 0.0)

        ordered = sorted(best, key=lambda entry: (-entry[0], -entry[1]))
        neighbors = tuple(
            Neighbor(index=-tie, distance=float(np.sqrt(-negated)))
            for negated, tie in ordered
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """k-NN for every row of ``queries``; bit-identical to looping
        :meth:`query`.  ``n_workers`` > 1 fans the rows out over a
        thread pool (the traversal itself does not vectorize)."""
        return dispatch_query_batch(self, queries, k, n_workers)

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query``.

        Subtrees whose region lies farther than ``radius`` are pruned
        with the same per-dimension side-distance bound the k-NN search
        uses; results are sorted by ascending distance (ties by index).
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        radius_sq = radius * radius
        stats = QueryStats()
        found: list[tuple[float, int]] = []
        side_squared = np.zeros(self.dimensionality)

        def visit(node: _Node, rect_distance_sq: float) -> None:
            stats.nodes_visited += 1
            if node.is_leaf:
                gaps = self._points[node.indices] - vector
                squared = np.sum(np.square(gaps), axis=1)
                stats.points_scanned += int(node.indices.size)
                for idx, d2 in zip(node.indices, squared):
                    if d2 <= radius_sq:
                        found.append((float(d2), int(idx)))
                return
            offset = vector[node.split_dim] - node.split_value
            near, far = (
                (node.left, node.right) if offset <= 0 else (node.right, node.left)
            )
            visit(near, rect_distance_sq)
            previous = side_squared[node.split_dim]
            far_bound = rect_distance_sq - previous + offset * offset
            if far_bound <= radius_sq:
                side_squared[node.split_dim] = offset * offset
                visit(far, far_bound)
                side_squared[node.split_dim] = previous
            else:
                stats.nodes_pruned += 1

        visit(self._root, 0.0)
        found.sort()
        neighbors = tuple(
            Neighbor(index=idx, distance=float(np.sqrt(d2))) for d2, idx in found
        )
        return KnnResult(neighbors=neighbors, stats=stats)
