"""Projection-screened exact k-NN: prune in a subspace, refine in full.

The paper's central object — distances computed in an m-dimensional
PCA- or coherence-selected subspace — is a *lower bound* on the full
d-dimensional distance: for a projection matrix ``P`` with orthonormal
columns, ``||P^T v|| <= ||v||`` for every vector ``v`` (drop the
orthogonal complement's non-negative contribution).  That single
inequality turns dimensionality reduction from an approximation into an
exact-search accelerator, the construction developed in "On Projections
to Linear Subspaces" (Thordsen & Schubert, SISAP 2022):

1. **Screen** — scan a contiguous float32 copy of the reduced corpus
   (``m`` floats per row instead of ``d`` doubles: a ``8d/4m``-fold
   bytes reduction) with the blocked Gram-expansion kernel from
   :mod:`repro.search.batch`, producing a lower bound per corpus row.
2. **Prune** — take the ``k`` reduced-nearest rows as seeds, compute
   their exact full distances, and let the running k-th exact distance
   ``tau`` discard every row whose lower bound exceeds it: no such row
   can enter the true top-k, because its full distance is at least its
   reduced distance.
3. **Refine** — recompute the survivors exactly in float64 with the
   same subtract-square arithmetic :class:`BruteForceIndex` uses, so
   neighbors, distances, and index tie-breaks are **bit-identical** to
   the linear scan.

Floating point cannot break exactness here, only waste a little work:
the screen compares each computed bound against ``tau`` plus a
conservative margin that dominates the float32 kernel's cancellation
error, the float32 quantization of the reduced corpus, and the
(machine-epsilon) departure of the eigenbasis from exact orthonormality
— so a true neighbor is never pruned, at worst a few extra rows are
refined.

The subspace itself comes from :func:`fit_projection`: covariance PCA
(:func:`repro.linalg.pca.fit_pca` — never the studentized variant,
whose per-column rescaling changes the metric and voids the bound) with
the retained components chosen by descending eigenvalue (the classical
rule) or by the paper's coherence probability
(:func:`repro.core.coherence.dataset_coherence` +
:func:`repro.core.selection.select_by_coherence`).  Which ordering
yields tighter bounds at equal ``m`` is exactly the experiment
``benchmarks/bench_ablation_projection_screen.py`` runs.

:class:`QueryStats` accounting: ``reduced_rows_scanned`` counts the
stage-1 subspace rows (always ``n``), ``points_scanned`` counts the
full-width refinements (seeds included, each surviving row exactly
once, even when ``query_batch`` splits into blocks), so
``stats.pruning_fraction(n)`` audits the win and raises on any
double-count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.search.batch import (
    _F32_MAGNITUDE_LIMIT,
    GramScanner,
    pad_rows,
    refine_masked_candidates,
    validate_refine_kernel,
)
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    combine_stats,
    validate_corpus,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot

PROJECTION_ORDERINGS = ("eigen", "coherence")

# Block size for batched screening, in score-matrix entries: query rows
# are processed in blocks of ``_BLOCK_ENTRIES // n`` so the ``(q, n)``
# scratch matrices stay around 32 MB regardless of batch size.
_BLOCK_ENTRIES = 4_194_304

# Orthonormality tolerance for caller-supplied projections: eigenbases
# from any reasonable solver sit at machine epsilon; anything past this
# is a genuinely oblique matrix whose "lower bounds" would not be.
_ORTHONORMAL_ATOL = 1e-8

# Fixed row count for every stage-1 BLAS call.  BLAS kernels round
# differently for different matrix shapes, so a query scored alone (the
# closed loop) and inside a coalesced server batch could land on
# opposite sides of the pruning threshold — answers would stay exact,
# but the per-query refined-rows counter would depend on how queries
# were batched, breaking the serving layer's bit-identical-stats
# contract.  Projecting and scoring in zero-padded chunks of this many
# rows keeps every BLAS shape constant, which makes the mask (and the
# stats) a pure function of each query alone.
_SCORE_CHUNK_ROWS = 32


@dataclass(frozen=True)
class ProjectionSpec:
    """An orthonormal subspace projection fitted on a corpus.

    Attributes:
        center: ``(d,)`` translation applied before projecting
            (Euclidean distances are translation-invariant, so any
            center preserves the bound; the corpus mean is what PCA
            fits).
        matrix: ``(d, m)`` projection with orthonormal columns — the
            property the lower-bound guarantee rests on.
        ordering: which selection rule picked the columns (``"eigen"``
            or ``"coherence"``); provenance for reports and snapshots.
    """

    center: np.ndarray
    matrix: np.ndarray
    ordering: str

    @property
    def input_dimensionality(self) -> int:
        return self.matrix.shape[0]

    @property
    def subspace_dim(self) -> int:
        return self.matrix.shape[1]

    def reduce(self, data: np.ndarray) -> np.ndarray:
        """Map rows of ``data`` (full space) into the subspace."""
        return (data - self.center) @ self.matrix


def validate_ordering(ordering: str) -> str:
    """Validate the subspace selection rule name."""
    if ordering not in PROJECTION_ORDERINGS:
        raise ValueError(
            f"ordering must be one of {PROJECTION_ORDERINGS}, "
            f"got {ordering!r}"
        )
    return ordering


def _validate_projection(spec: ProjectionSpec, dimensionality: int) -> ProjectionSpec:
    matrix = np.asarray(spec.matrix, dtype=np.float64)
    center = np.asarray(spec.center, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != dimensionality:
        raise ValueError(
            f"projection matrix must be (d, m) with d={dimensionality}, "
            f"got shape {matrix.shape}"
        )
    m = matrix.shape[1]
    if not 1 <= m <= dimensionality:
        raise ValueError(
            f"subspace dimension must lie in [1, {dimensionality}], got {m}"
        )
    if center.shape != (dimensionality,):
        raise ValueError(
            f"projection center must be ({dimensionality},), "
            f"got shape {center.shape}"
        )
    if not (np.all(np.isfinite(matrix)) and np.all(np.isfinite(center))):
        raise ValueError("projection must be finite")
    gram = matrix.T @ matrix
    if not np.allclose(gram, np.eye(m), atol=_ORTHONORMAL_ATOL):
        raise ValueError(
            "projection columns must be orthonormal: subspace distances "
            "lower-bound full distances only for orthonormal projections "
            "(an oblique matrix can expand distances and prune true "
            "neighbors)"
        )
    ordering = validate_ordering(spec.ordering)
    return ProjectionSpec(center=center, matrix=matrix, ordering=ordering)


def default_subspace_dim(dimensionality: int) -> int:
    """The default screening dimension: d/4, floored at 1.

    A quarter of the input dimensionality is the aggressive-reduction
    regime the paper's evaluation targets, and in reduced-scan terms it
    is an 8x bytes cut (float32 quarter-width rows vs float64 full
    rows) before any pruning.
    """
    return max(1, dimensionality // 4)


def fit_projection(
    points,
    subspace_dim: int | None = None,
    ordering: str = "eigen",
) -> ProjectionSpec:
    """Fit an orthonormal screening projection on a corpus.

    Args:
        points: ``(n, d)`` corpus (validated like an index constructor).
        subspace_dim: retained dimensions ``m`` in ``[1, d]``; defaults
            to :func:`default_subspace_dim`.
        ordering: ``"eigen"`` keeps the ``m`` largest-eigenvalue
            components; ``"coherence"`` keeps the ``m`` components with
            the highest dataset coherence probability (eigenvalue
            tie-break), the paper's selection rule.

    Covariance PCA only — the studentized (correlation) variant rescales
    columns, which changes the metric and destroys the lower-bound
    property.  Degenerate corpora (a single point, or zero variance)
    fall back to the leading ``m`` coordinate axes, which are trivially
    orthonormal and keep every guarantee.
    """
    array = validate_corpus(points)
    d = array.shape[1]
    if subspace_dim is None:
        subspace_dim = default_subspace_dim(d)
    if not 1 <= subspace_dim <= d:
        raise ValueError(
            f"subspace_dim must lie in [1, {d}], got {subspace_dim}"
        )
    ordering = validate_ordering(ordering)

    if array.shape[0] < 2:
        # fit_pca needs two points; any orthonormal basis is sound.
        return ProjectionSpec(
            center=array.mean(axis=0),
            matrix=np.eye(d)[:, :subspace_dim],
            ordering=ordering,
        )

    from repro.core.coherence import dataset_coherence
    from repro.core.selection import select_by_coherence, select_by_eigenvalue
    from repro.linalg.pca import fit_pca

    pca = fit_pca(array, scale=False)
    decomposition = pca.decomposition
    if ordering == "eigen":
        selected = select_by_eigenvalue(decomposition.eigenvalues, subspace_dim)
    else:
        centered = array - pca.means
        probabilities = dataset_coherence(centered, decomposition.eigenvectors)
        selected = select_by_coherence(
            probabilities, subspace_dim, tie_break=decomposition.eigenvalues
        )
    return ProjectionSpec(
        center=pca.means,
        matrix=decomposition.basis(selected),
        ordering=ordering,
    )


class ProjectionScreenedIndex:
    """Exact k-NN via reduced-space screening and full-space refinement.

    Args:
        points: ``(n, d)`` corpus.
        subspace_dim: screening dimensions ``m`` (default ``d // 4``,
            floored at 1).  Ignored when ``projection`` is given.
        ordering: subspace selection rule, ``"eigen"`` or
            ``"coherence"``.  Ignored when ``projection`` is given.
        projection: a pre-fitted :class:`ProjectionSpec` to use instead
            of fitting on ``points`` — how :func:`repro.shard.build_shards`
            hands every shard the one projection fitted on the *full*
            corpus (the same shared-structure rule as IGrid's global
            discretization), and how experiments pin a basis.
        refine_kernel: stage-3 exact re-ranking kernel, ``"gather"`` or
            ``"gemm"`` (see
            :func:`~repro.search.batch.refine_masked_candidates`); both
            produce bit-identical answers and stats, so the knob trades
            wall clock only.  ``"gemm"`` compacts the survivors into
            fixed-shape tiles and re-ranks through one blocked float64
            Gram multiply — the fast choice at loose pruning fractions,
            where the gather path's per-row fancy indexing dominates.
            Not persisted in snapshots.

    Answers are bit-identical to :class:`BruteForceIndex` — same
    neighbors, same distance bytes, same lower-index tie-breaks — at a
    fraction of the scanned bytes; :class:`QueryStats` reports the
    split (``reduced_rows_scanned`` vs ``points_scanned``).
    """

    # Snapshot kind: read by the registry, snapshot dispatch, and
    # the :class:`repro.search.Index` protocol.
    kind = "projscreen"

    def __init__(
        self,
        points,
        subspace_dim: int | None = None,
        ordering: str = "eigen",
        projection: ProjectionSpec | None = None,
        refine_kernel: str = "gemm",
    ) -> None:
        self._points = validate_corpus(points)
        self.refine_kernel = validate_refine_kernel(refine_kernel)
        if projection is None:
            projection = fit_projection(
                self._points, subspace_dim=subspace_dim, ordering=ordering
            )
        self._projection = _validate_projection(
            projection, self._points.shape[1]
        )
        reduced64 = self._projection.reduce(self._points)
        # Contiguous float32 reduced corpus: the stage-1 scan reads
        # 4m bytes per row instead of the corpus's 8d.
        self._reduced = np.ascontiguousarray(reduced64, dtype=np.float32)
        # Norms of the *stored* float32 rows, in float64: the screen's
        # bounds are statements about the rows it actually scans.
        wide = self._reduced.astype(np.float64)
        self._reduced_sq_norms = np.einsum("nd,nd->n", wide, wide)
        centered = self._points - self._projection.center
        self._max_centered_sq_norm = float(
            np.einsum("nd,nd->n", centered, centered).max()
        )
        self._finish_init()

    def _finish_init(self) -> None:
        """Derived state shared by the constructor and :meth:`load`."""
        self._scanner = GramScanner(
            self._reduced, dtype="float32", sq_norms=self._reduced_sq_norms
        )
        self._block_entries = _BLOCK_ENTRIES

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    @property
    def subspace_dim(self) -> int:
        return self._projection.subspace_dim

    @property
    def ordering(self) -> str:
        return self._projection.ordering

    @property
    def projection(self) -> ProjectionSpec:
        return self._projection

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot).

        The projection matrix and the float32 reduced corpus are stored
        alongside the points, so a loaded index is query-ready with
        zero refitting and screens with the exact same bounds.
        """
        write_snapshot(
            path,
            self.kind,
            {
                "points": self._points,
                "projection": self._projection.matrix,
                "center": self._projection.center,
                "ordering": np.bytes_(self._projection.ordering.encode()),
                "reduced": self._reduced,
                "reduced_sq_norms": self._reduced_sq_norms,
                "max_centered_sq_norm": np.float64(
                    self._max_centered_sq_norm
                ),
            },
        )

    @classmethod
    def load(
        cls, path: str, *, mmap_points: bool = False
    ) -> "ProjectionScreenedIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately.

        ``mmap_points=True`` maps the full corpus from the file instead
        of reading it into memory — the stage-1 screen touches only the
        (in-memory) reduced matrix, so under mmap a serving process
        faults in corpus pages only for the rows that survive pruning.
        """
        data = read_snapshot(
            path,
            cls.kind,
            required=(
                "points", "projection", "center", "ordering",
                "reduced", "reduced_sq_norms", "max_centered_sq_norm",
            ),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index.refine_kernel = "gemm"
        index._projection = _validate_projection(
            ProjectionSpec(
                center=data["center"],
                matrix=data["projection"],
                ordering=bytes(data["ordering"]).decode(),
            ),
            index._points.shape[1],
        )
        index._reduced = np.ascontiguousarray(
            data["reduced"], dtype=np.float32
        )
        index._reduced_sq_norms = data["reduced_sq_norms"]
        # Stored scalar: recomputing it would stream the whole (possibly
        # memory-mapped) corpus at load time.
        index._max_centered_sq_norm = float(data["max_centered_sq_norm"])
        index._finish_init()
        return index

    def _screen_margin(
        self, kernel_margin: np.ndarray, q_sq_reduced: np.ndarray,
        q_sq_centered: np.ndarray,
    ) -> np.ndarray:
        """Per-query slack added to ``tau`` before the bound comparison.

        Three error sources separate a computed stage-1 score from the
        true (real-arithmetic) reduced distance it lower-bounds with:
        the float32 Gram kernel's cancellation error (covered by the
        kernel's own margin), the float32 quantization of the stored
        reduced rows (relative ~1e-7, bounded here with a 1e-6
        coefficient on the same magnitude scale), and the eigenbasis
        being orthonormal only to machine epsilon (bounded by a 1e-13
        coefficient on the *full-space* centered magnitudes, since
        ``||P^T v||^2 <= (1 + ||P^T P - I||) ||v||^2``).  The sum keeps
        the screen conservative: a true neighbor is never pruned, at
        worst a few extra rows are refined.
        """
        m = self.subspace_dim
        d = self.dimensionality
        quantization = 1e-6 * (m + 100.0) * (
            q_sq_reduced + self._scanner.max_sq_norm
        )
        orthonormality = 1e-13 * (d + 100.0) * (
            q_sq_centered + self._max_centered_sq_norm
        )
        return kernel_margin + quantization + orthonormality + 1e-30

    def _stage1_scores(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-shape stage-1 scoring of a query block: (approx, margin).

        Every BLAS call here — the projection multiply and the Gram
        scan — runs on exactly ``_SCORE_CHUNK_ROWS`` rows (zero-padded),
        so each query's scores are bit-identical however the caller
        batched it; see the constant's comment for why that matters.
        Rows are routed to the float32 or float64 kernel by a *per-row*
        magnitude test, so the chunk-level dtype decision can never
        depend on a row's chunk-mates either.
        """
        b, chunk = rows.shape[0], _SCORE_CHUNK_ROWS
        centered = rows - self._projection.center
        q_sq_centered = np.einsum("qd,qd->q", centered, centered)
        reduced = np.empty((b, self.subspace_dim))
        for start in range(0, b, chunk):
            stop = min(start + chunk, b)
            block = pad_rows(centered[start:stop], chunk)
            projected = block @ self._projection.matrix
            reduced[start:stop] = projected[: stop - start]
        q_sq_reduced = np.einsum("qd,qd->q", reduced, reduced)

        approx = np.empty((b, self.n_points))
        margin = np.empty(b)
        f32_eligible = q_sq_reduced < _F32_MAGNITUDE_LIMIT
        groups = (np.flatnonzero(f32_eligible), np.flatnonzero(~f32_eligible))
        for group in groups:
            for start in range(0, group.size, chunk):
                sel = group[start : start + chunk]
                scores, kernel_margin = self._scanner.scores(
                    pad_rows(reduced[sel], chunk),
                    pad_rows(q_sq_reduced[sel], chunk),
                )
                # float32 scores upcast exactly, so comparing against
                # the float64 limit later is unchanged by this store.
                approx[sel] = scores[: sel.size]
                margin[sel] = self._screen_margin(
                    kernel_margin[: sel.size],
                    q_sq_reduced[sel],
                    q_sq_centered[sel],
                )
        return approx, margin

    def _query_block(self, rows: np.ndarray, k: int) -> list[KnnResult]:
        """Screen, prune, and refine one block of query rows."""
        n = self.n_points

        # Stage 1: blocked reduced-space scan -> lower-bound scores.
        approx, margin = self._stage1_scores(rows)

        # Stage 2: seed tau with the k reduced-nearest rows' exact
        # distances; tau is then >= the true k-th distance, so any row
        # whose lower bound beats tau (+ margin) may yet be a neighbor
        # and every other row provably is not.
        b = rows.shape[0]
        seeds = np.argpartition(approx, k - 1, axis=1)[:, :k]
        seed_rows = np.repeat(np.arange(b), k)
        seed_gaps = self._points[seeds.ravel()] - rows[seed_rows]
        seed_sq = np.sum(np.square(seed_gaps), axis=1).reshape(b, k)
        tau = seed_sq.max(axis=1)
        limit = tau + margin
        # Comparing the float32 scores against the float64 limit
        # upcasts, so no downcast can shave the margin.
        mask = approx <= limit[:, None]
        # The seeds were refined to produce tau; count them as
        # candidates exactly once via the mask (a seed's bound can
        # exceed tau when its own exact distance does).
        mask[seed_rows, seeds.ravel()] = True

        # Stage 3: exact float64 re-rank of the survivors, bit-identical
        # arithmetic and tie-breaks to BruteForceIndex.  Both kernels
        # return the same bits, so the knob never shows in the answers
        # or the stats.
        top_indices, top_squared, counts = refine_masked_candidates(
            self._points, rows, mask, k,
            block_entries=self._block_entries, kernel=self.refine_kernel,
        )
        top_distances = np.sqrt(top_squared)

        results = []
        for query_row in range(b):
            neighbors = tuple(
                Neighbor(index=int(idx), distance=float(dist))
                for idx, dist in zip(
                    top_indices[query_row], top_distances[query_row]
                )
            )
            refined = int(counts[query_row])
            stats = QueryStats(
                points_scanned=refined,
                nodes_pruned=n - refined,
                reduced_rows_scanned=n,
                # The screen admits exactly the refined rows: funnel
                # width and refinement width coincide for this index.
                candidates_generated=refined,
            )
            results.append(KnnResult(neighbors=neighbors, stats=stats))
        return results

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k-NN for one query (screen, prune, refine).

        Same neighbors, distances, and tie-breaks as
        :class:`BruteForceIndex`; the stats show how little was refined.
        """
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        return self._query_block(vector.reshape(1, -1), k)[0]

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """Batched exact k-NN; bit-identical to looping :meth:`query`.

        The reduced-space screen amortizes over the block (one float32
        BLAS multiply per block), and each query's counters are
        assigned exactly once regardless of how the batch splits into
        blocks — ``stats.pruning_fraction`` stays honest.

        ``n_workers`` is accepted for protocol uniformity across the
        index family and ignored: the vectorized screen outruns any
        thread fan-out.
        """
        del n_workers
        array = validate_queries(queries, self.dimensionality)
        k = validate_k(k, self.n_points)
        block = max(1, self._block_entries // self.n_points)
        results: list[KnnResult] = []
        for start in range(0, array.shape[0], block):
            results.extend(self._query_block(array[start : start + block], k))
        return BatchKnnResult(
            results=tuple(results),
            stats=combine_stats(r.stats for r in results),
        )

    def recall_against_exact(
        self, queries, k: int = 3, *, n_workers: int | None = None,
        reference=None,
    ) -> float:
        """Recall vs the exact linear scan — always 1.0, by contract.

        Exactness is a contract, not a metric, for this index: the
        audit raises :class:`~repro.search.recall.ExactnessViolation`
        instead of returning a value below 1.0.  ``reference``
        optionally reuses a prebuilt exact index over the same corpus.
        """
        from repro.search.recall import recall_against_exact

        return recall_against_exact(
            self, queries, k=k, n_workers=n_workers, exact=True,
            reference=reference,
        )


# Deprecated alias of ``ProjectionScreenedIndex.kind``; kept one release for
# external callers that imported the module constant.
_SNAPSHOT_KIND = ProjectionScreenedIndex.kind
