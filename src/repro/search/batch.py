"""Shared batch-query execution for the exact k-NN indexes.

Every exact index exposes ``query_batch(queries, k)`` returning a
:class:`~repro.search.results.BatchKnnResult`.  Two execution strategies
live here:

* :func:`sequential_query_batch` — loop ``index.query`` over the rows.
  The default for the tree-based indexes, whose traversal state
  (recursion, priority queues) does not vectorize.
* :func:`threaded_query_batch` — split the rows into contiguous chunks
  and fan the chunks out over a process-lifetime shared
  ``ThreadPoolExecutor``.  Queries are read-only over a static corpus,
  so they are trivially safe to run concurrently; the leaf scans and
  bound computations are numpy calls that release the GIL, which is
  where the overlap comes from.  The executor is created once and
  reused — a serving process answering thousands of small batches must
  not pay thread spawn/teardown per call — and the effective fan-out is
  capped at the number of query rows, so tiny batches never produce
  idle workers.  Requests wider than the shared pool
  (:data:`_POOL_WIDTH` threads) still complete; concurrency simply
  saturates at the pool width.

The matrix-friendly indexes (brute force, VA-file) override
``query_batch`` with truly vectorized implementations instead — see
:mod:`repro.search.bruteforce` and :mod:`repro.search.vafile`.

Both strategies preserve query order and produce results bit-identical
to calling ``query`` row by row; the batch API never trades accuracy
for throughput.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    combine_stats,
    validate_k,
    validate_queries,
)

# Width of the process-wide shared executor.  Beyond the CPU count,
# extra GIL-releasing numpy threads stop helping; the floor keeps some
# overlap available on small machines and the cap bounds idle threads
# on large ones.  Threads are created lazily by the executor, so an
# unused width costs nothing.
_POOL_WIDTH = min(32, max(4, os.cpu_count() or 1))

_POOL_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None


def _shared_executor() -> ThreadPoolExecutor:
    """The process-lifetime thread pool all batch calls share."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=_POOL_WIDTH, thread_name_prefix="repro-batch"
            )
        return _POOL


def validate_n_workers(n_workers: int | None) -> int | None:
    """Validate the optional thread-pool width (``None`` = sequential)."""
    if n_workers is None:
        return None
    if n_workers < 1:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    return int(n_workers)


def sequential_query_batch(index, queries, k: int) -> BatchKnnResult:
    """Answer a batch by looping ``index.query`` over the rows."""
    array = validate_queries(queries, index.dimensionality)
    k = validate_k(k, index.n_points)
    results = tuple(index.query(row, k=k) for row in array)
    return _package(results)


def _query_rows(index, rows, k: int) -> list[KnnResult]:
    return [index.query(row, k=k) for row in rows]


def threaded_query_batch(
    index, queries, k: int, n_workers: int
) -> BatchKnnResult:
    """Answer a batch by fanning row chunks out over the shared pool."""
    array = validate_queries(queries, index.dimensionality)
    k = validate_k(k, index.n_points)
    rows = array.shape[0]
    if rows == 0:
        return _package(())
    # Never spawn more chunks than rows: a 3-row batch with
    # n_workers=16 runs as 3 single-row tasks, not 13 idle ones.
    width = min(n_workers, rows)
    if width == 1:
        return _package(tuple(index.query(row, k=k) for row in array))
    bounds = [rows * i // width for i in range(width + 1)]
    pool = _shared_executor()
    futures = [
        pool.submit(_query_rows, index, array[bounds[i] : bounds[i + 1]], k)
        for i in range(width)
    ]
    results = tuple(
        itertools.chain.from_iterable(f.result() for f in futures)
    )
    return _package(results)


def dispatch_query_batch(
    index, queries, k: int, n_workers: int | None
) -> BatchKnnResult:
    """Route to the sequential or threaded strategy by ``n_workers``."""
    n_workers = validate_n_workers(n_workers)
    if n_workers is None or n_workers == 1:
        return sequential_query_batch(index, queries, k)
    return threaded_query_batch(index, queries, k, n_workers)


def _package(results: tuple[KnnResult, ...]) -> BatchKnnResult:
    return BatchKnnResult(
        results=results, stats=combine_stats(r.stats for r in results)
    )
