"""Shared batch-query execution for the exact k-NN indexes.

Every exact index exposes ``query_batch(queries, k)`` returning a
:class:`~repro.search.results.BatchKnnResult`.  Two execution strategies
live here:

* :func:`sequential_query_batch` — loop ``index.query`` over the rows.
  The default for the tree-based indexes, whose traversal state
  (recursion, priority queues) does not vectorize.
* :func:`threaded_query_batch` — split the rows into contiguous chunks
  and fan the chunks out over a process-lifetime shared
  ``ThreadPoolExecutor``.  Queries are read-only over a static corpus,
  so they are trivially safe to run concurrently; the leaf scans and
  bound computations are numpy calls that release the GIL, which is
  where the overlap comes from.  The executor is created once and
  reused — a serving process answering thousands of small batches must
  not pay thread spawn/teardown per call — and the effective fan-out is
  capped at the number of query rows, so tiny batches never produce
  idle workers.  Requests wider than the shared pool
  (:data:`_POOL_WIDTH` threads) still complete; concurrency simply
  saturates at the pool width.

The matrix-friendly indexes (brute force, VA-file) override
``query_batch`` with truly vectorized implementations instead — see
:mod:`repro.search.bruteforce` and :mod:`repro.search.vafile`.

Both strategies preserve query order and produce results bit-identical
to calling ``query`` row by row; the batch API never trades accuracy
for throughput.

This module also hosts the two vectorized scan primitives those
matrix-friendly paths share:

* :class:`GramScanner` — blocked float32/float64 Gram-expansion scoring
  of query rows against a static row matrix, behind a ``dtype`` knob,
  with a conservative per-query error margin.  The scores only *select*
  candidates; exact arithmetic stays with the caller, which is what
  makes the memory-lean float32 path safe.  Brute force uses it over
  the full corpus; the projection-screened index reuses it as its
  stage-1 reduced-space kernel.
* :func:`refine_masked_candidates` — exact float64 top-k over per-row
  candidate masks, with the stable tie-break (equal distances resolve
  to the lower corpus index) every index in the family guarantees.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    combine_stats,
    validate_k,
    validate_queries,
)

# Default block size for the exact-refinement gather, in distance-matrix
# entries: keeps the flat scratch arrays around 32 MB.
_REFINE_BLOCK_ENTRIES = 4_194_304

# Beyond this squared magnitude a float32 expansion can overflow to inf,
# so the scanner falls back to float64 regardless of the requested dtype
# — soundness beats the caller's bytes preference.
_F32_MAGNITUDE_LIMIT = 1e30

GRAM_DTYPES = ("auto", "float32", "float64")


class GramScanner:
    """Blocked Gram-expansion scoring of query rows against a matrix.

    One BLAS multiply produces approximate squared Euclidean distances
    for a whole block of query rows at once via
    ``||q - p||^2 = ||q||^2 - 2 q.p + ||p||^2``.  The expansion loses a
    few ulps to cancellation (and, on the float32 path, to reduced
    precision), so :meth:`scores` also returns a per-query margin that
    dominates the combined error: for every entry,
    ``|approx - exact| <= margin`` where ``exact`` is the float64
    subtract-square distance to the stored matrix row.  Callers use the
    scores to *select* candidates and recompute survivors exactly, so
    the lossy fast path never reaches an answer.

    Args:
        matrix: ``(n, d)`` static rows to scan against; float64 or
            float32 (a float32 matrix is scored as stored — its
            quantization is part of the distances the margin covers
            relative to the stored values).
        dtype: ``"auto"`` scores in float32 whenever the squared
            magnitudes stay far from float32 overflow, ``"float32"``
            requests the memory-lean path explicitly (the overflow
            guard still wins — an unsound scan is never produced), and
            ``"float64"`` forces full-precision scoring.
        sq_norms: optional precomputed float64 ``||p||^2`` per row
            (computed here when omitted).
    """

    def __init__(self, matrix, *, dtype: str = "auto", sq_norms=None) -> None:
        self._dtype = validate_gram_dtype(dtype)
        self._matrix = matrix
        if sq_norms is None:
            wide = np.asarray(matrix, dtype=np.float64)
            sq_norms = np.einsum("nd,nd->n", wide, wide)
        self._sq_norms = np.asarray(sq_norms, dtype=np.float64)
        self._max_sq_norm = float(self._sq_norms.max())
        # Lazily materialized shadows, so callers that never take the
        # other path pay nothing.
        self._matrix_f32: np.ndarray | None = None
        self._sq_norms_f32: np.ndarray | None = None
        self._matrix_f64: np.ndarray | None = None

    @property
    def dtype(self) -> str:
        """The requested scoring dtype knob (``auto``/``float32``/``float64``)."""
        return self._dtype

    @property
    def max_sq_norm(self) -> float:
        return self._max_sq_norm

    def uses_float32(self, q_sq: np.ndarray) -> bool:
        """Whether a block with these query magnitudes scores in float32."""
        if self._dtype == "float64":
            return False
        return (
            self._max_sq_norm < _F32_MAGNITUDE_LIMIT
            and float(q_sq.max(initial=0.0)) < _F32_MAGNITUDE_LIMIT
        )

    def scores(
        self, rows: np.ndarray, q_sq: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Score a block of query rows: ``(approx, margin)``.

        ``approx`` is the ``(b, n)`` matrix of approximate squared
        distances in the effective dtype; ``margin`` is the ``(b,)``
        float64 error bound valid for every entry of the matching row.
        """
        d = self._matrix.shape[1]
        if self.uses_float32(q_sq):
            if self._matrix_f32 is None:
                self._matrix_f32 = np.ascontiguousarray(
                    self._matrix, dtype=np.float32
                )
                self._sq_norms_f32 = self._sq_norms.astype(np.float32)
            # In-place expansion: every avoided temporary is a full pass
            # over the (b, n) matrix.
            approx = rows.astype(np.float32) @ self._matrix_f32.T
            approx *= -2.0
            approx += q_sq.astype(np.float32)[:, None]
            approx += self._sq_norms_f32
            margin = 1e-5 * (d + 100.0) * (q_sq + self._max_sq_norm) + 1e-30
        else:
            if self._matrix_f64 is None:
                if self._matrix.dtype == np.float64:
                    self._matrix_f64 = self._matrix
                else:
                    self._matrix_f64 = np.ascontiguousarray(
                        self._matrix, dtype=np.float64
                    )
            approx = rows @ self._matrix_f64.T
            approx *= -2.0
            approx += q_sq[:, None]
            approx += self._sq_norms
            margin = 1e-14 * (d + 100.0) * (q_sq + self._max_sq_norm) + 1e-30
        return approx, margin


def validate_gram_dtype(dtype: str) -> str:
    """Validate the Gram-expansion scoring knob."""
    if dtype not in GRAM_DTYPES:
        raise ValueError(
            f"dtype must be one of {GRAM_DTYPES}, got {dtype!r}"
        )
    return dtype


def refine_masked_candidates(
    corpus: np.ndarray,
    rows: np.ndarray,
    mask: np.ndarray,
    k: int,
    *,
    block_entries: int = _REFINE_BLOCK_ENTRIES,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact float64 top-k over per-row candidate masks.

    Every masked candidate's distance is recomputed with the same
    subtract-square arithmetic the sequential ``query`` paths use, in
    bounded chunks (tie-heavy corpora can make the mask wide), so the
    returned neighbors, distances, and tie-breaks are bit-identical to
    a full sequential scan restricted to the candidates.  Each row of
    ``mask`` must hold at least ``k`` candidates.

    Returns:
        ``(top_indices, top_squared, counts)`` — the ``(b, k)`` corpus
        indices and exact squared distances, plus the ``(b,)`` per-row
        candidate counts (the refined-rows stats counter).
    """
    row_of, col_of = np.nonzero(mask)
    exact_flat = np.empty(row_of.size)
    step = max(1, block_entries // max(1, corpus.shape[1]))
    for flat_start in range(0, row_of.size, step):
        piece = slice(flat_start, flat_start + step)
        gaps = corpus[col_of[piece]] - rows[row_of[piece]]
        exact_flat[piece] = np.sum(np.square(gaps), axis=1)

    # Scatter into a padded (b, width) table.  np.nonzero emits the
    # columns of each row in ascending order, so a *stable* argsort on
    # the exact distances reproduces the sequential tie-break (equal
    # distances resolve to the lower corpus index).
    counts = mask.sum(axis=1)
    width = int(counts.max())
    position = np.arange(row_of.size) - (np.cumsum(counts) - counts)[row_of]
    exact = np.full((rows.shape[0], width), np.inf)
    candidates = np.zeros((rows.shape[0], width), dtype=np.intp)
    exact[row_of, position] = exact_flat
    candidates[row_of, position] = col_of

    order = np.argsort(exact, axis=1, kind="stable")[:, :k]
    top_indices = np.take_along_axis(candidates, order, axis=1)
    top_squared = np.take_along_axis(exact, order, axis=1)
    return top_indices, top_squared, counts

# Width of the process-wide shared executor.  Beyond the CPU count,
# extra GIL-releasing numpy threads stop helping; the floor keeps some
# overlap available on small machines and the cap bounds idle threads
# on large ones.  Threads are created lazily by the executor, so an
# unused width costs nothing.
_POOL_WIDTH = min(32, max(4, os.cpu_count() or 1))

_POOL_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None


def _shared_executor() -> ThreadPoolExecutor:
    """The process-lifetime thread pool all batch calls share."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=_POOL_WIDTH, thread_name_prefix="repro-batch"
            )
        return _POOL


def validate_n_workers(n_workers: int | None) -> int | None:
    """Validate the optional thread-pool width (``None`` = sequential)."""
    if n_workers is None:
        return None
    if n_workers < 1:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    return int(n_workers)


def sequential_query_batch(index, queries, k: int) -> BatchKnnResult:
    """Answer a batch by looping ``index.query`` over the rows."""
    array = validate_queries(queries, index.dimensionality)
    k = validate_k(k, index.n_points)
    results = tuple(index.query(row, k=k) for row in array)
    return _package(results)


def _query_rows(index, rows, k: int) -> list[KnnResult]:
    return [index.query(row, k=k) for row in rows]


def threaded_query_batch(
    index, queries, k: int, n_workers: int
) -> BatchKnnResult:
    """Answer a batch by fanning row chunks out over the shared pool."""
    array = validate_queries(queries, index.dimensionality)
    k = validate_k(k, index.n_points)
    rows = array.shape[0]
    if rows == 0:
        return _package(())
    # Never spawn more chunks than rows: a 3-row batch with
    # n_workers=16 runs as 3 single-row tasks, not 13 idle ones.
    width = min(n_workers, rows)
    if width == 1:
        return _package(tuple(index.query(row, k=k) for row in array))
    bounds = [rows * i // width for i in range(width + 1)]
    pool = _shared_executor()
    futures = [
        pool.submit(_query_rows, index, array[bounds[i] : bounds[i + 1]], k)
        for i in range(width)
    ]
    results = tuple(
        itertools.chain.from_iterable(f.result() for f in futures)
    )
    return _package(results)


def dispatch_query_batch(
    index, queries, k: int, n_workers: int | None
) -> BatchKnnResult:
    """Route to the sequential or threaded strategy by ``n_workers``."""
    n_workers = validate_n_workers(n_workers)
    if n_workers is None or n_workers == 1:
        return sequential_query_batch(index, queries, k)
    return threaded_query_batch(index, queries, k, n_workers)


def _package(results: tuple[KnnResult, ...]) -> BatchKnnResult:
    return BatchKnnResult(
        results=results, stats=combine_stats(r.stats for r in results)
    )
