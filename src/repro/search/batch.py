"""Shared batch-query execution for the exact k-NN indexes.

Every exact index exposes ``query_batch(queries, k)`` returning a
:class:`~repro.search.results.BatchKnnResult`.  Two execution strategies
live here:

* :func:`sequential_query_batch` — loop ``index.query`` over the rows.
  The default for the tree-based indexes, whose traversal state
  (recursion, priority queues) does not vectorize.
* :func:`threaded_query_batch` — split the rows into contiguous chunks
  and fan the chunks out over a process-lifetime shared
  ``ThreadPoolExecutor``.  Queries are read-only over a static corpus,
  so they are trivially safe to run concurrently; the leaf scans and
  bound computations are numpy calls that release the GIL, which is
  where the overlap comes from.  The executor is created once and
  reused — a serving process answering thousands of small batches must
  not pay thread spawn/teardown per call — and the effective fan-out is
  capped at the number of query rows, so tiny batches never produce
  idle workers.  Requests wider than the shared pool
  (:data:`_POOL_WIDTH` threads) still complete; concurrency simply
  saturates at the pool width.

The matrix-friendly indexes (brute force, VA-file) override
``query_batch`` with truly vectorized implementations instead — see
:mod:`repro.search.bruteforce` and :mod:`repro.search.vafile`.

Both strategies preserve query order and produce results bit-identical
to calling ``query`` row by row; the batch API never trades accuracy
for throughput.

This module also hosts the two vectorized scan primitives those
matrix-friendly paths share:

* :class:`GramScanner` — blocked float32/float64 Gram-expansion scoring
  of query rows against a static row matrix, behind a ``dtype`` knob,
  with a conservative per-query error margin.  The scores only *select*
  candidates; exact arithmetic stays with the caller, which is what
  makes the memory-lean float32 path safe.  Brute force uses it over
  the full corpus; the projection-screened index reuses it as its
  stage-1 reduced-space kernel.
* :func:`refine_masked_candidates` — exact float64 top-k over per-row
  candidate masks, with the stable tie-break (equal distances resolve
  to the lower corpus index) every index in the family guarantees.
  Two interchangeable kernels produce bit-identical results: the
  ``"gather"`` kernel recomputes every masked candidate with per-row
  float64 gathers (optimal when masks are a few rows wide), and the
  ``"gemm"`` kernel compacts the survivors of a block of queries into
  fixed-shape tiles, scores them through one blocked float64 Gram
  multiply, and recomputes exactly only the provable top-k contenders
  (optimal when masks are wide, as in a screened scan).  The tiles are
  zero-padded to constant BLAS shapes — ``_TILE_ROWS`` query rows by
  ``_TILE_COLS`` candidate columns — so the kernel's per-query behavior
  never depends on how the caller batched its queries.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    combine_stats,
    validate_k,
    validate_queries,
)

# Default block size for the exact-refinement gather, in distance-matrix
# entries: keeps the flat scratch arrays around 32 MB.
_REFINE_BLOCK_ENTRIES = 4_194_304

# Beyond this squared magnitude a float32 expansion can overflow to inf,
# so the scanner falls back to float64 regardless of the requested dtype
# — soundness beats the caller's bytes preference.
_F32_MAGNITUDE_LIMIT = 1e30

GRAM_DTYPES = ("auto", "float32", "float64")

REFINE_KERNELS = ("gather", "gemm")

# Fixed tile shape for the fused gemm refine.  Every BLAS multiply runs
# on exactly (_TILE_ROWS, d) @ (d, _TILE_COLS) regardless of how many
# query rows or candidate columns actually survive — BLAS kernels pick
# different reduction orders for different shapes, so only constant
# shapes keep query(b=1) and query_batch bit-identical per row.
_TILE_ROWS = 32
_TILE_COLS = 512


class GramScanner:
    """Blocked Gram-expansion scoring of query rows against a matrix.

    One BLAS multiply produces approximate squared Euclidean distances
    for a whole block of query rows at once via
    ``||q - p||^2 = ||q||^2 - 2 q.p + ||p||^2``.  The expansion loses a
    few ulps to cancellation (and, on the float32 path, to reduced
    precision), so :meth:`scores` also returns a per-query margin that
    dominates the combined error: for every entry,
    ``|approx - exact| <= margin`` where ``exact`` is the float64
    subtract-square distance to the stored matrix row.  Callers use the
    scores to *select* candidates and recompute survivors exactly, so
    the lossy fast path never reaches an answer.

    Args:
        matrix: ``(n, d)`` static rows to scan against; float64 or
            float32 (a float32 matrix is scored as stored — its
            quantization is part of the distances the margin covers
            relative to the stored values).
        dtype: ``"auto"`` scores in float32 whenever the squared
            magnitudes stay far from float32 overflow, ``"float32"``
            requests the memory-lean path explicitly (the overflow
            guard still wins — an unsound scan is never produced), and
            ``"float64"`` forces full-precision scoring.
        sq_norms: optional precomputed float64 ``||p||^2`` per row
            (computed here when omitted).
    """

    def __init__(self, matrix, *, dtype: str = "auto", sq_norms=None) -> None:
        self._dtype = validate_gram_dtype(dtype)
        self._matrix = matrix
        if sq_norms is None:
            wide = np.asarray(matrix, dtype=np.float64)
            sq_norms = np.einsum("nd,nd->n", wide, wide)
        self._sq_norms = np.asarray(sq_norms, dtype=np.float64)
        self._max_sq_norm = float(self._sq_norms.max())
        # Lazily materialized shadows, so callers that never take the
        # other path pay nothing.
        self._matrix_f32: np.ndarray | None = None
        self._sq_norms_f32: np.ndarray | None = None
        self._matrix_f64: np.ndarray | None = None

    @property
    def dtype(self) -> str:
        """The requested scoring dtype knob (``auto``/``float32``/``float64``)."""
        return self._dtype

    @property
    def max_sq_norm(self) -> float:
        return self._max_sq_norm

    def uses_float32(self, q_sq: np.ndarray) -> bool:
        """Whether a block with these query magnitudes scores in float32."""
        if self._dtype == "float64":
            return False
        return (
            self._max_sq_norm < _F32_MAGNITUDE_LIMIT
            and float(q_sq.max(initial=0.0)) < _F32_MAGNITUDE_LIMIT
        )

    def scores(
        self, rows: np.ndarray, q_sq: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Score a block of query rows: ``(approx, margin)``.

        ``approx`` is the ``(b, n)`` matrix of approximate squared
        distances in the effective dtype; ``margin`` is the ``(b,)``
        float64 error bound valid for every entry of the matching row.
        """
        d = self._matrix.shape[1]
        if self.uses_float32(q_sq):
            if self._matrix_f32 is None:
                self._matrix_f32 = np.ascontiguousarray(
                    self._matrix, dtype=np.float32
                )
                self._sq_norms_f32 = self._sq_norms.astype(np.float32)
            # In-place expansion: every avoided temporary is a full pass
            # over the (b, n) matrix.
            approx = rows.astype(np.float32) @ self._matrix_f32.T
            approx *= -2.0
            approx += q_sq.astype(np.float32)[:, None]
            approx += self._sq_norms_f32
            margin = 1e-5 * (d + 100.0) * (q_sq + self._max_sq_norm) + 1e-30
        else:
            if self._matrix_f64 is None:
                if self._matrix.dtype == np.float64:
                    self._matrix_f64 = self._matrix
                else:
                    self._matrix_f64 = np.ascontiguousarray(
                        self._matrix, dtype=np.float64
                    )
            approx = rows @ self._matrix_f64.T
            approx *= -2.0
            approx += q_sq[:, None]
            approx += self._sq_norms
            margin = 1e-14 * (d + 100.0) * (q_sq + self._max_sq_norm) + 1e-30
        return approx, margin


def validate_gram_dtype(dtype: str) -> str:
    """Validate the Gram-expansion scoring knob."""
    if dtype not in GRAM_DTYPES:
        raise ValueError(
            f"dtype must be one of {GRAM_DTYPES}, got {dtype!r}"
        )
    return dtype


def validate_refine_kernel(kernel: str) -> str:
    """Validate the exact-refinement kernel knob."""
    if kernel not in REFINE_KERNELS:
        raise ValueError(
            f"refine_kernel must be one of {REFINE_KERNELS}, got {kernel!r}"
        )
    return kernel


def pad_rows(block: np.ndarray, size: int) -> np.ndarray:
    """Zero-pad an array along axis 0 up to exactly ``size`` rows.

    BLAS-shape discipline: float matmuls feeding pruning or hashing
    decisions must always run on the same shape, so short final blocks
    are padded with zero rows (padding output is sliced away, never
    read).  A full block is returned as-is.
    """
    if block.shape[0] == size:
        return block
    padded = np.zeros((size,) + block.shape[1:], dtype=block.dtype)
    padded[: block.shape[0]] = block
    return padded


def refine_masked_candidates(
    corpus: np.ndarray,
    rows: np.ndarray,
    mask: np.ndarray,
    k: int,
    *,
    block_entries: int = _REFINE_BLOCK_ENTRIES,
    kernel: str = "gather",
    sq_norms: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact float64 top-k over per-row candidate masks.

    Both kernels return neighbors, distances, and tie-breaks
    bit-identical to a full sequential scan restricted to the
    candidates — every *answered* distance is produced by the same
    subtract-square arithmetic the sequential ``query`` paths use:

    * ``"gather"`` recomputes every masked candidate with per-row
      float64 gathers in bounded chunks (tie-heavy corpora can make the
      mask wide).  Optimal when masks are only a few entries wide.
    * ``"gemm"`` compacts each :data:`_TILE_ROWS`-row block's union of
      candidate columns into one gathered tile, scores it through
      fixed-shape ``(_TILE_ROWS, d) @ (d, _TILE_COLS)`` float64 Gram
      multiplies, and recomputes exactly only the rows that the
      Gram scores — widened by a conservative error margin — prove can
      reach the top ``k``.  The margin makes the narrowing lossless, so
      the exact recompute sees a superset of the true top ``k`` and the
      stable tie-break is preserved.  Optimal when masks are wide, as
      in a screened scan at a loose pruning fraction.

    Rows with fewer than ``k`` candidates (including zero) are
    tolerated: missing tail slots report index ``-1`` and distance
    ``+inf``, and ``counts`` carries the per-row truth.

    Args:
        sq_norms: optional precomputed float64 ``||p||^2`` per corpus
            row, used only by the gemm kernel (computed per tile when
            omitted, which keeps a memory-mapped corpus lazy).

    Returns:
        ``(top_indices, top_squared, counts)`` — the ``(b, k)`` corpus
        indices and exact squared distances, plus the ``(b,)`` per-row
        candidate counts (the refined-rows stats counter).
    """
    validate_refine_kernel(kernel)
    counts = mask.sum(axis=1)
    if kernel == "gemm":
        b = rows.shape[0]
        top_indices = np.full((b, k), -1, dtype=np.intp)
        top_squared = np.full((b, k), np.inf)
        for start in range(0, b, _TILE_ROWS):
            stop = min(start + _TILE_ROWS, b)
            idx, sq = _refine_gemm_block(
                corpus,
                rows[start:stop],
                mask[start:stop],
                k,
                block_entries,
                sq_norms,
            )
            top_indices[start:stop] = idx
            top_squared[start:stop] = sq
        return top_indices, top_squared, counts
    row_of, col_of = np.nonzero(mask)
    exact_flat = _exact_flat_distances(
        corpus, rows, row_of, col_of, block_entries
    )
    top_indices, top_squared = _stable_topk(
        row_of, col_of, exact_flat, rows.shape[0], k
    )
    return top_indices, top_squared, counts


def _exact_flat_distances(
    corpus: np.ndarray,
    rows: np.ndarray,
    row_of: np.ndarray,
    col_of: np.ndarray,
    block_entries: int,
) -> np.ndarray:
    """Exact float64 squared distances for flat (query, corpus) pairs.

    The one arithmetic both refine kernels answer with: subtract, square,
    ``np.sum`` over the last axis — identical to the sequential ``query``
    paths, computed in bounded chunks to cap scratch memory.
    """
    exact_flat = np.empty(row_of.size)
    step = max(1, block_entries // max(1, corpus.shape[1]))
    for flat_start in range(0, row_of.size, step):
        piece = slice(flat_start, flat_start + step)
        gaps = corpus[col_of[piece]] - rows[row_of[piece]]
        exact_flat[piece] = np.sum(np.square(gaps), axis=1)
    return exact_flat


def _stable_topk(
    row_of: np.ndarray,
    col_of: np.ndarray,
    exact_flat: np.ndarray,
    b: int,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row stable top-k of flat exact distances.

    Scatters into a padded ``(b, width)`` table.  ``np.nonzero`` emits
    the columns of each row in ascending order, so a *stable* argsort on
    the exact distances reproduces the sequential tie-break (equal
    distances resolve to the lower corpus index).  Rows with fewer than
    ``k`` entries pad with index ``-1`` / distance ``+inf``.
    """
    counts = np.bincount(row_of, minlength=b)
    width = max(int(counts.max(initial=0)), k)
    position = np.arange(row_of.size) - (np.cumsum(counts) - counts)[row_of]
    exact = np.full((b, width), np.inf)
    candidates = np.full((b, width), -1, dtype=np.intp)
    exact[row_of, position] = exact_flat
    candidates[row_of, position] = col_of

    order = np.argsort(exact, axis=1, kind="stable")[:, :k]
    top_indices = np.take_along_axis(candidates, order, axis=1)
    top_squared = np.take_along_axis(exact, order, axis=1)
    return top_indices, top_squared


def _refine_gemm_block(
    corpus: np.ndarray,
    rows: np.ndarray,
    mask: np.ndarray,
    k: int,
    block_entries: int,
    sq_norms: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused gemm refine for one block of at most ``_TILE_ROWS`` rows.

    The union of the block's candidate columns is gathered from the
    corpus exactly once and scored against all rows through fixed-shape
    float64 Gram multiplies.  The Gram expansion loses a few ulps to
    cancellation, so the scores only *narrow*: any candidate whose
    approximate distance lies within ``2 * margin`` of the row's k-th
    smallest approximate distance might belong to the exact top k (the
    margin bounds ``|approx - exact|``, so the true k-th distance is at
    most ``kth_approx + margin`` and every true top-k member scores at
    most ``kth_approx + 2 * margin``).  The narrowed superset — ties
    included — is recomputed with the exact subtract-square arithmetic,
    which makes the result bit-identical to the gather kernel.
    """
    b = rows.shape[0]
    union = np.flatnonzero(mask.any(axis=0))
    if union.size == 0:
        return (
            np.full((b, k), -1, dtype=np.intp),
            np.full((b, k), np.inf),
        )
    cand = mask[:, union]
    tile = np.ascontiguousarray(corpus[union], dtype=np.float64)
    d = tile.shape[1]
    if sq_norms is None:
        u_sq = np.einsum("ud,ud->u", tile, tile)
    else:
        u_sq = np.asarray(sq_norms, dtype=np.float64)[union]
    q_pad = pad_rows(rows, _TILE_ROWS)
    q_sq = np.einsum("qd,qd->q", rows, rows)
    q_sq_pad = pad_rows(q_sq[:, None], _TILE_ROWS)

    approx = np.empty((b, union.size))
    for col_start in range(0, union.size, _TILE_COLS):
        col_stop = min(col_start + _TILE_COLS, union.size)
        block = pad_rows(tile[col_start:col_stop], _TILE_COLS)
        block_sq = pad_rows(
            u_sq[col_start:col_stop, None], _TILE_COLS
        )
        scores = q_pad @ block.T
        scores *= -2.0
        scores += q_sq_pad
        scores += block_sq.T
        approx[:, col_start:col_stop] = scores[:b, : col_stop - col_start]

    # Same float64 Gram margin form as GramScanner: dominates the
    # expansion's cancellation error for every entry of the row.
    margin = 1e-14 * (d + 100.0) * (q_sq + float(u_sq.max())) + 1e-30
    approx[~cand] = np.inf
    if union.size >= k:
        kth = np.partition(approx, k - 1, axis=1)[:, k - 1]
    else:
        kth = np.full(b, np.inf)
    limit = np.where(np.isfinite(kth), kth + 2.0 * margin, np.inf)
    # AND with the candidate mask: rows short of k candidates have an
    # infinite limit, and inf <= inf is True for the non-candidates.
    narrowed = cand & (approx <= limit[:, None])

    row_of, col_of = np.nonzero(narrowed)
    gids = union[col_of]
    exact_flat = _exact_flat_distances(
        corpus, rows, row_of, gids, block_entries
    )
    return _stable_topk(row_of, gids, exact_flat, b, k)

# Width of the process-wide shared executor.  Beyond the CPU count,
# extra GIL-releasing numpy threads stop helping; the floor keeps some
# overlap available on small machines and the cap bounds idle threads
# on large ones.  Threads are created lazily by the executor, so an
# unused width costs nothing.
_POOL_WIDTH = min(32, max(4, os.cpu_count() or 1))

_POOL_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None


def _shared_executor() -> ThreadPoolExecutor:
    """The process-lifetime thread pool all batch calls share."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=_POOL_WIDTH, thread_name_prefix="repro-batch"
            )
        return _POOL


def validate_n_workers(n_workers: int | None) -> int | None:
    """Validate the optional thread-pool width (``None`` = sequential)."""
    if n_workers is None:
        return None
    if n_workers < 1:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    return int(n_workers)


def sequential_query_batch(index, queries, k: int) -> BatchKnnResult:
    """Answer a batch by looping ``index.query`` over the rows."""
    array = validate_queries(queries, index.dimensionality)
    k = validate_k(k, index.n_points)
    results = tuple(index.query(row, k=k) for row in array)
    return _package(results)


def _query_rows(index, rows, k: int) -> list[KnnResult]:
    return [index.query(row, k=k) for row in rows]


def threaded_query_batch(
    index, queries, k: int, n_workers: int
) -> BatchKnnResult:
    """Answer a batch by fanning row chunks out over the shared pool."""
    array = validate_queries(queries, index.dimensionality)
    k = validate_k(k, index.n_points)
    rows = array.shape[0]
    if rows == 0:
        return _package(())
    # Never spawn more chunks than rows: a 3-row batch with
    # n_workers=16 runs as 3 single-row tasks, not 13 idle ones.
    width = min(n_workers, rows)
    if width == 1:
        return _package(tuple(index.query(row, k=k) for row in array))
    bounds = [rows * i // width for i in range(width + 1)]
    pool = _shared_executor()
    futures = [
        pool.submit(_query_rows, index, array[bounds[i] : bounds[i + 1]], k)
        for i in range(width)
    ]
    results = tuple(
        itertools.chain.from_iterable(f.result() for f in futures)
    )
    return _package(results)


def dispatch_query_batch(
    index, queries, k: int, n_workers: int | None
) -> BatchKnnResult:
    """Route to the sequential or threaded strategy by ``n_workers``."""
    n_workers = validate_n_workers(n_workers)
    if n_workers is None or n_workers == 1:
        return sequential_query_batch(index, queries, k)
    return threaded_query_batch(index, queries, k, n_workers)


def _package(results: tuple[KnnResult, ...]) -> BatchKnnResult:
    return BatchKnnResult(
        results=results, stats=combine_stats(r.stats for r in results)
    )
