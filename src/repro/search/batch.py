"""Shared batch-query execution for the exact k-NN indexes.

Every exact index exposes ``query_batch(queries, k)`` returning a
:class:`~repro.search.results.BatchKnnResult`.  Two execution strategies
live here:

* :func:`sequential_query_batch` — loop ``index.query`` over the rows.
  The default for the tree-based indexes, whose traversal state
  (recursion, priority queues) does not vectorize.
* :func:`threaded_query_batch` — fan the rows out over a
  ``ThreadPoolExecutor``.  Queries are read-only over a static corpus,
  so they are trivially safe to run concurrently; the leaf scans and
  bound computations are numpy calls that release the GIL, which is
  where the overlap comes from.

The matrix-friendly indexes (brute force, VA-file) override
``query_batch`` with truly vectorized implementations instead — see
:mod:`repro.search.bruteforce` and :mod:`repro.search.vafile`.

Both strategies preserve query order and produce results bit-identical
to calling ``query`` row by row; the batch API never trades accuracy
for throughput.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    combine_stats,
    validate_k,
    validate_queries,
)


def validate_n_workers(n_workers: int | None) -> int | None:
    """Validate the optional thread-pool width (``None`` = sequential)."""
    if n_workers is None:
        return None
    if n_workers < 1:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    return int(n_workers)


def sequential_query_batch(index, queries, k: int) -> BatchKnnResult:
    """Answer a batch by looping ``index.query`` over the rows."""
    array = validate_queries(queries, index.dimensionality)
    k = validate_k(k, index.n_points)
    results = tuple(index.query(row, k=k) for row in array)
    return _package(results)


def threaded_query_batch(
    index, queries, k: int, n_workers: int
) -> BatchKnnResult:
    """Answer a batch by fanning rows out over a thread pool."""
    array = validate_queries(queries, index.dimensionality)
    k = validate_k(k, index.n_points)
    if array.shape[0] == 0:
        return _package(())
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        results = tuple(pool.map(lambda row: index.query(row, k=k), array))
    return _package(results)


def dispatch_query_batch(
    index, queries, k: int, n_workers: int | None
) -> BatchKnnResult:
    """Route to the sequential or threaded strategy by ``n_workers``."""
    n_workers = validate_n_workers(n_workers)
    if n_workers is None or n_workers == 1:
        return sequential_query_batch(index, queries, k)
    return threaded_query_batch(index, queries, k, n_workers)


def _package(results: tuple[KnnResult, ...]) -> BatchKnnResult:
    return BatchKnnResult(
        results=results, stats=combine_stats(r.stats for r in results)
    )
