"""The Pyramid-Technique index.

Berchtold, Böhm & Kriegel (SIGMOD 1998): partition the unit cube into
``2d`` pyramids meeting at the center, map every point to a single
scalar — pyramid id plus the point's *height* within its pyramid — and
index the scalars with a one-dimensional ordered structure.  Unlike
space-partitioning trees, the mapping's effectiveness does not collapse
as ``d`` grows, which made it the standard high-dimensional range-query
index of the paper's era (it shares a lineage with the X-tree cited as
reference [4]).

This implementation keeps the classical design:

* points are affinely mapped into ``[0, 1]^d`` using the corpus extent;
* pyramid ``i`` (for ``i < d``) collects points whose dominant deviation
  from the center is negative along dimension ``i``; pyramid ``i + d``
  the positive side; the height is ``|x_i - 0.5|``;
* the 1-d index is a sorted array searched with ``searchsorted`` (the
  moral equivalent of the original's B+-tree);
* a range query visits only the pyramids the query box intersects and,
  within each, only the height interval the box can reach.

Exact k-NN is answered on top of the range machinery by growing the
radius geometrically from the nearest candidate until ``k`` results are
confirmed (standard practice; the pyramid mapping itself only supports
ranges).
"""

from __future__ import annotations

import numpy as np

from repro.search.batch import dispatch_query_batch
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot


class PyramidIndex:
    """Pyramid-technique index over a static corpus (Euclidean queries).

    Args:
        points: ``(n, d)`` corpus.
    """

    # Snapshot kind: read by the registry, snapshot dispatch, and
    # the :class:`repro.search.Index` protocol.
    kind = "pyramid"

    def __init__(self, points) -> None:
        self._points = validate_corpus(points)
        n, d = self._points.shape

        lower = self._points.min(axis=0)
        span = self._points.max(axis=0) - lower
        span[span == 0.0] = 1.0
        self._lower = lower
        self._span = span

        normalized = self._normalize(self._points)
        pyramid_ids, heights = self._pyramid_values(normalized)

        # CSR layout: one corpus-row permutation ordered by (pyramid,
        # height) — lexsort is stable, so equal heights keep ascending
        # corpus index — plus pyramid start offsets into it.
        order = np.lexsort((heights, pyramid_ids))
        self._member_order = order
        self._height_keys = heights[order]
        self._starts = np.searchsorted(
            pyramid_ids[order], np.arange(2 * d + 1)
        ).astype(np.int64)
        self._set_pyramid_views()

    def _set_pyramid_views(self) -> None:
        """Per pyramid: member rows sorted by height, and those heights."""
        starts = self._starts
        self._members = [
            self._member_order[starts[p]:starts[p + 1]]
            for p in range(starts.size - 1)
        ]
        self._heights = [
            self._height_keys[starts[p]:starts[p + 1]]
            for p in range(starts.size - 1)
        ]

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot)."""
        write_snapshot(
            path,
            self.kind,
            {
                "points": self._points,
                "lower": self._lower,
                "span": self._span,
                "member_order": self._member_order,
                "height_keys": self._height_keys,
                "starts": self._starts,
            },
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "PyramidIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately."""
        data = read_snapshot(
            path,
            cls.kind,
            required=(
                "points", "lower", "span", "member_order", "height_keys",
                "starts",
            ),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index._lower = data["lower"]
        index._span = data["span"]
        index._member_order = data["member_order"].astype(np.intp, copy=False)
        index._height_keys = data["height_keys"]
        index._starts = data["starts"]
        index._set_pyramid_views()
        return index

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def _normalize(self, rows: np.ndarray) -> np.ndarray:
        return (rows - self._lower) / self._span

    @staticmethod
    def _pyramid_values(normalized: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(pyramid id, height) for every normalized row."""
        deviations = normalized - 0.5
        dominant = np.argmax(np.abs(deviations), axis=1)
        rows = np.arange(normalized.shape[0])
        signs = deviations[rows, dominant] >= 0.0
        d = normalized.shape[1]
        pyramid_ids = dominant + signs * d
        heights = np.abs(deviations[rows, dominant])
        return pyramid_ids.astype(np.int64), heights

    def _query_intervals(
        self, low: np.ndarray, high: np.ndarray
    ) -> list[tuple[int, float, float]]:
        """Pyramids intersecting a normalized box, with height intervals.

        For pyramid ``i`` (negative side of dimension ``i``) the points
        inside the box must have ``height = 0.5 - x_i`` within the box's
        reach along dimension ``i``, and a point's height along its
        *dominant* dimension bounds its deviation along every other
        dimension — which yields the classical interval

            h_lo = max(0, 0.5 - high_i, min-over-j max(0, |center-box|_j))
            h_hi = 0.5 - low_i

        (mirrored for the positive side).  We use the simpler sufficient
        bounds of the original paper: a pyramid intersects the box if the
        box reaches its side of the center, and the height interval is
        clipped by how far the box extends along the pyramid's dimension.
        """
        d = low.size
        center_gap = np.maximum(
            np.maximum(low - 0.5, 0.0), np.maximum(0.5 - high, 0.0)
        )
        min_gap = float(center_gap.max())  # every inside point deviates
        # at least this much along *some* dimension, so its height (the
        # max deviation) is at least min_gap... for the dominant one.
        intervals = []
        for i in range(d):
            # Side tests are non-strict: a point exactly at the center
            # (height 0) lives in *some* pyramid, and a box touching
            # only the center must still reach it there.
            if low[i] <= 0.5:
                h_hi = 0.5 - low[i]
                h_lo = max(0.5 - high[i], 0.0, min_gap)
                if h_lo <= h_hi:
                    intervals.append((i, h_lo, h_hi))
            if high[i] >= 0.5:
                h_hi = high[i] - 0.5
                h_lo = max(low[i] - 0.5, 0.0, min_gap)
                if h_lo <= h_hi:
                    intervals.append((i + d, h_lo, h_hi))
        return intervals

    def range_query(self, query, radius: float) -> KnnResult:
        """All corpus points within ``radius`` of ``query``.

        Only the pyramids (and height slices) the query box intersects
        are scanned; every surviving candidate is verified exactly.
        """
        vector = validate_query(query, self.dimensionality)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        stats = QueryStats()
        radius_sq = radius * radius

        low = self._normalize((vector - radius).reshape(1, -1))[0]
        high = self._normalize((vector + radius).reshape(1, -1))[0]
        found: list[tuple[float, int]] = []
        for pyramid_id, h_lo, h_hi in self._query_intervals(low, high):
            heights = self._heights[pyramid_id]
            start = int(np.searchsorted(heights, h_lo - 1e-12, side="left"))
            stop = int(np.searchsorted(heights, h_hi + 1e-12, side="right"))
            stats.nodes_visited += 1
            candidates = self._members[pyramid_id][start:stop]
            if candidates.size == 0:
                continue
            gaps = self._points[candidates] - vector
            squared = np.sum(np.square(gaps), axis=1)
            stats.points_scanned += int(candidates.size)
            for idx, d2 in zip(candidates, squared):
                if d2 <= radius_sq:
                    found.append((float(d2), int(idx)))
        stats.nodes_pruned = self.n_points - stats.points_scanned
        found.sort()
        neighbors = tuple(
            Neighbor(index=idx, distance=float(np.sqrt(d2))) for d2, idx in found
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k-NN by geometric radius expansion over range scans.

        Each expansion widens the pyramid/height intervals and scans only
        the candidates not already examined: a point's exact distance is
        computed (and counted in ``points_scanned``) at most once, no
        matter how many rounds the expansion takes.
        """
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        stats = QueryStats()

        # inf = not yet examined; exact squared distance once scanned.
        distance_sq = np.full(self.n_points, np.inf)

        # Starting radius: reach the k-th candidate along the pyramid
        # scalar ordering near the query, or a span-based guess.
        radius = float(np.min(self._span)) / 16.0
        for _ in range(64):
            radius_sq = radius * radius
            low = self._normalize((vector - radius).reshape(1, -1))[0]
            high = self._normalize((vector + radius).reshape(1, -1))[0]
            for pyramid_id, h_lo, h_hi in self._query_intervals(low, high):
                heights = self._heights[pyramid_id]
                start = int(np.searchsorted(heights, h_lo - 1e-12, side="left"))
                stop = int(np.searchsorted(heights, h_hi + 1e-12, side="right"))
                stats.nodes_visited += 1
                candidates = self._members[pyramid_id][start:stop]
                fresh = candidates[np.isinf(distance_sq[candidates])]
                if fresh.size == 0:
                    continue
                gaps = self._points[fresh] - vector
                distance_sq[fresh] = np.sum(np.square(gaps), axis=1)
                stats.points_scanned += int(fresh.size)
            # Exactness guard: a confirmed k-th distance within the
            # searched radius cannot be beaten by any unscanned point
            # (range scans are complete within their radius).
            within = np.flatnonzero(distance_sq <= radius_sq)
            if within.size >= k:
                order = within[
                    np.argsort(distance_sq[within], kind="stable")
                ][:k]
                neighbors = tuple(
                    Neighbor(
                        index=int(idx),
                        distance=float(np.sqrt(distance_sq[idx])),
                    )
                    for idx in order
                )
                stats.nodes_pruned = self.n_points - stats.points_scanned
                return KnnResult(neighbors=neighbors, stats=stats)
            radius *= 2.0
        raise RuntimeError(
            "pyramid k-NN radius expansion did not converge; corpus extent "
            "may be degenerate"
        )

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """k-NN for every row of ``queries``; bit-identical to looping
        :meth:`query`.  ``n_workers`` > 1 fans the rows out over a
        thread pool (radius expansion does not vectorize)."""
        return dispatch_query_batch(self, queries, k, n_workers)


# Deprecated alias of ``PyramidIndex.kind``; kept one release for
# external callers that imported the module constant.
_SNAPSHOT_KIND = PyramidIndex.kind
