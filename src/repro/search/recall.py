"""Recall measurement against the exact linear-scan reference.

Every index in this package answers queries over a corpus it holds as
``_points``; :func:`recall_against_exact` builds a
:class:`~repro.search.bruteforce.BruteForceIndex` over that same corpus
and reports the mean fraction of true k-nearest neighbors the index
retrieved over a query batch.

The function serves two different contracts:

* For the approximate index (LSH), recall is a *metric* — a float in
  ``[0, 1]`` that parameter sweeps tune against scan cost.
* For the exact indexes (brute force, trees, VA-file, iDistance, iGrid,
  and the projection-screened index), recall is a *contract* — anything
  below 1.0 is a correctness bug, not a quality trade-off.  Passing
  ``exact=True`` turns a shortfall into :class:`ExactnessViolation`
  (an ``AssertionError`` subclass, so plain ``assert``-style test
  harnesses and production sanity sweeps both trip on it) instead of
  returning a number a caller might average away.
"""

from __future__ import annotations

import numpy as np


class ExactnessViolation(AssertionError):
    """An index that promises exact answers returned recall below 1.0."""


def recall_against_exact(
    index,
    queries,
    k: int = 3,
    *,
    n_workers: int | None = None,
    exact: bool = False,
    reference=None,
) -> float:
    """Mean fraction of true k-NN retrieved by ``index`` over ``queries``.

    Args:
        index: any index from this package (must expose ``_points`` and
            ``query_batch``).
        queries: ``(q, d)`` batch, or a single ``(d,)`` vector.
        k: neighbors per query.
        n_workers: batch fan-out applied to both sides of the comparison
            (the exact reference and ``index``), so callers control the
            batch width end to end.
        exact: when True, a recall below 1.0 raises
            :class:`ExactnessViolation` naming the worst query instead of
            returning — exactness is a contract, not a metric.
        reference: optional prebuilt exact index over the same corpus.
            Parameter sweeps (probes x tables x recall) audit many
            configurations against one ground truth; rebuilding the
            brute-force reference per configuration would dominate the
            sweep, so callers may build it once and pass it in.

    Returns:
        Mean recall in ``[0, 1]`` (always 1.0 when ``exact=True``
        returns at all).
    """
    from repro.search.bruteforce import BruteForceIndex

    if reference is None:
        reference = BruteForceIndex(index._points)
    batch = np.asarray(queries, dtype=np.float64)
    if batch.ndim == 1:
        batch = batch.reshape(1, -1)
    truth_batch = reference.query_batch(batch, k=k, n_workers=n_workers)
    mine_batch = index.query_batch(batch, k=k, n_workers=n_workers)
    recalls = [
        len(set(truth.indices.tolist()) & set(mine.indices.tolist())) / k
        for truth, mine in zip(truth_batch.results, mine_batch.results)
    ]
    mean = float(np.mean(recalls))
    if exact and mean < 1.0:
        worst = int(np.argmin(recalls))
        raise ExactnessViolation(
            f"{type(index).__name__} promises exact answers but reached "
            f"recall {mean:.6f} (worst query row {worst}: "
            f"{recalls[worst]:.6f}) at k={k}"
        )
    return mean
