"""Locality-sensitive hashing (p-stable / E2LSH) for approximate k-NN.

The exact indexes in this package all degrade to a scan in high
dimensionality (Section 1.1); LSH is the classical way to trade accuracy
for speed *without* reducing the data.  Each hash function is
``h(x) = floor((a . x + b) / w)`` with Gaussian ``a`` (2-stable for the
Euclidean metric); ``n_hashes`` functions are concatenated per table and
``n_tables`` tables are probed per query.  Candidates from the probed
buckets are ranked by exact distance.

The tables live in CSR-style arrays rather than dicts of Python tuples:
per table a ``(B, n_hashes)`` matrix of the distinct bucket keys in
lexicographic order, bucket start offsets, and one corpus-row permutation
grouped by bucket.  The fill is a single matmul over all tables followed
by one ``lexsort`` per table; a query finds its bucket with ``n_hashes``
binary-search range narrowings.  Arrays also mean snapshots
(:mod:`repro.search.snapshot`) load with zero reconstruction.

Results are **approximate**: a true neighbor hashed into a different
bucket in every table is missed.  The comparison benches measure the
recall/work trade-off against the exact indexes — and against the
paper's alternative of reducing first and searching exactly.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.search.batch import dispatch_query_batch
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot

_SNAPSHOT_KIND = "lsh"


class LshIndex:
    """E2LSH-style approximate k-NN index.

    Args:
        points: ``(n, d)`` corpus.
        n_tables: independent hash tables probed per query.
        n_hashes: hash functions concatenated per table (bucket key
            length); more hashes = smaller buckets = faster but lower
            recall.
        bucket_width: the quantization width ``w``; should be on the
            order of the nearest-neighbor distances of interest.
        seed: RNG seed for the hash functions.
    """

    def __init__(
        self,
        points,
        n_tables: int = 8,
        n_hashes: int = 4,
        bucket_width: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_tables < 1 or n_hashes < 1:
            raise ValueError("n_tables and n_hashes must be positive")
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self._points = validate_corpus(points)
        self.n_tables = n_tables
        self.n_hashes = n_hashes
        self.bucket_width = bucket_width

        rng = np.random.default_rng(seed)
        d = self.dimensionality
        # Projections: (n_tables, n_hashes, d); offsets in [0, w).
        self._projections = rng.normal(size=(n_tables, n_hashes, d))
        self._offsets = rng.uniform(0.0, bucket_width, size=(n_tables, n_hashes))

        self._fill_tables()

    def _fill_tables(self) -> None:
        """One matmul + one lexsort per table replaces the per-point loop.

        For each table the corpus keys are sorted lexicographically
        (stable, so rows within a bucket stay in ascending corpus order)
        and run boundaries mark the distinct buckets — the classic
        sort-based CSR group-by.
        """
        n = self.n_points
        keys = self._bucket_keys(self._points)  # (n, n_tables, n_hashes)
        self._table_keys: list[np.ndarray] = []
        self._table_starts: list[np.ndarray] = []
        self._table_members: list[np.ndarray] = []
        for t in range(self.n_tables):
            table_keys = keys[:, t, :]
            # When the per-column key ranges fit, pack each row into one
            # int64 with a monotone lexicographic encoding so a single-key
            # argsort replaces the multi-pass lexsort; both orderings are
            # identical (stable, ties to ascending corpus index).
            kmin = table_keys.min(axis=0)
            kmax = table_keys.max(axis=0)
            spans = [int(hi - lo) + 1 for lo, hi in zip(kmin, kmax)]
            total = 1
            for span in spans:
                total *= span
            if total <= 2**62:
                packed = table_keys[:, 0] - kmin[0]
                for h in range(1, self.n_hashes):
                    packed = packed * spans[h] + (table_keys[:, h] - kmin[h])
                order = np.argsort(packed, kind="stable")
                sorted_packed = packed[order]
                boundary = np.r_[
                    True, sorted_packed[1:] != sorted_packed[:-1]
                ]
            else:
                # lexsort's last key is primary: feed columns reversed so
                # rows sort lexicographically by hash position 0, 1, ...
                order = np.lexsort(table_keys.T[::-1])
                sorted_wide = table_keys[order]
                boundary = np.r_[
                    True, np.any(sorted_wide[1:] != sorted_wide[:-1], axis=1)
                ]
            sorted_keys = table_keys[order]
            starts = np.flatnonzero(boundary)
            self._table_keys.append(np.ascontiguousarray(sorted_keys[starts]))
            self._table_starts.append(np.r_[starts, n].astype(np.int64))
            self._table_members.append(order.astype(np.intp, copy=False))

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def _bucket_keys(self, rows: np.ndarray) -> np.ndarray:
        """``(m, n_tables, n_hashes)`` bucket key of every row.

        One matmul against all tables' projections at once; build and
        query go through this same arithmetic, so a corpus point and an
        identical query always land in the same bucket.
        """
        single = rows.ndim == 1
        if single:
            rows = rows.reshape(1, -1)
        flat = self._projections.reshape(-1, self.dimensionality)
        projected = rows @ flat.T  # (m, n_tables * n_hashes)
        quantized = np.floor(
            (projected + self._offsets.reshape(1, -1)) / self.bucket_width
        ).astype(np.int64)
        return quantized.reshape(rows.shape[0], self.n_tables, self.n_hashes)

    def _bucket_slice(self, t: int, key: np.ndarray) -> tuple[int, int] | None:
        """``[start, stop)`` of ``key``'s bucket in table ``t``, if any.

        The distinct-key matrix is in lexicographic order, so the bucket
        is located by narrowing a row range with two binary searches per
        hash position — no dict, nothing to rebuild at load time.
        """
        uniq = self._table_keys[t]
        lo, hi = 0, uniq.shape[0]
        for h in range(self.n_hashes):
            column = uniq[lo:hi, h]
            value = key[h]
            left = int(np.searchsorted(column, value, side="left"))
            right = int(np.searchsorted(column, value, side="right"))
            lo, hi = lo + left, lo + right
            if lo == hi:
                return None
        starts = self._table_starts[t]
        return int(starts[lo]), int(starts[lo + 1])

    def candidates(self, query) -> np.ndarray:
        """Union of corpus indices sharing a bucket with the query."""
        vector = validate_query(query, self.dimensionality)
        keys = self._bucket_keys(vector.reshape(1, -1))[0]
        chunks: list[np.ndarray] = []
        for t in range(self.n_tables):
            found = self._bucket_slice(t, keys[t])
            if found is not None:
                chunks.append(self._table_members[t][found[0]:found[1]])
        if not chunks:
            return np.empty(0, dtype=np.intp)
        return np.unique(np.concatenate(chunks)).astype(np.intp, copy=False)

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot).

        The per-table CSR arrays are stored concatenated (bucket counts
        recorded so :meth:`load` can split them back); the hash functions
        themselves ride along so queries hash identically after a load.
        """
        write_snapshot(
            path,
            _SNAPSHOT_KIND,
            {
                "points": self._points,
                "n_tables": np.int64(self.n_tables),
                "n_hashes": np.int64(self.n_hashes),
                "bucket_width": np.float64(self.bucket_width),
                "projections": self._projections,
                "offsets": self._offsets,
                "table_keys": np.concatenate(self._table_keys, axis=0),
                "table_n_buckets": np.asarray(
                    [keys.shape[0] for keys in self._table_keys],
                    dtype=np.int64,
                ),
                "table_starts": np.concatenate(self._table_starts),
                "table_members": np.stack(self._table_members),
            },
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "LshIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately."""
        data = read_snapshot(
            path,
            _SNAPSHOT_KIND,
            required=(
                "points", "n_tables", "n_hashes", "bucket_width",
                "projections", "offsets", "table_keys", "table_n_buckets",
                "table_starts", "table_members",
            ),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index.n_tables = int(data["n_tables"])
        index.n_hashes = int(data["n_hashes"])
        index.bucket_width = float(data["bucket_width"])
        index._projections = data["projections"]
        index._offsets = data["offsets"]
        counts = data["table_n_buckets"]
        key_splits = np.cumsum(counts)[:-1]
        start_splits = np.cumsum(counts + 1)[:-1]
        index._table_keys = np.split(data["table_keys"], key_splits)
        index._table_starts = np.split(data["table_starts"], start_splits)
        members = data["table_members"].astype(np.intp, copy=False)
        index._table_members = list(members)
        return index

    def query(self, query, k: int = 1) -> KnnResult:
        """Approximate k-NN: rank the probed buckets' candidates exactly.

        May return fewer than ``k`` neighbors when the buckets are too
        sparse — that is the approximation showing, and callers measuring
        recall should count it against the index.
        """
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        stats = QueryStats(nodes_visited=self.n_tables)

        indices = self.candidates(vector)
        stats.points_scanned = int(indices.size)
        stats.nodes_pruned = self.n_points - int(indices.size)
        if indices.size == 0:
            return KnnResult(neighbors=(), stats=stats)

        gaps = self._points[indices] - vector
        squared = np.sum(np.square(gaps), axis=1)
        best = heapq.nsmallest(
            k, zip(squared.tolist(), indices.tolist())
        )
        neighbors = tuple(
            Neighbor(index=int(idx), distance=float(np.sqrt(d2)))
            for d2, idx in best
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """Approximate k-NN for every row of ``queries``; bit-identical
        to looping :meth:`query`.  ``n_workers`` > 1 fans the rows out
        over a thread pool."""
        return dispatch_query_batch(self, queries, k, n_workers)

    def recall_against_exact(
        self, queries, k: int = 3, *, n_workers: int | None = None
    ) -> float:
        """Mean fraction of true k-NN retrieved, over a query batch.

        ``n_workers`` controls the batch fan-out on both sides of the
        comparison (the exact reference and this index), so callers can
        set the batch width end to end.  LSH is approximate by design,
        so the value is a tunable metric (``exact=False``), not a
        contract.
        """
        from repro.search.recall import recall_against_exact

        return recall_against_exact(
            self, queries, k=k, n_workers=n_workers, exact=False
        )
