"""Locality-sensitive hashing (p-stable / E2LSH) for approximate k-NN.

The exact indexes in this package all degrade to a scan in high
dimensionality (Section 1.1); LSH is the classical way to trade accuracy
for speed *without* reducing the data.  Each hash function is
``h(x) = floor((a . x + b) / w)`` with Gaussian ``a`` (2-stable for the
Euclidean metric); ``n_hashes`` functions are concatenated per table and
``n_tables`` tables are probed per query.  Candidates from the probed
buckets are ranked by exact distance.

**Multi-probe** (Lv et al., VLDB 2007) recovers the recall that a small
table count loses: instead of building 10x the tables, each query also
probes the buckets *adjacent* to its own — the ones its projections
nearly fell into.  A perturbation moves one concatenated hash value by
±1; its cost is the squared distance from the query's projection to the
slot boundary it crosses, and the best perturbation *sets* are the ones
with the smallest total cost.  The implementation uses the paper's
optimized two-level scheme:

* At build time, the valid perturbation sets over the ``2 * n_hashes``
  boundary-distance *ranks* are generated in increasing expected-score
  order with the shift/expand min-heap (a set containing both a rank and
  its complementary partner would move the same hash both ways, so those
  are skipped).  This depends only on ``n_hashes`` and ``n_probes``.
* At query time, the query's actual boundary distances are sorted per
  table (that is the query-directed part: the hashes closest to their
  slot boundaries get perturbed first) and the precomputed rank sets are
  mapped through that order into concrete ±1 delta vectors — one
  integer matmul, exact and batch-invariant.

Probing ``T`` buckets per table multiplies candidate coverage roughly
``T``-fold at constant memory, which is the trade the comparison benches
measure (probes x tables x recall).

The tables live in CSR-style arrays rather than dicts of Python tuples:
per table a ``(B, n_hashes)`` matrix of the distinct bucket keys in
lexicographic order, bucket start offsets, and one corpus-row permutation
grouped by bucket.  The fill is a single matmul over all tables followed
by one ``lexsort`` per table.  When the per-column key ranges fit, each
distinct key row is additionally packed into one monotone int64, so a
whole batch of probe lookups is a single vectorized ``searchsorted`` per
table — no Python loop over queries or probes.  Arrays also mean
snapshots (:mod:`repro.search.snapshot`) load with zero reconstruction;
the packed lookup keys and the perturbation pool are derived state,
rebuilt in vectorized form at load time.

Results are **approximate**: a true neighbor hashed into a different
bucket in every probed position is missed.  Candidate *ranking* is still
exact — the probed buckets' members go through the shared
:func:`~repro.search.batch.refine_masked_candidates` kernel, so returned
distances and tie-breaks are bit-identical to a sequential scan
restricted to the candidates, single query or batch.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.search.batch import (
    pad_rows,
    refine_masked_candidates,
    validate_n_workers,
    validate_refine_kernel,
)
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    combine_stats,
    validate_corpus,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot

# Fixed row-block size for the hashing matmul.  The bucket key is a
# *floor* of a float projection, so the projection must be computed with
# the same BLAS shape for every batch size — a key flipping across a
# slot boundary between query() and query_batch() would break their
# bit-identity.  Short blocks are zero-padded up to this size.
_HASH_CHUNK_ROWS = 32

# Candidate masks are (rows, n_points) booleans; query batches are
# processed in row blocks that keep the mask around this many entries.
_BLOCK_ENTRIES = 4_194_304


def _expected_rank_scores(n_hashes: int) -> np.ndarray:
    """Expected j-th smallest squared boundary distance (unit width).

    Lv et al.'s closed forms for uniform quantization residuals: over the
    ``2M`` boundary distances of a random query, the j-th smallest
    (1-based) has expected squared value ``j(j+1) / (4(M+1)(M+2))`` for
    ``j <= M``, and the mirrored form below past the midpoint.  These
    order the precomputed perturbation sets; actual per-query distances
    re-anchor them at query time.
    """
    m = n_hashes
    j = np.arange(1, 2 * m + 1, dtype=np.float64)
    low = j * (j + 1) / (4.0 * (m + 1) * (m + 2))
    jr = 2 * m + 1 - j
    high = 1.0 - jr / (m + 1) + jr * (jr + 1) / (4.0 * (m + 1) * (m + 2))
    return np.where(j <= m, low, high)


def _perturbation_rank_sets(n_hashes: int, max_sets: int) -> np.ndarray:
    """The first ``max_sets`` valid perturbation sets, as a 0/1 matrix.

    Sets are subsets of the ``2M`` boundary-distance ranks (0-based,
    ascending), generated in increasing expected-score order with the
    shift/expand min-heap: pop the cheapest set, push the set with its
    maximum rank shifted up by one and the set extended by that next
    rank.  Every subset is reached exactly once.  A set containing both
    rank ``r`` and its partner ``2M - 1 - r`` would perturb one hash
    position by +1 and -1 at once, so those are generated but never
    emitted.  Returns a ``(n_sets, 2M)`` int64 membership matrix (rows
    in emission order); fewer than ``max_sets`` rows when the valid sets
    run out.
    """
    if max_sets <= 0:
        return np.zeros((0, 2 * n_hashes), dtype=np.int64)
    scores = _expected_rank_scores(n_hashes)
    top = 2 * n_hashes
    heap: list[tuple[float, tuple[int, ...]]] = [(float(scores[0]), (0,))]
    emitted: list[tuple[int, ...]] = []
    while heap and len(emitted) < max_sets:
        score, ranks = heapq.heappop(heap)
        last = ranks[-1]
        if last + 1 < top:
            shifted = ranks[:-1] + (last + 1,)
            heapq.heappush(
                heap,
                (score - float(scores[last]) + float(scores[last + 1]), shifted),
            )
            heapq.heappush(heap, (score + float(scores[last + 1]), ranks + (last + 1,)))
        chosen = set(ranks)
        if all((top - 1 - r) not in chosen for r in ranks):
            emitted.append(ranks)
    sets = np.zeros((len(emitted), top), dtype=np.int64)
    for row, ranks in enumerate(emitted):
        sets[row, list(ranks)] = 1
    return sets


class LshIndex:
    """E2LSH-style approximate k-NN index with multi-probe querying.

    Args:
        points: ``(n, d)`` corpus.
        n_tables: independent hash tables probed per query.
        n_hashes: hash functions concatenated per table (bucket key
            length); more hashes = smaller buckets = faster but lower
            recall.
        bucket_width: the quantization width ``w``; should be on the
            order of the nearest-neighbor distances of interest.
        seed: RNG seed for the hash functions.
        n_probes: buckets probed per table, in increasing perturbation
            score order; 1 probes only the query's own bucket (classic
            E2LSH).  Raising it recovers recall without more tables.
            The probe sequence for ``T`` probes is a prefix of the
            sequence for ``T' > T``, so candidate sets (and recall) are
            monotone in this knob.  Capped by the number of valid
            perturbation sets (``3**n_hashes - 1`` beyond the home
            bucket).
        refine_kernel: exact re-ranking kernel for the probed
            candidates, ``"gather"`` or ``"gemm"`` (see
            :func:`~repro.search.batch.refine_masked_candidates`); both
            produce bit-identical answers.  Not persisted in snapshots.
    """

    # Snapshot kind: read by the registry, snapshot dispatch, and
    # the :class:`repro.search.Index` protocol.
    kind = "lsh"

    def __init__(
        self,
        points,
        n_tables: int = 8,
        n_hashes: int = 4,
        bucket_width: float = 1.0,
        seed: int = 0,
        n_probes: int = 1,
        refine_kernel: str = "gemm",
    ) -> None:
        if n_tables < 1 or n_hashes < 1:
            raise ValueError("n_tables and n_hashes must be positive")
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        if n_probes < 1:
            raise ValueError(f"n_probes must be positive, got {n_probes}")
        self._points = validate_corpus(points)
        self.n_tables = n_tables
        self.n_hashes = n_hashes
        self.bucket_width = bucket_width
        self.n_probes = int(n_probes)
        self.refine_kernel = validate_refine_kernel(refine_kernel)

        rng = np.random.default_rng(seed)
        d = self.dimensionality
        # Projections: (n_tables, n_hashes, d); offsets in [0, w).
        self._projections = rng.normal(size=(n_tables, n_hashes, d))
        self._offsets = rng.uniform(0.0, bucket_width, size=(n_tables, n_hashes))

        self._fill_tables()
        self._finalize()

    def _fill_tables(self) -> None:
        """One matmul + one lexsort per table replaces the per-point loop.

        For each table the corpus keys are sorted lexicographically
        (stable, so rows within a bucket stay in ascending corpus order)
        and run boundaries mark the distinct buckets — the classic
        sort-based CSR group-by.
        """
        n = self.n_points
        keys, _ = self._keys_and_residuals(self._points)
        self._table_keys: list[np.ndarray] = []
        self._table_starts: list[np.ndarray] = []
        self._table_members: list[np.ndarray] = []
        for t in range(self.n_tables):
            table_keys = keys[:, t, :]
            # When the per-column key ranges fit, pack each row into one
            # int64 with a monotone lexicographic encoding so a single-key
            # argsort replaces the multi-pass lexsort; both orderings are
            # identical (stable, ties to ascending corpus index).
            kmin = table_keys.min(axis=0)
            kmax = table_keys.max(axis=0)
            spans = [int(hi - lo) + 1 for lo, hi in zip(kmin, kmax)]
            total = 1
            for span in spans:
                total *= span
            if total <= 2**62:
                packed = table_keys[:, 0] - kmin[0]
                for h in range(1, self.n_hashes):
                    packed = packed * spans[h] + (table_keys[:, h] - kmin[h])
                order = np.argsort(packed, kind="stable")
                sorted_packed = packed[order]
                boundary = np.r_[
                    True, sorted_packed[1:] != sorted_packed[:-1]
                ]
            else:
                # lexsort's last key is primary: feed columns reversed so
                # rows sort lexicographically by hash position 0, 1, ...
                order = np.lexsort(table_keys.T[::-1])
                sorted_wide = table_keys[order]
                boundary = np.r_[
                    True, np.any(sorted_wide[1:] != sorted_wide[:-1], axis=1)
                ]
            sorted_keys = table_keys[order]
            starts = np.flatnonzero(boundary)
            self._table_keys.append(np.ascontiguousarray(sorted_keys[starts]))
            self._table_starts.append(np.r_[starts, n].astype(np.int64))
            self._table_members.append(order.astype(np.intp, copy=False))

    def _finalize(self) -> None:
        """Derived query-time state: packed lookup keys + probe pool.

        Everything here is recomputed from the stored arrays, so
        snapshots stay at the same schema and legacy files need nothing
        new — loads just run this after restoring the tables.
        """
        self._probe_sets = _perturbation_rank_sets(
            self.n_hashes, self.n_probes - 1
        )
        # Per table: monotone int64 packing of the distinct bucket keys,
        # so a batch of probe keys resolves with one searchsorted.  The
        # packing from _fill_tables is not reused because its spans come
        # from the corpus of *that* run; this one is rebuilt from the
        # stored distinct keys on every construction and load.
        self._pack_min: list[np.ndarray | None] = []
        self._pack_max: list[np.ndarray | None] = []
        self._pack_strides: list[np.ndarray | None] = []
        self._packed_keys: list[np.ndarray | None] = []
        for t in range(self.n_tables):
            uniq = self._table_keys[t]
            kmin = uniq.min(axis=0)
            kmax = uniq.max(axis=0)
            # Python ints: span products overflow int64 exactly when
            # packing is not applicable.
            spans = [int(hi - lo) + 1 for lo, hi in zip(kmin, kmax)]
            total = 1
            for span in spans:
                total *= span
            if total > 2**62:
                self._pack_min.append(None)
                self._pack_max.append(None)
                self._pack_strides.append(None)
                self._packed_keys.append(None)
                continue
            strides = np.ones(self.n_hashes, dtype=np.int64)
            for h in range(self.n_hashes - 2, -1, -1):
                strides[h] = strides[h + 1] * spans[h + 1]
            packed = ((uniq - kmin) * strides).sum(axis=1)
            self._pack_min.append(kmin)
            self._pack_max.append(kmax)
            self._pack_strides.append(strides)
            self._packed_keys.append(packed)

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    @property
    def effective_probes(self) -> int:
        """Buckets actually probed per table (pool may cap ``n_probes``)."""
        return 1 + self._probe_sets.shape[0]

    def _keys_and_residuals(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bucket keys and quantization residuals of every row.

        Returns ``(keys, residuals)`` shaped ``(m, n_tables, n_hashes)``:
        ``keys`` int64 bucket coordinates, ``residuals`` the fractional
        position of each projection inside its slot (in ``[0, 1)`` slot
        units — the raw material of the perturbation scores).  The
        matmul runs in fixed zero-padded :data:`_HASH_CHUNK_ROWS` blocks
        so a key never depends on how many rows share the batch; build
        and query go through this same arithmetic, so a corpus point and
        an identical query always land in the same bucket.
        """
        m = rows.shape[0]
        flat = self._projections.reshape(-1, self.dimensionality)
        width = self.n_tables * self.n_hashes
        keys = np.empty((m, width), dtype=np.int64)
        residuals = np.empty((m, width))
        offsets = self._offsets.reshape(1, -1)
        for start in range(0, m, _HASH_CHUNK_ROWS):
            stop = min(start + _HASH_CHUNK_ROWS, m)
            block = pad_rows(rows[start:stop], _HASH_CHUNK_ROWS)
            scaled = (block @ flat.T + offsets) / self.bucket_width
            floored = np.floor(scaled)
            keys[start:stop] = floored[: stop - start].astype(np.int64)
            residuals[start:stop] = (scaled - floored)[: stop - start]
        shape = (m, self.n_tables, self.n_hashes)
        return keys.reshape(shape), residuals.reshape(shape)

    def _probe_keys(
        self, keys: np.ndarray, residuals: np.ndarray
    ) -> np.ndarray:
        """All probed bucket keys: ``(m, n_tables, effective_probes, M)``.

        Probe 0 is always the home bucket.  The remaining probes map the
        precomputed rank sets through each (query, table)'s sorted actual
        boundary distances: rank ``r``'s perturbation is a one-hot ±1
        delta vector, so a set's delta vector is an integer matmul of
        its membership row with the per-rank delta matrix — exact
        arithmetic, hence identical for any batching of the queries.
        """
        if self._probe_sets.shape[0] == 0:
            return keys[:, :, None, :]
        m_hashes = self.n_hashes
        w = self.bucket_width
        # Squared distance from each projection to the slot boundary a
        # -1 / +1 perturbation would cross.
        down = np.square(residuals * w)
        up = np.square((1.0 - residuals) * w)
        scores = np.concatenate([down, up], axis=-1)  # (m, T, 2M)
        order = np.argsort(scores, axis=-1, kind="stable")
        position = order % m_hashes
        sign = np.where(order < m_hashes, -1, 1).astype(np.int64)
        rank_deltas = np.zeros(scores.shape + (m_hashes,), dtype=np.int64)
        np.put_along_axis(
            rank_deltas, position[..., None], sign[..., None], axis=-1
        )
        deltas = np.einsum(
            "pr,mtrh->mtph", self._probe_sets, rank_deltas
        )  # (m, T, n_sets, M)
        return np.concatenate(
            [keys[:, :, None, :], keys[:, :, None, :] + deltas], axis=2
        )

    def _lookup_table(
        self, t: int, probe_keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Member ranges of a batch of probe keys in table ``t``.

        Returns ``(starts, stops)`` into the table's member permutation,
        with ``stop == start`` for probes whose bucket does not exist.
        Packed tables answer the whole batch with one ``searchsorted``;
        the (rare) unpackable-span tables fall back to the per-probe
        binary-search narrowing.
        """
        strides = self._pack_strides[t]
        bucket_starts = self._table_starts[t]
        if strides is not None:
            kmin = self._pack_min[t]
            kmax = self._pack_max[t]
            in_range = np.all(
                (probe_keys >= kmin) & (probe_keys <= kmax), axis=1
            )
            # Clip before packing: an out-of-range coordinate cannot hit
            # any bucket, and unclipped it could overflow the packing.
            clipped = np.clip(probe_keys, kmin, kmax)
            packed = ((clipped - kmin) * strides).sum(axis=1)
            packed = np.where(in_range, packed, np.int64(-1))
            uniq = self._packed_keys[t]
            pos = np.searchsorted(uniq, packed)
            safe = np.minimum(pos, uniq.size - 1)
            found = in_range & (pos < uniq.size) & (uniq[safe] == packed)
            bucket = np.where(found, safe, 0)
            starts = np.where(found, bucket_starts[bucket], 0)
            stops = np.where(found, bucket_starts[bucket + 1], 0)
            return starts.astype(np.int64), stops.astype(np.int64)
        starts = np.zeros(probe_keys.shape[0], dtype=np.int64)
        stops = np.zeros(probe_keys.shape[0], dtype=np.int64)
        for row in range(probe_keys.shape[0]):
            found_slice = self._bucket_slice(t, probe_keys[row])
            if found_slice is not None:
                starts[row], stops[row] = found_slice
        return starts, stops

    def _bucket_slice(self, t: int, key: np.ndarray) -> tuple[int, int] | None:
        """``[start, stop)`` of ``key``'s bucket in table ``t``, if any.

        The distinct-key matrix is in lexicographic order, so the bucket
        is located by narrowing a row range with two binary searches per
        hash position — the fallback for tables whose key spans overflow
        the int64 packing.
        """
        uniq = self._table_keys[t]
        lo, hi = 0, uniq.shape[0]
        for h in range(self.n_hashes):
            column = uniq[lo:hi, h]
            value = key[h]
            left = int(np.searchsorted(column, value, side="left"))
            right = int(np.searchsorted(column, value, side="right"))
            lo, hi = lo + left, lo + right
            if lo == hi:
                return None
        starts = self._table_starts[t]
        return int(starts[lo]), int(starts[lo + 1])

    def _candidate_block(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Probed candidates for a block of query rows, fully vectorized.

        Returns ``(qrow, member, generated)``: flat parallel arrays of
        deduplicated (query row, corpus index) pairs — sorted by query
        row, then ascending corpus index — plus the ``(m,)`` per-query
        count of bucket members pulled *before* deduplication (the
        ``candidates_generated`` stat).  Within one table the probed
        buckets are distinct (valid perturbation sets have distinct
        delta vectors), so duplication only happens across tables; one
        ``np.unique`` over encoded pairs collapses it per query.
        """
        m = rows.shape[0]
        n = self.n_points
        keys, residuals = self._keys_and_residuals(rows)
        probes = self._probe_keys(keys, residuals)
        n_probes = probes.shape[2]
        probe_qids = np.repeat(np.arange(m, dtype=np.int64), n_probes)
        generated = np.zeros(m, dtype=np.int64)
        encoded: list[np.ndarray] = []
        for t in range(self.n_tables):
            flat_keys = probes[:, t].reshape(m * n_probes, self.n_hashes)
            starts, stops = self._lookup_table(t, flat_keys)
            lengths = stops - starts
            total = int(lengths.sum())
            generated += np.bincount(
                probe_qids, weights=lengths, minlength=m
            ).astype(np.int64)
            if total == 0:
                continue
            # Ragged gather: for each found bucket, its [start, stop)
            # run of the member permutation.
            first = starts - np.r_[np.int64(0), np.cumsum(lengths)[:-1]]
            gather = np.repeat(first, lengths) + np.arange(total)
            members = self._table_members[t][gather]
            qids = np.repeat(probe_qids, lengths)
            encoded.append(qids * n + members)
        if not encoded:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty, generated
        uniq = np.unique(np.concatenate(encoded))
        qrow = (uniq // n).astype(np.intp, copy=False)
        member = (uniq % n).astype(np.intp, copy=False)
        return qrow, member, generated

    def candidates(self, query) -> np.ndarray:
        """Union of corpus indices sharing a probed bucket with the query."""
        vector = validate_query(query, self.dimensionality)
        _, member, _ = self._candidate_block(vector.reshape(1, -1))
        return member

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot).

        The per-table CSR arrays are stored concatenated (bucket counts
        recorded so :meth:`load` can split them back); the hash functions
        themselves ride along so queries hash identically after a load.
        The packed lookup keys and perturbation pool are derived state
        and are rebuilt at load time, so the schema only grows by the
        ``n_probes`` scalar (snapshot version 2; version-1 files load
        with ``n_probes = 1``).
        """
        write_snapshot(
            path,
            self.kind,
            {
                "points": self._points,
                "n_tables": np.int64(self.n_tables),
                "n_hashes": np.int64(self.n_hashes),
                "bucket_width": np.float64(self.bucket_width),
                "n_probes": np.int64(self.n_probes),
                "projections": self._projections,
                "offsets": self._offsets,
                "table_keys": np.concatenate(self._table_keys, axis=0),
                "table_n_buckets": np.asarray(
                    [keys.shape[0] for keys in self._table_keys],
                    dtype=np.int64,
                ),
                "table_starts": np.concatenate(self._table_starts),
                "table_members": np.stack(self._table_members),
            },
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "LshIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately."""
        data = read_snapshot(
            path,
            cls.kind,
            required=(
                "points", "n_tables", "n_hashes", "bucket_width",
                "projections", "offsets", "table_keys", "table_n_buckets",
                "table_starts", "table_members",
            ),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index.n_tables = int(data["n_tables"])
        index.n_hashes = int(data["n_hashes"])
        index.bucket_width = float(data["bucket_width"])
        # Version-1 snapshots predate multi-probe: single-probe is
        # exactly their historical behavior.
        index.n_probes = int(data.get("n_probes", 1))
        index.refine_kernel = "gemm"
        index._projections = data["projections"]
        index._offsets = data["offsets"]
        counts = data["table_n_buckets"]
        key_splits = np.cumsum(counts)[:-1]
        start_splits = np.cumsum(counts + 1)[:-1]
        index._table_keys = np.split(data["table_keys"], key_splits)
        index._table_starts = np.split(data["table_starts"], start_splits)
        members = data["table_members"].astype(np.intp, copy=False)
        index._table_members = list(members)
        index._finalize()
        return index

    def _query_block(self, rows: np.ndarray, k: int) -> list[KnnResult]:
        """Probe, deduplicate, and exactly re-rank one block of rows."""
        m = rows.shape[0]
        qrow, member, generated = self._candidate_block(rows)
        counts = np.bincount(qrow, minlength=m)
        mask = np.zeros((m, self.n_points), dtype=bool)
        mask[qrow, member] = True
        top_indices, top_squared, _ = refine_masked_candidates(
            self._points, rows, mask, k, kernel=self.refine_kernel
        )
        probes_visited = self.n_tables * self.effective_probes
        results: list[KnnResult] = []
        for q in range(m):
            found = min(k, int(counts[q]))
            neighbors = tuple(
                Neighbor(
                    index=int(top_indices[q, j]),
                    distance=float(np.sqrt(top_squared[q, j])),
                )
                for j in range(found)
            )
            stats = QueryStats(
                points_scanned=int(counts[q]),
                nodes_visited=probes_visited,
                nodes_pruned=self.n_points - int(counts[q]),
                candidates_generated=int(generated[q]),
            )
            results.append(KnnResult(neighbors=neighbors, stats=stats))
        return results

    def query(self, query, k: int = 1) -> KnnResult:
        """Approximate k-NN: rank the probed buckets' candidates exactly.

        May return fewer than ``k`` neighbors when the buckets are too
        sparse — that is the approximation showing, and callers measuring
        recall should count it against the index.
        """
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        return self._query_block(vector.reshape(1, -1), k)[0]

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """Approximate k-NN for every row of ``queries``.

        Candidate generation is vectorized end to end — one hashing
        matmul, one packed-key ``searchsorted`` per table for all rows
        and probes at once, one deduplication — and the probed members
        re-rank through the shared exact refine kernel, so the results
        are bit-identical to looping :meth:`query`.  ``n_workers`` is
        validated for protocol uniformity with the dispatching indexes
        and then ignored: the vectorized path outruns a thread fan-out.
        """
        validate_n_workers(n_workers)
        array = validate_queries(queries, self.dimensionality)
        k = validate_k(k, self.n_points)
        block = max(1, _BLOCK_ENTRIES // self.n_points)
        results: list[KnnResult] = []
        for start in range(0, array.shape[0], block):
            results.extend(self._query_block(array[start : start + block], k))
        return BatchKnnResult(
            results=tuple(results),
            stats=combine_stats(r.stats for r in results),
        )

    def recall_against_exact(
        self, queries, k: int = 3, *, n_workers: int | None = None, reference=None
    ) -> float:
        """Mean fraction of true k-NN retrieved, over a query batch.

        ``n_workers`` controls the batch fan-out on both sides of the
        comparison (the exact reference and this index), so callers can
        set the batch width end to end.  ``reference`` optionally reuses
        a prebuilt exact index over the same corpus (probe-count sweeps
        should not rebuild it per configuration).  LSH is approximate by
        design, so the value is a tunable metric (``exact=False``), not
        a contract.
        """
        from repro.search.recall import recall_against_exact

        return recall_against_exact(
            self, queries, k=k, n_workers=n_workers, exact=False,
            reference=reference,
        )


# Deprecated alias of ``LshIndex.kind``; kept one release for
# external callers that imported the module constant.
_SNAPSHOT_KIND = LshIndex.kind
