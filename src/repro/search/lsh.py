"""Locality-sensitive hashing (p-stable / E2LSH) for approximate k-NN.

The exact indexes in this package all degrade to a scan in high
dimensionality (Section 1.1); LSH is the classical way to trade accuracy
for speed *without* reducing the data.  Each hash function is
``h(x) = floor((a . x + b) / w)`` with Gaussian ``a`` (2-stable for the
Euclidean metric); ``n_hashes`` functions are concatenated per table and
``n_tables`` tables are probed per query.  Candidates from the probed
buckets are ranked by exact distance.

Results are **approximate**: a true neighbor hashed into a different
bucket in every table is missed.  The comparison benches measure the
recall/work trade-off against the exact indexes — and against the
paper's alternative of reducing first and searching exactly.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

import numpy as np

from repro.search.results import (
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)


class LshIndex:
    """E2LSH-style approximate k-NN index.

    Args:
        points: ``(n, d)`` corpus.
        n_tables: independent hash tables probed per query.
        n_hashes: hash functions concatenated per table (bucket key
            length); more hashes = smaller buckets = faster but lower
            recall.
        bucket_width: the quantization width ``w``; should be on the
            order of the nearest-neighbor distances of interest.
        seed: RNG seed for the hash functions.
    """

    def __init__(
        self,
        points,
        n_tables: int = 8,
        n_hashes: int = 4,
        bucket_width: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_tables < 1 or n_hashes < 1:
            raise ValueError("n_tables and n_hashes must be positive")
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self._points = validate_corpus(points)
        self.n_tables = n_tables
        self.n_hashes = n_hashes
        self.bucket_width = bucket_width

        rng = np.random.default_rng(seed)
        d = self.dimensionality
        # Projections: (n_tables, n_hashes, d); offsets in [0, w).
        self._projections = rng.normal(size=(n_tables, n_hashes, d))
        self._offsets = rng.uniform(0.0, bucket_width, size=(n_tables, n_hashes))

        self._tables: list[dict[tuple, list[int]]] = []
        keys = self._bucket_keys(self._points)
        for t in range(n_tables):
            table: dict[tuple, list[int]] = defaultdict(list)
            for i in range(self.n_points):
                table[keys[t][i]].append(i)
            self._tables.append(dict(table))

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def _bucket_keys(self, rows: np.ndarray) -> list[list[tuple]]:
        """Bucket key of every row in every table."""
        single = rows.ndim == 1
        if single:
            rows = rows.reshape(1, -1)
        keys_per_table = []
        for t in range(self.n_tables):
            # (n, n_hashes) quantized projections.
            projected = rows @ self._projections[t].T
            quantized = np.floor(
                (projected + self._offsets[t]) / self.bucket_width
            ).astype(np.int64)
            keys_per_table.append([tuple(row) for row in quantized])
        return keys_per_table

    def candidates(self, query) -> np.ndarray:
        """Union of corpus indices sharing a bucket with the query."""
        vector = validate_query(query, self.dimensionality)
        keys = self._bucket_keys(vector.reshape(1, -1))
        found: set[int] = set()
        for t in range(self.n_tables):
            found.update(self._tables[t].get(keys[t][0], ()))
        return np.fromiter(sorted(found), dtype=np.intp, count=len(found))

    def query(self, query, k: int = 1) -> KnnResult:
        """Approximate k-NN: rank the probed buckets' candidates exactly.

        May return fewer than ``k`` neighbors when the buckets are too
        sparse — that is the approximation showing, and callers measuring
        recall should count it against the index.
        """
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        stats = QueryStats(nodes_visited=self.n_tables)

        indices = self.candidates(vector)
        stats.points_scanned = int(indices.size)
        stats.nodes_pruned = self.n_points - int(indices.size)
        if indices.size == 0:
            return KnnResult(neighbors=(), stats=stats)

        gaps = self._points[indices] - vector
        squared = np.sum(np.square(gaps), axis=1)
        best = heapq.nsmallest(
            k, zip(squared.tolist(), indices.tolist())
        )
        neighbors = tuple(
            Neighbor(index=int(idx), distance=float(np.sqrt(d2)))
            for d2, idx in best
        )
        return KnnResult(neighbors=neighbors, stats=stats)

    def recall_against_exact(self, queries, k: int = 3) -> float:
        """Mean fraction of true k-NN retrieved, over a query batch."""
        from repro.search.bruteforce import BruteForceIndex

        reference = BruteForceIndex(self._points)
        batch = np.asarray(queries, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch.reshape(1, -1)
        recalls = []
        for row in batch:
            truth = set(reference.query(row, k=k).indices.tolist())
            mine = set(self.query(row, k=k).indices.tolist())
            recalls.append(len(truth & mine) / k)
        return float(np.mean(recalls))
