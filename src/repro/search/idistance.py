"""The iDistance index.

Yu, Ooi, Tan & Jagadish (VLDB 2001 era): pick a set of reference points
(cluster centers), key every corpus point by

    key = partition_id * C + distance(point, its reference)

and put the keys in a one-dimensional ordered structure.  A k-NN query
runs an expanding-ring search: for the current radius ``r``, partition
``i`` can contain an answer only if
``dist(q, ref_i) - r <= height <= dist(q, ref_i) + r`` intersects the
partition's height range — a pair of binary searches per partition.  The
radius doubles until the k-th best confirmed distance is within it, at
which point the result is provably exact (triangle inequality: any
unseen point in partition ``i`` has
``dist(q, x) >= |dist(q, ref_i) - height(x)| > r``).

Like the pyramid technique, iDistance reduces high-dimensional search to
1-d interval scans; unlike it, the mapping adapts to the data's cluster
structure, which is what keeps the intervals selective.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.search.batch import dispatch_query_batch
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    validate_corpus,
    validate_k,
    validate_query,
)
from repro.search.snapshot import read_snapshot, write_snapshot


class IDistanceIndex:
    """iDistance index with k-means reference points.

    Args:
        points: ``(n, d)`` corpus.
        n_partitions: number of reference points; defaults to
            ``max(1, round(sqrt(n) / 2))``.
        seed: k-means seeding.
    """

    # Snapshot kind: read by the registry, snapshot dispatch, and
    # the :class:`repro.search.Index` protocol.
    kind = "idistance"

    def __init__(self, points, n_partitions: int | None = None, seed: int = 0) -> None:
        self._points = validate_corpus(points)
        n = self.n_points
        if n_partitions is None:
            n_partitions = max(1, int(round(np.sqrt(n) / 2)))
        if not 1 <= n_partitions <= n:
            raise ValueError(
                f"n_partitions must lie in [1, {n}], got {n_partitions}"
            )
        clustering = kmeans(self._points, n_partitions, seed=seed)
        self._references = clustering.centers
        self.n_partitions = n_partitions

        gaps = self._points - self._references[clustering.labels]
        heights = np.sqrt(np.sum(np.square(gaps), axis=1))

        # CSR layout: one corpus-row permutation ordered by (partition,
        # height) — lexsort is stable, so equal heights keep ascending
        # corpus index — plus partition start offsets into it.
        labels = np.asarray(clustering.labels, dtype=np.int64)
        order = np.lexsort((heights, labels))
        self._member_order = order
        self._height_keys = heights[order]
        self._starts = np.searchsorted(
            labels[order], np.arange(n_partitions + 1)
        ).astype(np.int64)
        self._set_partition_views()

    def _set_partition_views(self) -> None:
        """Per partition: member rows sorted by height, and the heights."""
        starts = self._starts
        self._members = [
            self._member_order[starts[p]:starts[p + 1]]
            for p in range(starts.size - 1)
        ]
        self._heights = [
            self._height_keys[starts[p]:starts[p + 1]]
            for p in range(starts.size - 1)
        ]

    def save(self, path: str) -> None:
        """Persist the index to ``path`` (``.npz`` snapshot).

        The snapshot stores the fitted reference points and the CSR
        member/height arrays, so :meth:`load` never reruns k-means —
        typically the dominant build cost of this index.
        """
        write_snapshot(
            path,
            self.kind,
            {
                "points": self._points,
                "references": self._references,
                "n_partitions": np.int64(self.n_partitions),
                "member_order": self._member_order,
                "height_keys": self._height_keys,
                "starts": self._starts,
            },
        )

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "IDistanceIndex":
        """Load a snapshot saved by :meth:`save`; query-ready immediately."""
        data = read_snapshot(
            path,
            cls.kind,
            required=(
                "points", "references", "n_partitions", "member_order",
                "height_keys", "starts",
            ),
            mmap_points=mmap_points,
        )
        index = cls.__new__(cls)
        index._points = data["points"]
        index._references = data["references"]
        index.n_partitions = int(data["n_partitions"])
        index._member_order = data["member_order"].astype(np.intp, copy=False)
        index._height_keys = data["height_keys"]
        index._starts = data["starts"]
        index._set_partition_views()
        return index

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def dimensionality(self) -> int:
        return self._points.shape[1]

    def _ring_candidates(
        self,
        query_to_refs: np.ndarray,
        radius: float,
        already: set[int],
        stats: QueryStats,
    ) -> list[int]:
        """Corpus rows inside the current rings, not yet examined."""
        fresh: list[int] = []
        for p in range(self.n_partitions):
            center_distance = query_to_refs[p]
            low = center_distance - radius
            high = center_distance + radius
            heights = self._heights[p]
            if heights.size == 0 or low > heights[-1] or high < heights[0]:
                stats.nodes_pruned += 1
                continue
            stats.nodes_visited += 1
            start = int(np.searchsorted(heights, low - 1e-12, side="left"))
            stop = int(np.searchsorted(heights, high + 1e-12, side="right"))
            for idx in self._members[p][start:stop]:
                idx = int(idx)
                if idx not in already:
                    fresh.append(idx)
                    already.add(idx)
        return fresh

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k-NN via expanding-ring search."""
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        stats = QueryStats()

        gaps = self._references - vector
        query_to_refs = np.sqrt(np.sum(np.square(gaps), axis=1))

        examined: set[int] = set()
        best: list[tuple[float, int]] = []  # (distance, index), kept sorted
        radius = max(float(query_to_refs.min()) / 8.0, 1e-6)

        for _ in range(128):
            fresh = self._ring_candidates(query_to_refs, radius, examined, stats)
            if fresh:
                rows = np.asarray(fresh, dtype=np.intp)
                squared = np.sum(
                    np.square(self._points[rows] - vector), axis=1
                )
                stats.points_scanned += rows.size
                best.extend(
                    (float(np.sqrt(d2)), int(idx))
                    for idx, d2 in zip(rows, squared)
                )
                best.sort()
            # Exactness: once the k-th confirmed distance is within the
            # searched radius, no unseen point can beat it.
            if len(best) >= k and best[k - 1][0] <= radius:
                neighbors = tuple(
                    Neighbor(index=idx, distance=distance)
                    for distance, idx in sorted(
                        best[:k], key=lambda pair: (pair[0], pair[1])
                    )
                )
                stats.nodes_pruned = max(
                    stats.nodes_pruned, self.n_points - stats.points_scanned
                )
                return KnnResult(neighbors=neighbors, stats=stats)
            radius *= 2.0
        raise RuntimeError(
            "iDistance ring expansion did not converge; corpus extent may "
            "be degenerate"
        )

    def query_batch(
        self, queries, k: int = 1, *, n_workers: int | None = None
    ) -> BatchKnnResult:
        """k-NN for every row of ``queries``; bit-identical to looping
        :meth:`query`.  ``n_workers`` > 1 fans the rows out over a
        thread pool (ring expansion does not vectorize)."""
        return dispatch_query_batch(self, queries, k, n_workers)


# Deprecated alias of ``IDistanceIndex.kind``; kept one release for
# external callers that imported the module constant.
_SNAPSHOT_KIND = IDistanceIndex.kind
