"""The one kind→class mapping: index registration, specs, and builders.

Before this module existed the codebase carried three drifting copies of
the same table — a dict in ``cli.py``, a lazy loader in ``snapshot.py``,
and special-case kwargs injection in ``shard/partition.py``.  Adding an
index kind meant editing all three (and forgetting one compiled fine).
Now every consumer resolves kinds here, so **kind #10 is a one-file
change**: append a :class:`KindSpec` to ``_SPECS`` and the CLI flags,
snapshot dispatch, shard builds, and mutation serving all pick it up.

Each :class:`KindSpec` declares:

* where the class lives (module + name, imported lazily so importing
  the registry costs nothing);
* whether the kind is **exact** — answers are the true Euclidean top-k
  with the family-wide (distance, lower index) tie-break, a function of
  the corpus *rows* alone.  Approximate kinds (``lsh``) and kinds whose
  scoring depends on corpus-derived structure (``igrid``'s equi-depth
  discretization) are not; delta-merge serving
  (:mod:`repro.serve.mutation`) refuses them because no delta scan can
  reproduce what a fresh rebuild would answer;
* its CLI-exposed constructor parameters (:class:`ParamSpec`: keyword,
  flag, type, help, choices) — ``repro index build`` / ``shard build``
  derive their argparse wiring and wrong-kind rejection from these;
* its **shared artifacts** — corpus-derived structure that a derived
  build (shards of one corpus, every member of a serving fleet) must
  compute once over the *full* corpus and pass to every sub-build so
  all of them score/bound by the same function: IGrid's equi-depth
  discretization and projscreen's fitted projection.  Previously these
  were special-cased ``if kind == ...`` branches in ``build_shards``.

The registry is also where the public :class:`Index` protocol lives:
the structural contract (``kind``, ``n_points``, ``dimensionality``,
``query``, ``query_batch``, ``save``/``load``) every registered class
satisfies, re-exported from :mod:`repro.search`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from functools import lru_cache
from importlib import import_module
from typing import Protocol, runtime_checkable

from repro.search.results import BatchKnnResult, KnnResult


@runtime_checkable
class Index(Protocol):
    """Structural contract every registered index kind satisfies.

    ``kind`` is a class attribute naming the snapshot kind the class
    reads and writes (the registry validates it against the spec that
    declared the class); the rest is the family-wide query/persistence
    surface.  The protocol is ``runtime_checkable``, so
    ``isinstance(obj, Index)`` verifies the attribute surface — method
    signatures are a documentation contract, enforced by the registry
    round-trip tests rather than the type system.
    """

    kind: str

    @property
    def n_points(self) -> int: ...

    @property
    def dimensionality(self) -> int: ...

    def query(self, query, k: int = 1) -> KnnResult:
        """Top-``k`` neighbors of one query vector."""
        ...

    def query_batch(self, queries, k: int = 1) -> BatchKnnResult:
        """Row-wise :meth:`query` through the index's batch engine."""
        ...

    def save(self, path: str) -> None:
        """Persist the index as a single-``.npz`` snapshot."""
        ...

    @classmethod
    def load(cls, path: str, *, mmap_points: bool = False) -> "Index":
        """Restore a snapshot written by :meth:`save`."""
        ...


@dataclass(frozen=True)
class ParamSpec:
    """One CLI-exposed constructor parameter of an index kind.

    Attributes:
        name: constructor keyword (also the argparse dest).
        flag: CLI flag string (e.g. ``"--subspace-dim"``).
        type: parser for the flag value (``int``/``float``/``str``).
        help: CLI help text.
        choices: permitted values, or ``None`` for unconstrained.
    """

    name: str
    flag: str
    type: type
    help: str
    choices: tuple[str, ...] | None = None


@dataclass(frozen=True)
class KindSpec:
    """Everything the system knows about one index kind.

    Attributes:
        kind: the snapshot-kind string (registry key).
        module: dotted module path holding the class.
        class_name: the class's name inside ``module``.
        exact: answers are the exact Euclidean top-k with the
            (distance, lower index) tie-break, independent of which
            other rows share the corpus.  See the module docstring for
            what this gates.
        params: CLI-exposed constructor parameters.
        shared_artifact_params: constructor keywords that carry
            corpus-derived structure which derived builds must compute
            once over the full corpus (see :func:`shared_build_kwargs`).
    """

    kind: str
    module: str
    class_name: str
    exact: bool
    params: tuple[ParamSpec, ...] = ()
    shared_artifact_params: tuple[str, ...] = field(default=())


_SPECS: tuple[KindSpec, ...] = (
    KindSpec(
        kind="bruteforce",
        module="repro.search.bruteforce",
        class_name="BruteForceIndex",
        exact=True,
    ),
    KindSpec(
        kind="kdtree",
        module="repro.search.kdtree",
        class_name="KdTreeIndex",
        exact=True,
    ),
    KindSpec(
        kind="rtree",
        module="repro.search.rtree",
        class_name="RTreeIndex",
        exact=True,
    ),
    KindSpec(
        kind="vafile",
        module="repro.search.vafile",
        class_name="VAFileIndex",
        exact=True,
        params=(
            ParamSpec(
                name="bit_allocation",
                flag="--bit-allocation",
                type=str,
                choices=("uniform", "variance"),
                help="vafile per-dimension bit budget split: uniform, or "
                     "variance-weighted toward high-variance dimensions "
                     "(default: uniform)",
            ),
        ),
    ),
    KindSpec(
        kind="pyramid",
        module="repro.search.pyramid",
        class_name="PyramidIndex",
        exact=True,
    ),
    KindSpec(
        kind="idistance",
        module="repro.search.idistance",
        class_name="IDistanceIndex",
        exact=True,
    ),
    KindSpec(
        kind="igrid",
        module="repro.search.igrid",
        class_name="IGridIndex",
        # IGrid scores by its equi-depth discretization, a function of
        # the corpus distribution: rebuilding over a different rowset
        # changes the scoring function itself, so answers are not a
        # rowset-independent top-k.
        exact=False,
        shared_artifact_params=("discretization",),
    ),
    KindSpec(
        kind="lsh",
        module="repro.search.lsh",
        class_name="LshIndex",
        exact=False,  # approximate by design: probed buckets, not top-k
        params=(
            ParamSpec(
                name="n_probes",
                flag="--n-probes",
                type=int,
                help="lsh multi-probe count: buckets examined per table, "
                     "the home bucket plus its best perturbations "
                     "(default: 1)",
            ),
        ),
    ),
    KindSpec(
        kind="projscreen",
        module="repro.search.projected",
        class_name="ProjectionScreenedIndex",
        exact=True,
        params=(
            ParamSpec(
                name="subspace_dim",
                flag="--subspace-dim",
                type=int,
                help="projscreen screening dimensions m (default: d // 4)",
            ),
            ParamSpec(
                name="ordering",
                flag="--ordering",
                type=str,
                choices=("eigen", "coherence"),
                help="projscreen subspace selection rule "
                     "(eigen = largest eigenvalues, coherence = the "
                     "paper's coherence probability; default: eigen)",
            ),
        ),
        shared_artifact_params=("projection",),
    ),
)

_BY_KIND: dict[str, KindSpec] = {spec.kind: spec for spec in _SPECS}

INDEX_KINDS: tuple[str, ...] = tuple(spec.kind for spec in _SPECS)

EXACT_KINDS: tuple[str, ...] = tuple(
    spec.kind for spec in _SPECS if spec.exact
)


def index_spec(kind: str) -> KindSpec:
    """The :class:`KindSpec` registered under ``kind``."""
    try:
        return _BY_KIND[kind]
    except KeyError:
        raise ValueError(
            f"unknown index kind {kind!r}; expected one of "
            f"{sorted(INDEX_KINDS)}"
        ) from None


def iter_specs() -> tuple[KindSpec, ...]:
    """Every registered :class:`KindSpec`, in registration order."""
    return _SPECS


@lru_cache(maxsize=None)
def index_class(kind: str) -> type:
    """The index class registered under ``kind`` (imported lazily).

    The loaded class must carry a matching ``kind`` attribute — that
    attribute is what snapshots, generation manifests, and the
    :class:`Index` protocol read, so a mismatch is a registration bug
    worth failing loudly on.
    """
    spec = index_spec(kind)
    cls = getattr(import_module(spec.module), spec.class_name)
    declared = getattr(cls, "kind", None)
    if declared != kind:
        raise TypeError(
            f"{spec.module}.{spec.class_name} declares kind "
            f"{declared!r} but is registered as {kind!r}"
        )
    return cls


def accepted_keywords(kind: str) -> tuple[str, ...]:
    """Constructor keywords ``build_index`` accepts for ``kind``."""
    cls = index_class(kind)
    parameters = inspect.signature(cls.__init__).parameters
    return tuple(
        name
        for position, (name, parameter) in enumerate(parameters.items())
        if position >= 2  # skip self and the positional corpus
        and parameter.kind
        in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
    )


def build_index(kind: str, points, **kwargs):
    """Construct a ``kind`` index over ``points``.

    Keywords are validated against the constructor signature first so a
    wrong-kind keyword fails with a message naming the accepted set
    (instead of a bare ``TypeError`` from deep inside the constructor).
    """
    cls = index_class(kind)
    accepted = accepted_keywords(kind)
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        raise ValueError(
            f"index kind {kind!r} does not accept keyword(s) {unknown}; "
            f"accepted: {sorted(accepted)}"
        )
    return cls(points, **kwargs)


def shared_build_kwargs(kind: str, corpus, kwargs: dict | None = None) -> dict:
    """Constructor kwargs for derived builds sharing one corpus.

    A *derived* build constructs several ``kind`` indexes that must all
    answer like one index over ``corpus`` — shards of a partition, the
    per-generation rebuilds of a mutable server fleet.  Corpus-derived
    structure (IGrid's equi-depth discretization, projscreen's fitted
    projection) must then be computed **once over the full corpus** and
    passed to every sub-build; a sub-build re-deriving it from its own
    subset would score or bound by a different function than the
    reference index.

    Returns a new kwargs dict with the kind's shared artifacts filled
    in (already-present artifacts are respected); parameters the
    artifact fit consumes (``subspace_dim``/``ordering`` for
    projscreen) are popped out of the returned dict.
    """
    spec = index_spec(kind)
    merged = dict(kwargs or {})
    if not spec.shared_artifact_params:
        return merged
    if kind == "igrid" and "discretization" not in merged:
        from repro.search.igrid import igrid_discretization

        merged["discretization"] = igrid_discretization(
            corpus, merged.get("ranges_per_dim", 4)
        )
    if kind == "projscreen" and "projection" not in merged:
        from repro.search.projected import fit_projection

        merged["projection"] = fit_projection(
            corpus,
            subspace_dim=merged.pop("subspace_dim", None),
            ordering=merged.pop("ordering", "eigen"),
        )
    return merged
