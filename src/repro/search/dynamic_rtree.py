"""A dynamically insertable R-tree (Guttman, SIGMOD 1984).

The bulk-loaded :class:`repro.search.RTreeIndex` serves static corpora;
a dynamic database also needs *insertion* — which is the half of
Guttman's paper the STR loader skips.  This index implements it:

* **ChooseLeaf** — descend into the child whose MBR needs the least
  enlargement to cover the new point (ties: smallest area);
* **quadratic split** — when a node overflows, seed the two groups with
  the pair of entries whose combined MBR wastes the most area, then
  assign the rest by least enlargement;
* **AdjustTree** — propagate MBR growth (and splits) to the root.

Queries reuse the best-first MINDIST search of the static R-tree, with
the same epsilon-padded tie handling, so results stay exactly equal to
brute force at every point in the insert stream.

Together with :class:`repro.dynamic.DynamicReducer` this completes the
dynamic-database story the paper contrasts itself with (reference [17]):
stream points in, keep the reduced index queryable throughout.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.search.results import (
    KnnResult,
    Neighbor,
    QueryStats,
    validate_k,
    validate_query,
)


class _DNode:
    """A dynamic R-tree node.

    Leaves hold corpus row indices (``entries`` of ints); inner nodes
    hold child ``_DNode``s.  Every node maintains its own MBR.
    """

    __slots__ = ("lower", "upper", "entries", "is_leaf", "parent")

    def __init__(self, dimensionality: int, is_leaf: bool) -> None:
        self.lower = np.full(dimensionality, np.inf)
        self.upper = np.full(dimensionality, -np.inf)
        self.entries: list = []
        self.is_leaf = is_leaf
        self.parent: "_DNode | None" = None

    def include(self, lower: np.ndarray, upper: np.ndarray) -> None:
        np.minimum(self.lower, lower, out=self.lower)
        np.maximum(self.upper, upper, out=self.upper)

    def area(self) -> float:
        if np.any(self.upper < self.lower):
            return 0.0
        return float(np.prod(self.upper - self.lower))


def _enlargement(node: _DNode, lower: np.ndarray, upper: np.ndarray) -> float:
    merged_lower = np.minimum(node.lower, lower)
    merged_upper = np.maximum(node.upper, upper)
    merged_area = float(np.prod(merged_upper - merged_lower))
    return merged_area - node.area()


def _mindist_squared(lower: np.ndarray, upper: np.ndarray, query: np.ndarray) -> float:
    below = np.maximum(lower - query, 0.0)
    above = np.maximum(query - upper, 0.0)
    return float(np.sum(np.square(below)) + np.sum(np.square(above)))


class DynamicRTree:
    """An R-tree supporting incremental insertion.

    Args:
        dimensionality: dimensionality of the points to come.
        page_size: maximum entries per node before a split.

    Points are assigned consecutive corpus indices in insertion order;
    query results refer to those indices and :attr:`points` holds the
    accumulated corpus.
    """

    def __init__(self, dimensionality: int, page_size: int = 16) -> None:
        if dimensionality < 1:
            raise ValueError(f"dimensionality must be positive, got {dimensionality}")
        if page_size < 4:
            raise ValueError(
                f"page_size must be at least 4 for a quadratic split, got {page_size}"
            )
        self._dimensionality = dimensionality
        self._page_size = page_size
        self._rows: list[np.ndarray] = []
        self._root = _DNode(dimensionality, is_leaf=True)

    @property
    def dimensionality(self) -> int:
        return self._dimensionality

    @property
    def n_points(self) -> int:
        """Total points ever inserted (deleted indices are not reused)."""
        return len(self._rows)

    @property
    def points(self) -> np.ndarray:
        """The corpus in insertion order; deleted rows are NaN-filled."""
        if not self._rows:
            return np.empty((0, self._dimensionality))
        filler = np.full(self._dimensionality, np.nan)
        return np.vstack(
            [row if row is not None else filler for row in self._rows]
        )

    @property
    def height(self) -> int:
        levels = 1
        node = self._root
        while not node.is_leaf:
            levels += 1
            node = node.entries[0]
        return levels

    # -- insertion -------------------------------------------------------

    def insert(self, point) -> int:
        """Insert one point; returns its corpus index."""
        vector = validate_query(point, self._dimensionality)
        index = len(self._rows)
        self._rows.append(vector.copy())

        leaf = self._choose_leaf(self._root, vector)
        leaf.entries.append(index)
        leaf.include(vector, vector)
        self._adjust_upward(leaf)

        if len(leaf.entries) > self._page_size:
            self._split(leaf)
        return index

    def extend(self, points) -> list[int]:
        """Insert a batch of rows; returns their corpus indices."""
        array = np.asarray(points, dtype=np.float64)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        return [self.insert(row) for row in array]

    def _choose_leaf(self, node: _DNode, vector: np.ndarray) -> _DNode:
        while not node.is_leaf:
            best_child, best_key = None, None
            for child in node.entries:
                key = (_enlargement(child, vector, vector), child.area())
                if best_key is None or key < best_key:
                    best_child, best_key = child, key
            node = best_child
        return node

    def _entry_box(self, node: _DNode, entry) -> tuple[np.ndarray, np.ndarray]:
        if node.is_leaf:
            row = self._rows[entry]
            return row, row
        return entry.lower, entry.upper

    def _recompute_mbr(self, node: _DNode) -> None:
        node.lower = np.full(self._dimensionality, np.inf)
        node.upper = np.full(self._dimensionality, -np.inf)
        for entry in node.entries:
            lower, upper = self._entry_box(node, entry)
            node.include(lower, upper)

    def _adjust_upward(self, node: _DNode) -> None:
        parent = node.parent
        while parent is not None:
            parent.include(node.lower, node.upper)
            node, parent = parent, parent.parent

    def _split(self, node: _DNode) -> None:
        """Quadratic split of an overflowing node, propagating upward."""
        entries = node.entries
        boxes = [self._entry_box(node, entry) for entry in entries]

        # Pick seeds: the pair wasting the most area when combined.
        worst_pair, worst_waste = (0, 1), -np.inf
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                lower = np.minimum(boxes[i][0], boxes[j][0])
                upper = np.maximum(boxes[i][1], boxes[j][1])
                waste = (
                    float(np.prod(upper - lower))
                    - float(np.prod(boxes[i][1] - boxes[i][0]))
                    - float(np.prod(boxes[j][1] - boxes[j][0]))
                )
                if waste > worst_waste:
                    worst_pair, worst_waste = (i, j), waste

        first = _DNode(self._dimensionality, node.is_leaf)
        second = _DNode(self._dimensionality, node.is_leaf)
        seed_a, seed_b = worst_pair
        groups = {id(first): first, id(second): second}
        for target, seed in ((first, seed_a), (second, seed_b)):
            target.entries.append(entries[seed])
            target.include(*boxes[seed])

        remaining = [
            i for i in range(len(entries)) if i not in (seed_a, seed_b)
        ]
        minimum_fill = max(1, self._page_size // 2)
        for i in remaining:
            # Force-assign when one group must take everything left to
            # reach minimum fill.
            left_to_place = len(remaining) - remaining.index(i)
            for target, other in ((first, second), (second, first)):
                if len(target.entries) + left_to_place <= minimum_fill:
                    target.entries.append(entries[i])
                    target.include(*boxes[i])
                    break
            else:
                grow_first = _enlargement(first, *boxes[i])
                grow_second = _enlargement(second, *boxes[i])
                key_first = (grow_first, first.area(), len(first.entries))
                key_second = (grow_second, second.area(), len(second.entries))
                target = first if key_first <= key_second else second
                target.entries.append(entries[i])
                target.include(*boxes[i])

        if not node.is_leaf:
            for group in groups.values():
                for child in group.entries:
                    child.parent = group

        parent = node.parent
        if parent is None:
            # Grow a new root.
            new_root = _DNode(self._dimensionality, is_leaf=False)
            new_root.entries = [first, second]
            first.parent = new_root
            second.parent = new_root
            new_root.include(first.lower, first.upper)
            new_root.include(second.lower, second.upper)
            self._root = new_root
            return

        parent.entries.remove(node)
        parent.entries.extend([first, second])
        first.parent = parent
        second.parent = parent
        self._recompute_mbr(parent)
        self._adjust_upward(parent)
        if len(parent.entries) > self._page_size:
            self._split(parent)

    # -- querying ---------------------------------------------------------

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k-NN over everything inserted so far."""
        vector = validate_query(query, self._dimensionality)
        live = self.n_live
        if live == 0:
            raise ValueError("cannot query an empty index")
        k = validate_k(k, live)
        stats = QueryStats()

        counter = itertools.count()
        frontier = [
            (
                _mindist_squared(self._root.lower, self._root.upper, vector),
                next(counter),
                self._root,
            )
        ]
        best: list[tuple[float, int]] = []  # max-heap via negation

        def visit_limit() -> float:
            if len(best) < k:
                return np.inf
            worst = -best[0][0]
            return worst + 1e-12 * worst

        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > visit_limit():
                stats.nodes_pruned += 1 + len(frontier)
                break
            stats.nodes_visited += 1
            if node.is_leaf:
                for index in node.entries:
                    gap = self._rows[index] - vector
                    d2 = float(np.sum(np.square(gap)))
                    stats.points_scanned += 1
                    entry = (-d2, -int(index))
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
            else:
                for child in node.entries:
                    child_bound = _mindist_squared(child.lower, child.upper, vector)
                    if child_bound <= visit_limit():
                        heapq.heappush(frontier, (child_bound, next(counter), child))
                    else:
                        stats.nodes_pruned += 1

        ordered = sorted(best, key=lambda entry: (-entry[0], -entry[1]))
        neighbors = tuple(
            Neighbor(index=-tie, distance=float(np.sqrt(-negated)))
            for negated, tie in ordered
        )
        return KnnResult(neighbors=neighbors, stats=stats)


    def delete(self, index: int) -> None:
        """Delete a previously inserted point by its corpus index.

        Guttman's FindLeaf/CondenseTree: locate the leaf holding the
        entry, remove it, and walk upward shrinking MBRs; a node that
        falls below minimum fill is dissolved and its surviving entries
        are reinserted.  Deleted indices are never reused — query results
        keep referring to original insertion order.

        Raises:
            KeyError: when the index does not exist (or was already
                deleted).
        """
        if not 0 <= index < len(self._rows) or self._rows[index] is None:
            raise KeyError(f"no live point with index {index}")
        vector = self._rows[index]

        leaf = self._find_leaf(self._root, index, vector)
        if leaf is None:  # pragma: no cover - structure invariant
            raise KeyError(f"index {index} not found in the tree")
        leaf.entries.remove(index)
        self._rows[index] = None
        self._condense(leaf)

    def _find_leaf(self, node: _DNode, index: int, vector: np.ndarray):
        if node.is_leaf:
            return node if index in node.entries else None
        for child in node.entries:
            if np.all(vector >= child.lower - 1e-12) and np.all(
                vector <= child.upper + 1e-12
            ):
                found = self._find_leaf(child, index, vector)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _DNode) -> None:
        minimum_fill = max(1, self._page_size // 2)
        orphans: list[int] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < minimum_fill:
                parent.entries.remove(node)
                orphans.extend(self._collect_leaf_entries(node))
            else:
                self._recompute_mbr(node)
            node = parent
        self._recompute_mbr(self._root)
        # A non-leaf root with one child shrinks the tree.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0]
            self._root.parent = None
        if not self._root.is_leaf and not self._root.entries:
            self._root = _DNode(self._dimensionality, is_leaf=True)

        for orphan in orphans:
            row = self._rows[orphan]
            leaf = self._choose_leaf(self._root, row)
            leaf.entries.append(orphan)
            leaf.include(row, row)
            self._adjust_upward(leaf)
            if len(leaf.entries) > self._page_size:
                self._split(leaf)

    def _collect_leaf_entries(self, node: _DNode) -> list[int]:
        if node.is_leaf:
            return list(node.entries)
        collected: list[int] = []
        for child in node.entries:
            collected.extend(self._collect_leaf_entries(child))
        return collected

    @property
    def n_live(self) -> int:
        """Number of points currently in the index (inserted − deleted)."""
        return sum(1 for row in self._rows if row is not None)
