"""Shared result and instrumentation types for the k-NN indexes."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Neighbor:
    """One retrieved neighbor.

    Attributes:
        index: row index of the point in the indexed corpus.
        distance: Euclidean distance to the query.
    """

    index: int
    distance: float


@dataclass
class QueryStats:
    """Work accounting for one k-NN query.

    Attributes:
        points_scanned: candidate points whose exact distance was
            computed.
        nodes_visited: tree nodes (or VA-file approximation cells)
            examined.
        nodes_pruned: nodes discarded by the optimistic (mindist) bound
            without being opened — the paper's "effective pruning".
    """

    points_scanned: int = 0
    nodes_visited: int = 0
    nodes_pruned: int = 0

    def pruning_fraction(self, total_points: int) -> float:
        """Fraction of the corpus never exactly scanned."""
        if total_points <= 0:
            raise ValueError("total_points must be positive")
        return 1.0 - min(self.points_scanned, total_points) / total_points


@dataclass(frozen=True)
class KnnResult:
    """Result of one k-NN query: neighbors sorted by ascending distance."""

    neighbors: tuple[Neighbor, ...]
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def indices(self) -> np.ndarray:
        return np.asarray([n.index for n in self.neighbors], dtype=np.intp)

    @property
    def distances(self) -> np.ndarray:
        return np.asarray([n.distance for n in self.neighbors], dtype=np.float64)


def validate_corpus(points) -> np.ndarray:
    """Common validation for index constructors."""
    array = np.asarray(points, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"corpus must be 2-d (n, d), got shape {array.shape}")
    if array.shape[0] == 0:
        raise ValueError("corpus must contain at least one point")
    if not np.all(np.isfinite(array)):
        raise ValueError("corpus must be finite")
    return array


def validate_query(query, dimensionality: int) -> np.ndarray:
    """Common validation for query vectors."""
    vector = np.asarray(query, dtype=np.float64)
    if vector.ndim != 1 or vector.size != dimensionality:
        raise ValueError(
            f"query must be a 1-d vector of length {dimensionality}, "
            f"got shape {vector.shape}"
        )
    if not np.all(np.isfinite(vector)):
        raise ValueError("query must be finite")
    return vector


def validate_k(k: int, corpus_size: int) -> int:
    """Common validation for neighbor counts."""
    if not 1 <= k <= corpus_size:
        raise ValueError(f"k must lie in [1, {corpus_size}], got {k}")
    return int(k)
