"""Shared result and instrumentation types for the k-NN indexes."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Neighbor:
    """One retrieved neighbor.

    Attributes:
        index: row index of the point in the indexed corpus.
        distance: Euclidean distance to the query.
    """

    index: int
    distance: float


@dataclass
class QueryStats:
    """Work accounting for one k-NN query.

    Attributes:
        points_scanned: candidate points whose exact full-dimensional
            distance was computed.  For a prune-then-refine index this
            is the *refined-rows* counter — the survivors of the cheap
            screen — and it is what :meth:`pruning_fraction` audits.
        nodes_visited: tree nodes (or VA-file approximation cells)
            examined.
        nodes_pruned: nodes discarded by the optimistic (mindist) bound
            without being opened — the paper's "effective pruning".
        reduced_rows_scanned: rows scanned in a reduced (projected)
            representation to produce lower bounds, without computing a
            full-dimensional distance.  Zero for indexes that have no
            screening stage.  Together with ``points_scanned`` this
            splits the bytes-moved accounting of a screened scan:
            ``reduced_rows_scanned`` cheap subspace rows versus
            ``points_scanned`` full-width refinements.
        candidates_generated: rows the candidate-generation stage
            emitted *before* deduplication and refinement — the funnel
            width.  For LSH this counts every bucket member pulled from
            every probed bucket (a row surfacing in three tables counts
            three times); for the VA-file it counts the phase-1
            survivors; for the projection-screened index the rows the
            screen admitted to refinement.  ``points_scanned`` stays the
            *distinct* exactly-refined count, so
            :meth:`pruning_fraction` keeps its over-count-strict audit
            while this field reports how wide the funnel opened.
    """

    points_scanned: int = 0
    nodes_visited: int = 0
    nodes_pruned: int = 0
    reduced_rows_scanned: int = 0
    candidates_generated: int = 0

    def pruning_fraction(self, total_points: int) -> float:
        """Fraction of the corpus never exactly scanned at full width.

        Reduced-space scans do not count against pruning: a screened
        index that reads every reduced row but refines only a handful of
        full-dimensional survivors has pruned almost everything, and that
        is exactly the win this fraction reports.

        Raises:
            ValueError: when ``points_scanned`` exceeds ``total_points``.
                A query cannot scan more distinct points than the corpus
                holds, so an excess is always an accounting bug in the
                index (double-counted refinements); clamping it silently
                would report a fake 0.0 and hide the defect.
        """
        if total_points <= 0:
            raise ValueError("total_points must be positive")
        if self.points_scanned > total_points:
            raise ValueError(
                f"points_scanned ({self.points_scanned}) exceeds the corpus "
                f"size ({total_points}); the index double-counted scans"
            )
        return 1.0 - self.points_scanned / total_points


@dataclass(frozen=True)
class KnnResult:
    """Result of one k-NN query: neighbors sorted by ascending distance."""

    neighbors: tuple[Neighbor, ...]
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def indices(self) -> np.ndarray:
        return np.asarray([n.index for n in self.neighbors], dtype=np.intp)

    @property
    def distances(self) -> np.ndarray:
        return np.asarray([n.distance for n in self.neighbors], dtype=np.float64)


def combine_stats(per_query: Iterable[QueryStats]) -> QueryStats:
    """Sum work accounting across queries (for batch aggregation).

    Every counter is carried, including ``reduced_rows_scanned`` —
    dropping a field here would silently zero it out of every batch,
    serving, and sharding report (the aggregation paths all fold
    through this function).  Callers must pass *per-query* stats: the
    screened indexes assign each query's counters exactly once even
    when ``query_batch`` splits the batch into blocks, so summation
    never double-counts a row.
    """
    total = QueryStats()
    for stats in per_query:
        total.points_scanned += stats.points_scanned
        total.nodes_visited += stats.nodes_visited
        total.nodes_pruned += stats.nodes_pruned
        total.reduced_rows_scanned += stats.reduced_rows_scanned
        total.candidates_generated += stats.candidates_generated
    return total


@dataclass(frozen=True)
class BatchKnnResult:
    """Results of a batch of k-NN queries, one :class:`KnnResult` per row.

    Behaves as a sequence of the per-query results (``len``, iteration,
    indexing), so call sites written against ``list[KnnResult]`` keep
    working.  ``stats`` aggregates the per-query work accounting by
    summation — the natural unit for batch workloads, where
    ``stats.points_scanned / (len(batch) * n_points)`` is the batch-level
    scan fraction.
    """

    results: tuple[KnnResult, ...]
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[KnnResult]:
        return iter(self.results)

    def __getitem__(self, item: int) -> KnnResult:
        return self.results[item]

    @property
    def indices(self) -> np.ndarray:
        """``(q, k)`` neighbor indices (rows are queries)."""
        return np.asarray([r.indices for r in self.results], dtype=np.intp)

    @property
    def distances(self) -> np.ndarray:
        """``(q, k)`` neighbor distances (rows are queries)."""
        return np.asarray([r.distances for r in self.results], dtype=np.float64)


def validate_corpus(points) -> np.ndarray:
    """Common validation for index constructors."""
    array = np.asarray(points, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"corpus must be 2-d (n, d), got shape {array.shape}")
    if array.shape[0] == 0:
        raise ValueError("corpus must contain at least one point")
    if not np.all(np.isfinite(array)):
        raise ValueError("corpus must be finite")
    return array


def validate_query(query, dimensionality: int) -> np.ndarray:
    """Common validation for query vectors."""
    vector = np.asarray(query, dtype=np.float64)
    if vector.ndim != 1 or vector.size != dimensionality:
        raise ValueError(
            f"query must be a 1-d vector of length {dimensionality}, "
            f"got shape {vector.shape}"
        )
    if not np.all(np.isfinite(vector)):
        raise ValueError("query must be finite")
    return vector


def validate_queries(queries, dimensionality: int) -> np.ndarray:
    """Common validation for batches of query vectors (rows are queries).

    An empty batch (zero rows) is permitted: production callers routinely
    flush whatever accumulated, including nothing.
    """
    array = np.asarray(queries, dtype=np.float64)
    if array.ndim != 2 or array.shape[1] != dimensionality:
        raise ValueError(
            f"queries must be a 2-d (q, {dimensionality}) matrix, "
            f"got shape {array.shape}"
        )
    if not np.all(np.isfinite(array)):
        raise ValueError("queries must be finite")
    return array


def validate_k(k: int, corpus_size: int) -> int:
    """Common validation for neighbor counts."""
    if not 1 <= k <= corpus_size:
        raise ValueError(f"k must lie in [1, {corpus_size}], got {k}")
    return int(k)
