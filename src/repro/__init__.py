"""repro — coherence-guided dimensionality reduction for similarity search.

A full reproduction of Charu C. Aggarwal, *On the Effects of
Dimensionality Reduction on High Dimensional Similarity Search*
(PODS 2001): the coherence factor/probability model, coherence-ordered
eigenvector selection, the scaling (studentization) analysis, the
feature-stripping evaluation protocol, and the indexing substrates the
paper's argument rests on.

Quickstart::

    from repro import CoherenceReducer, ionosphere_like
    from repro import corrupt_with_uniform, feature_stripping_accuracy

    data = ionosphere_like(seed=7)
    noisy = corrupt_with_uniform(data, n_dims=10, amplitude=60.0, seed=7)

    reducer = CoherenceReducer(n_components=5, ordering="coherence")
    reduced = reducer.fit_transform(noisy.features)
    print(feature_stripping_accuracy(reduced, noisy.labels, k=3))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    CoherenceAnalysis,
    CoherenceReducer,
    ReducibilityDiagnosis,
    SimilaritySearchPipeline,
    analyze_coherence,
    coherence_factors,
    coherence_probabilities,
    dataset_coherence,
    diagnose_reducibility,
    select_automatic,
    select_by_coherence,
    select_by_eigenvalue,
    select_by_energy,
    select_by_threshold,
)
from repro.core.coherence import UNIFORM_BASELINE_CP
from repro.datasets import (
    Dataset,
    arrhythmia_like,
    corrupt_with_uniform,
    gaussian_blobs,
    ionosphere_like,
    latent_concept_dataset,
    load_csv_dataset,
    musk_like,
    noisy_dataset_a,
    noisy_dataset_b,
    uniform_cube,
)
from repro.evaluation import (
    ReductionSummary,
    SweepResult,
    accuracy_sweep,
    feature_stripping_accuracy,
    neighbor_precision_recall,
    reduction_summary,
)
from repro.linalg import PrincipalComponents, fit_pca
from repro.baselines import RandomProjectionReducer, SVDReducer
from repro.dynamic import DynamicReducer, IncrementalPCA
from repro.search import (
    BruteForceIndex,
    KdTreeIndex,
    LshIndex,
    RTreeIndex,
    VAFileIndex,
)

__version__ = "1.0.0"

__all__ = [
    "BruteForceIndex",
    "CoherenceAnalysis",
    "CoherenceReducer",
    "Dataset",
    "DynamicReducer",
    "IncrementalPCA",
    "KdTreeIndex",
    "LshIndex",
    "PrincipalComponents",
    "RTreeIndex",
    "RandomProjectionReducer",
    "ReducibilityDiagnosis",
    "ReductionSummary",
    "SVDReducer",
    "SimilaritySearchPipeline",
    "SweepResult",
    "UNIFORM_BASELINE_CP",
    "VAFileIndex",
    "accuracy_sweep",
    "analyze_coherence",
    "arrhythmia_like",
    "coherence_factors",
    "coherence_probabilities",
    "corrupt_with_uniform",
    "dataset_coherence",
    "diagnose_reducibility",
    "feature_stripping_accuracy",
    "fit_pca",
    "gaussian_blobs",
    "ionosphere_like",
    "latent_concept_dataset",
    "load_csv_dataset",
    "musk_like",
    "neighbor_precision_recall",
    "noisy_dataset_a",
    "noisy_dataset_b",
    "reduction_summary",
    "select_automatic",
    "select_by_coherence",
    "select_by_eigenvalue",
    "select_by_energy",
    "select_by_threshold",
    "uniform_cube",
    "__version__",
]
