"""The null-hypothesis machinery behind the coherence model.

Hypothesis 2.1 of the paper states: the per-dimension contributions
``c_1 … c_d`` to a projection ``X . e_i`` are statistically independent
draws from a distribution centered at zero.  Under that hypothesis the
average contribution is approximately ``N(0, sigma / sqrt(d))`` where
``sigma`` is the RMS of the contributions about zero (central limit
theorem), so the observed average can be converted to a z-score.  A large
z-score means the contributions *agree* far more than chance allows — the
eigenvector is picking up a real correlation ("concept") rather than
noise.

:func:`null_contribution_test` performs exactly this test for one point
and one eigenvector.  The vectorized production path lives in
:mod:`repro.core.coherence`; this module is the legible, single-sample
reference implementation that the property tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.normal import norm_cdf, symmetric_mass


@dataclass(frozen=True)
class ContributionTestResult:
    """Outcome of the Hypothesis-2.1 test on one contribution vector.

    Attributes:
        mean_contribution: the observed average contribution
            ``(X . e_i) / d``.
        rms_about_zero: ``sigma`` — root mean square of the contributions
            about the null-hypothesis mean of zero.
        coherence_factor: the z-score
            ``|mean| / (sigma / sqrt(d))`` — how many null standard errors
            the observed mean sits away from zero.
        coherence_probability: ``2 * Phi(z) - 1`` — mass of the null
            distribution within ``z`` standard errors; near 1 means the
            null hypothesis is untenable and the direction is coherent.
        p_value: two-sided p-value ``1 - coherence_probability``.
        n_contributions: ``d``, the number of contributing dimensions.
    """

    mean_contribution: float
    rms_about_zero: float
    coherence_factor: float
    coherence_probability: float
    p_value: float
    n_contributions: int


def null_contribution_test(contributions) -> ContributionTestResult:
    """Test whether a contribution vector deviates from pure noise.

    Args:
        contributions: the per-dimension contributions
            ``c_j = x_j * e_i[j]`` of a point to one eigenvector.

    Returns:
        A :class:`ContributionTestResult`.  A point whose contributions
        are identically zero carries no evidence either way; by
        convention its coherence factor and probability are 0.
    """
    values = np.asarray(contributions, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"contributions must be 1-d, got shape {values.shape}")
    if values.size == 0:
        raise ValueError("contributions must not be empty")
    if not np.all(np.isfinite(values)):
        raise ValueError("contributions must be finite")

    d = values.size
    observed_mean = float(np.mean(values))
    sigma = float(np.sqrt(np.mean(np.square(values))))

    if sigma == 0.0:
        return ContributionTestResult(
            mean_contribution=0.0,
            rms_about_zero=0.0,
            coherence_factor=0.0,
            coherence_probability=0.0,
            p_value=1.0,
            n_contributions=d,
        )

    factor = abs(observed_mean) / (sigma / np.sqrt(d))
    probability = float(symmetric_mass(factor))
    return ContributionTestResult(
        mean_contribution=observed_mean,
        rms_about_zero=sigma,
        coherence_factor=float(factor),
        coherence_probability=probability,
        p_value=1.0 - probability,
        n_contributions=d,
    )


def one_sample_z_test(values, null_mean: float = 0.0, sigma: float | None = None):
    """Two-sided one-sample z-test.

    Args:
        values: 1-d sample.
        null_mean: hypothesized mean.
        sigma: known population standard deviation; estimated from the
            sample (ddof=1) when omitted.

    Returns:
        ``(z, p_value)``.
    """
    sample = np.asarray(values, dtype=np.float64)
    if sample.ndim != 1 or sample.size < 2:
        raise ValueError("need a 1-d sample with at least two observations")
    if not np.all(np.isfinite(sample)):
        raise ValueError("sample must be finite")
    spread = float(np.std(sample, ddof=1)) if sigma is None else float(sigma)
    if spread <= 0.0:
        raise ValueError("standard deviation must be positive")
    z = (float(np.mean(sample)) - null_mean) / (spread / np.sqrt(sample.size))
    p_value = 2.0 * (1.0 - norm_cdf(abs(z)))
    return float(z), float(p_value)
