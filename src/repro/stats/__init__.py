"""Statistics substrate.

Everything the coherence model needs from probability theory, implemented
from scratch: the standard normal distribution (density, cumulative
distribution, quantile), descriptive moments with explicit NaN policies,
and the null-hypothesis test machinery of Hypothesis 2.1 in the paper.
"""

from repro.stats.descriptive import (
    column_means,
    column_stds,
    column_variances,
    fractional_ranks,
    mean,
    root_mean_square,
    standard_deviation,
    variance,
    zscores,
)
from repro.stats.hypothesis_test import (
    ContributionTestResult,
    null_contribution_test,
    one_sample_z_test,
)
from repro.stats.normal import (
    erf,
    erfc,
    norm_cdf,
    norm_pdf,
    norm_quantile,
    symmetric_mass,
)

__all__ = [
    "ContributionTestResult",
    "column_means",
    "column_stds",
    "column_variances",
    "erf",
    "erfc",
    "fractional_ranks",
    "mean",
    "norm_cdf",
    "norm_pdf",
    "norm_quantile",
    "null_contribution_test",
    "one_sample_z_test",
    "root_mean_square",
    "standard_deviation",
    "symmetric_mass",
    "variance",
    "zscores",
]
