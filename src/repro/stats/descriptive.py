"""Descriptive statistics with explicit input validation.

Thin, validated wrappers over the arithmetic the rest of the library
performs constantly: means, variances, RMS values, and z-scores.  The
wrappers exist so that every caller gets the same conventions (population
vs. sample variance is always an explicit argument, NaNs always raise
instead of silently propagating) and so the conventions are tested once.
"""

from __future__ import annotations

import numpy as np


def _as_clean_array(values, name: str = "values") -> np.ndarray:
    """Convert to a float64 array, rejecting NaN/inf and empty input."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must be finite (no NaN or inf entries)")
    return array


def mean(values) -> float:
    """Arithmetic mean of a one-dimensional collection."""
    array = _as_clean_array(values)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-d collection, got shape {array.shape}")
    return float(np.mean(array))


def variance(values, ddof: int = 0) -> float:
    """Variance of a one-dimensional collection.

    ``ddof=0`` gives the population variance (the paper's convention for
    eigenvalues: the eigenvalue of ``e_i`` equals the population variance
    of the data projected onto ``e_i``); ``ddof=1`` gives the unbiased
    sample variance.
    """
    array = _as_clean_array(values)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-d collection, got shape {array.shape}")
    if array.size <= ddof:
        raise ValueError(
            f"need more than ddof={ddof} observations, got {array.size}"
        )
    return float(np.var(array, ddof=ddof))


def standard_deviation(values, ddof: int = 0) -> float:
    """Square root of :func:`variance`."""
    return float(np.sqrt(variance(values, ddof=ddof)))


def root_mean_square(values) -> float:
    """Root mean square about zero: ``sqrt(mean(v_i^2))``.

    This is the ``sigma(e_i, X)`` of the paper's null-hypothesis test —
    the spread of the per-dimension contributions about the hypothesized
    mean of zero (not about their own empirical mean).
    """
    array = _as_clean_array(values)
    return float(np.sqrt(np.mean(np.square(array))))


def zscores(values, ddof: int = 0) -> np.ndarray:
    """Standardize a 1-d collection to zero mean and unit variance."""
    array = _as_clean_array(values)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-d collection, got shape {array.shape}")
    spread = np.std(array, ddof=ddof)
    if spread == 0.0:
        raise ValueError("cannot compute z-scores of a constant collection")
    return (array - np.mean(array)) / spread


def fractional_ranks(values) -> np.ndarray:
    """Average (fractional) ranks of a 1-d collection, 1-based.

    Tied values all receive the mean of the positions they occupy —
    ``[10, 20, 20, 30]`` ranks as ``[1, 2.5, 2.5, 4]``.  This is the
    ranking Spearman's correlation is defined over; ranking ties
    arbitrarily (e.g. via ``argsort(argsort(...))``) injects noise into
    the correlation exactly when ties are common.
    """
    array = _as_clean_array(values)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-d collection, got shape {array.shape}")
    _, inverse, counts = np.unique(
        array, return_inverse=True, return_counts=True
    )
    # For the group holding sorted positions [start, start + count), the
    # average 1-based rank is start + (count + 1) / 2 = csum - (count-1)/2.
    cumulative = np.cumsum(counts)
    average = cumulative - (counts - 1) / 2.0
    return average[inverse]


def column_means(matrix) -> np.ndarray:
    """Per-column means of a 2-d data matrix (rows are observations)."""
    array = _as_clean_array(matrix, "matrix")
    if array.ndim != 2:
        raise ValueError(f"expected a 2-d matrix, got shape {array.shape}")
    return np.mean(array, axis=0)


def column_variances(matrix, ddof: int = 0) -> np.ndarray:
    """Per-column variances of a 2-d data matrix."""
    array = _as_clean_array(matrix, "matrix")
    if array.ndim != 2:
        raise ValueError(f"expected a 2-d matrix, got shape {array.shape}")
    if array.shape[0] <= ddof:
        raise ValueError(
            f"need more than ddof={ddof} rows, got {array.shape[0]}"
        )
    return np.var(array, axis=0, ddof=ddof)


def column_stds(matrix, ddof: int = 0) -> np.ndarray:
    """Per-column standard deviations of a 2-d data matrix."""
    return np.sqrt(column_variances(matrix, ddof=ddof))
