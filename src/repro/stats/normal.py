"""Standard normal distribution, implemented from scratch.

The coherence probability of the paper is ``2 * Phi(z) - 1`` where ``Phi``
is the standard normal CDF (the mass of a standard normal within ``z``
standard deviations of the mean, Section 2 of the paper).  This module
provides ``Phi`` and its inverse without relying on ``scipy``:

* ``erf`` / ``erfc`` — error function via a Taylor series for small
  arguments and a Lentz-evaluated continued fraction for the tail.  Both
  accept scalars or numpy arrays and are accurate to ~1e-14 relative.
* ``norm_cdf`` / ``norm_pdf`` — the distribution itself.
* ``norm_quantile`` — Acklam's rational approximation refined by one
  Halley step, accurate to ~1e-12.
* ``symmetric_mass`` — ``2 * Phi(z) - 1``, the exact quantity the paper
  calls the coherence probability of a coherence factor ``z``.
"""

from __future__ import annotations

import math

import numpy as np

_SQRT_PI = math.sqrt(math.pi)
_SQRT_2 = math.sqrt(2.0)

# Switch point between the Taylor series (small x) and the continued
# fraction (large x).  Both are accurate to ~1e-15 at the boundary.
_ERF_SERIES_LIMIT = 2.0

# Beyond this the double-precision result of erfc underflows to 0 and
# erf is exactly 1.0; short-circuiting avoids pointless iteration.
_ERF_SATURATION = 27.0


def _erf_series_scalar(x: float) -> float:
    """Taylor series ``erf(x) = 2/sqrt(pi) * sum (-1)^n x^(2n+1) / (n!(2n+1))``.

    Converges rapidly for ``|x| <= 2``; each term is derived from the
    previous one so no factorials are materialized.
    """
    total = x
    term = x
    x_squared = x * x
    n = 0
    while True:
        n += 1
        term *= -x_squared / n
        contribution = term / (2 * n + 1)
        total += contribution
        if abs(contribution) <= 1e-17 * abs(total):
            return 2.0 / _SQRT_PI * total


def _erfc_continued_fraction_scalar(x: float) -> float:
    """Continued fraction for ``erfc`` on ``x > 0`` (Abramowitz & Stegun 7.1.14).

    ``erfc(x) = exp(-x^2)/sqrt(pi) * 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...))))``

    evaluated with the modified Lentz algorithm.
    """
    if x > _ERF_SATURATION:
        return 0.0
    tiny = 1e-300
    f = x if x != 0.0 else tiny
    c = f
    d = 0.0
    n = 0
    while True:
        n += 1
        a_n = n / 2.0
        d = x + a_n * d
        if d == 0.0:
            d = tiny
        c = x + a_n / c
        if c == 0.0:
            c = tiny
        d = 1.0 / d
        delta = c * d
        f *= delta
        if abs(delta - 1.0) < 1e-16:
            break
        if n > 10_000:  # pragma: no cover - defensive, never reached
            break
    return math.exp(-x * x) / _SQRT_PI / f


def _erf_scalar(x: float) -> float:
    if math.isnan(x):
        return math.nan
    magnitude = abs(x)
    if magnitude <= _ERF_SERIES_LIMIT:
        value = _erf_series_scalar(magnitude)
    else:
        value = 1.0 - _erfc_continued_fraction_scalar(magnitude)
    return value if x >= 0.0 else -value


def _erfc_scalar(x: float) -> float:
    if math.isnan(x):
        return math.nan
    if x < 0.0:
        return 2.0 - _erfc_scalar(-x)
    if x <= _ERF_SERIES_LIMIT:
        return 1.0 - _erf_series_scalar(x)
    return _erfc_continued_fraction_scalar(x)


# Array paths run the same series/continued-fraction algorithms as the
# scalar reference, but with whole-array numpy iterations instead of a
# Python call per element (np.vectorize(math.erf) costs a Python frame
# per entry, which made batched coherence scoring erf-bound).  Each loop
# iteration advances *every* element; iteration stops when the slowest
# element converges, which the bounded extra multiplications leave
# accurate to well under the ~1e-14 the test suite pins.


def _erf_series_array(x: np.ndarray) -> np.ndarray:
    """Vectorized Taylor series for ``erf`` on ``|x| <= 2``."""
    total = x.copy()
    term = x.copy()
    x_squared = np.square(x)
    n = 0
    while True:
        n += 1
        term *= -x_squared / n
        contribution = term / (2 * n + 1)
        total += contribution
        if np.all(np.abs(contribution) <= 1e-17 * np.abs(total)):
            return 2.0 / _SQRT_PI * total
        if n > 64:  # pragma: no cover - |x| <= 2 converges by ~40 terms
            return 2.0 / _SQRT_PI * total


def _erfc_continued_fraction_array(x: np.ndarray) -> np.ndarray:
    """Vectorized Lentz continued fraction for ``erfc`` on ``x > 2``.

    Each element is frozen the first time its ``delta`` meets the
    convergence criterion — exactly where the scalar loop stops.  The
    per-element freeze is load-bearing: a converged element's delta can
    drift back above the threshold on later iterations, so a joint
    "all currently converged" test can spin forever.  The fraction
    value ``f`` matches the scalar path bit-for-bit; the final result
    can differ by an ulp where ``np.exp`` and ``math.exp`` round
    differently.
    """
    tiny = 1e-300
    f = np.where(x != 0.0, x, tiny)
    c = f.copy()
    d = np.zeros_like(x)
    done = np.zeros(x.shape, dtype=bool)
    n = 0
    while not done.all():
        n += 1
        a_n = n / 2.0
        d = x + a_n * d
        d[d == 0.0] = tiny
        c = x + a_n / c
        c[c == 0.0] = tiny
        d = 1.0 / d
        delta = np.where(done, 1.0, c * d)
        f *= delta
        done |= np.abs(delta - 1.0) < 1e-16
        if n > 10_000:  # pragma: no cover - defensive, never reached
            break
    return np.exp(-np.square(x)) / _SQRT_PI / f


def _erf_array(x: np.ndarray) -> np.ndarray:
    values = np.empty_like(x)
    magnitude = np.abs(x)
    small = magnitude <= _ERF_SERIES_LIMIT
    saturated = magnitude > _ERF_SATURATION
    mid = ~small & ~saturated & ~np.isnan(x)
    values[small] = _erf_series_array(magnitude[small])
    values[mid] = 1.0 - _erfc_continued_fraction_array(magnitude[mid])
    values[saturated] = 1.0
    values[np.isnan(x)] = np.nan
    return np.copysign(values, x)


def _erfc_array(x: np.ndarray) -> np.ndarray:
    values = np.empty_like(x)
    negative = x < 0.0
    magnitude = np.abs(x)
    small = magnitude <= _ERF_SERIES_LIMIT
    saturated = magnitude > _ERF_SATURATION
    mid = ~small & ~saturated & ~np.isnan(x)
    values[small] = 1.0 - _erf_series_array(magnitude[small])
    values[mid] = _erfc_continued_fraction_array(magnitude[mid])
    values[saturated] = 0.0
    values[negative] = 2.0 - values[negative]
    values[np.isnan(x)] = np.nan
    return values


def erf(x):
    """Error function for scalars or arrays.

    Returns a ``float`` for scalar input and an ``ndarray`` otherwise.
    """
    if np.isscalar(x):
        return _erf_scalar(float(x))
    return _erf_array(np.asarray(x, dtype=np.float64))


def erfc(x):
    """Complementary error function ``1 - erf(x)`` without cancellation."""
    if np.isscalar(x):
        return _erfc_scalar(float(x))
    return _erfc_array(np.asarray(x, dtype=np.float64))


def norm_pdf(z):
    """Standard normal density ``exp(-z^2/2) / sqrt(2*pi)``."""
    z = np.asarray(z, dtype=np.float64) if not np.isscalar(z) else float(z)
    coefficient = 1.0 / math.sqrt(2.0 * math.pi)
    if np.isscalar(z):
        return coefficient * math.exp(-0.5 * z * z)
    return coefficient * np.exp(-0.5 * np.square(z))


def norm_cdf(z):
    """Standard normal CDF ``Phi(z) = (1 + erf(z / sqrt(2))) / 2``."""
    if np.isscalar(z):
        return 0.5 * _erfc_scalar(-float(z) / _SQRT_2)
    z = np.asarray(z, dtype=np.float64)
    return 0.5 * _erfc_array(-z / _SQRT_2)


def symmetric_mass(z):
    """Mass of a standard normal within ``z`` standard deviations of 0.

    This is ``2 * Phi(z) - 1``, exactly the coherence probability the
    paper assigns to a coherence factor ``z`` (Section 2).  Negative ``z``
    yields a negative value by odd symmetry, which callers treat as an
    error; the coherence factor is always non-negative.
    """
    if np.isscalar(z):
        return _erf_scalar(float(z) / _SQRT_2)
    z = np.asarray(z, dtype=np.float64)
    return _erf_array(z / _SQRT_2)


# Coefficients of Acklam's rational approximation to the inverse normal
# CDF (relative error < 1.15e-9 before refinement).
_ACKLAM_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_ACKLAM_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_ACKLAM_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_ACKLAM_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)


def _norm_quantile_scalar(p: float) -> float:
    if math.isnan(p):
        return math.nan
    if p <= 0.0:
        if p == 0.0:
            return -math.inf
        raise ValueError(f"probability must lie in [0, 1], got {p}")
    if p >= 1.0:
        if p == 1.0:
            return math.inf
        raise ValueError(f"probability must lie in [0, 1], got {p}")

    p_low = 0.02425
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        z = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    elif p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        z = (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
            * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        )
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        z = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)

    # One Halley refinement step against the exact CDF.
    error = norm_cdf(z) - p
    density = norm_pdf(z)
    if density > 0.0:
        u = error / density
        z -= u / (1.0 + z * u / 2.0)
    return z


_norm_quantile_vectorized = np.vectorize(_norm_quantile_scalar, otypes=[np.float64])


def norm_quantile(p):
    """Inverse of :func:`norm_cdf` (the probit function)."""
    if np.isscalar(p):
        return _norm_quantile_scalar(float(p))
    return _norm_quantile_vectorized(np.asarray(p, dtype=np.float64))
