"""Write-ahead log for mutable serving: crash-safe memtable durability.

:class:`~repro.serve.mutation.MutableIndexServer` keeps un-compacted
mutations in memory; without a log, a crash between compactions would
silently lose acknowledged inserts and deletes — exactly the
approximate-state failure the serving stack's "fail loudly, never
answer approximately" contract forbids.  This module closes that hole
the way production LSM stores do:

* every ``insert(row_id, vector)`` / ``delete(row_id)`` is appended to
  the active generation's log **before** the mutation is acknowledged;
* each record is length-framed and CRC32-checksummed, so replay can
  tell a *torn tail* (a record the crash cut mid-write: silently
  truncated, the op was never durable) from *mid-stream corruption*
  (a damaged record with intact records after it: the log is lying
  about history, replay refuses loudly with
  :class:`~repro.search.snapshot.GenerationError`);
* an ``fsync`` policy (:data:`SYNC_POLICIES`) prices durability
  explicitly — ``"always"`` syncs every append (an acknowledged op can
  never be lost), ``"group"`` syncs every N ops or T ms (bounded-loss
  group commit), ``"off"`` leaves flushing to the OS (loss bounded
  only by the page cache; a *clean* close still syncs under every
  policy);
* logs rotate with generations: a compaction starts the new
  generation's log with the memtable state that survived the cut, so
  the active log alone always reconstructs the memtable, and old logs
  die with their pruned generation directories.

On disk a log is the :data:`WAL_MAGIC` header followed by records::

    record  := u32 payload_length | u32 crc32(payload) | payload
    payload := b"I" | i64 row_id | u32 dims | float64[dims] vector
             | b"D" | i64 row_id

Little-endian throughout; vectors are raw C-order float64 bytes, so a
replayed row is bit-identical to the one the caller inserted — the
replay-identity guarantee rests on this.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass

import numpy as np

from repro.search.snapshot import GenerationError

WAL_MAGIC = b"repro-wal/1\n"
SYNC_POLICIES = ("always", "group", "off")

_FRAME = struct.Struct("<II")          # payload length, crc32(payload)
_INSERT_HEAD = struct.Struct("<qI")    # row id, dims
_DELETE_BODY = struct.Struct("<q")     # row id
_OP_INSERT = b"I"
_OP_DELETE = b"D"


class WalError(GenerationError):
    """A write-ahead log is unreadable or corrupted mid-stream.

    A torn *tail* is not an error — it is the expected signature of a
    crash mid-append and replay silently truncates it.  ``WalError``
    means the log's *history* is damaged: a checksum or framing failure
    with intact records after it, a foreign file, or a record that
    contradicts the state replay has built so far.
    """


def encode_insert(row_id: int, vector: np.ndarray) -> bytes:
    """Payload bytes for one ``insert(row_id, vector)`` record."""
    row = np.ascontiguousarray(vector, dtype=np.float64)
    return (
        _OP_INSERT
        + _INSERT_HEAD.pack(int(row_id), row.size)
        + row.tobytes()
    )


def encode_delete(row_id: int) -> bytes:
    """Payload bytes for one ``delete(row_id)`` record."""
    return _OP_DELETE + _DELETE_BODY.pack(int(row_id))


def _decode(payload: bytes, path: str, offset: int) -> tuple:
    """One checksum-valid payload -> ("insert", id, vector) / ("delete", id)."""
    opcode = payload[:1]
    if opcode == _OP_INSERT:
        if len(payload) < 1 + _INSERT_HEAD.size:
            raise WalError(
                f"{path}: insert record at byte {offset} is malformed"
            )
        row_id, dims = _INSERT_HEAD.unpack_from(payload, 1)
        body = payload[1 + _INSERT_HEAD.size:]
        if len(body) != 8 * dims:
            raise WalError(
                f"{path}: insert record at byte {offset} declares "
                f"{dims} dims but carries {len(body)} payload bytes"
            )
        vector = np.frombuffer(body, dtype="<f8").astype(
            np.float64, copy=True
        )
        return ("insert", row_id, vector)
    if opcode == _OP_DELETE:
        if len(payload) != 1 + _DELETE_BODY.size:
            raise WalError(
                f"{path}: delete record at byte {offset} is malformed"
            )
        (row_id,) = _DELETE_BODY.unpack_from(payload, 1)
        return ("delete", row_id)
    raise WalError(
        f"{path}: unknown record opcode {opcode!r} at byte {offset}"
    )


@dataclass(frozen=True)
class WalReplay:
    """The readable prefix of a write-ahead log.

    Attributes:
        ops: decoded records in append order — ``("insert", row_id,
            vector)`` and ``("delete", row_id)`` tuples.
        valid_bytes: length of the intact prefix (header + whole valid
            records); a writer resuming this log truncates to it first.
        truncated_bytes: torn-tail bytes dropped past ``valid_bytes``
            (0 for a log that ends cleanly).
    """

    ops: tuple
    valid_bytes: int
    truncated_bytes: int

    @property
    def truncated(self) -> bool:
        """Whether a torn tail was dropped."""
        return self.truncated_bytes > 0


def read_wal(path: str) -> WalReplay:
    """Parse a log written by :class:`WalWriter`, tolerating a torn tail.

    The tail rule mirrors what a crash can physically produce: an
    append is one sequential write, so only the *last* record can be
    incomplete.  Any framing or checksum failure **followed by more
    bytes** is therefore mid-stream corruption and raises
    :class:`WalError`; a failure that runs into end-of-file is a torn
    tail and is truncated silently (those ops were never acknowledged
    as durable under ``sync_policy="always"``).

    Raises:
        WalError: foreign/garbled header or mid-stream corruption.
        OSError: the file cannot be read at all (missing file included
            — the caller decides whether absence is legal).
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < len(WAL_MAGIC):
        if WAL_MAGIC.startswith(blob):
            # A crash during log creation tore the header itself; there
            # is nothing after it, so nothing was lost.
            return WalReplay(ops=(), valid_bytes=0,
                             truncated_bytes=len(blob))
        raise WalError(f"{path}: not a write-ahead log (bad header)")
    if blob[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalError(f"{path}: not a write-ahead log (bad header)")
    ops: list = []
    offset = len(WAL_MAGIC)
    n = len(blob)
    while offset < n:
        if n - offset < _FRAME.size:
            break  # torn frame header
        length, crc = _FRAME.unpack_from(blob, offset)
        start = offset + _FRAME.size
        if length > n - start:
            break  # torn payload
        payload = blob[start:start + length]
        end = start + length
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            if end == n:
                break  # torn final record
            raise WalError(
                f"{path}: checksum mismatch at byte {offset} with "
                f"{n - end} bytes following — mid-stream corruption, "
                "not a torn tail"
            )
        ops.append(_decode(payload, path, offset))
        offset = end
    return WalReplay(
        ops=tuple(ops),
        valid_bytes=offset,
        truncated_bytes=n - offset,
    )


class WalWriter:
    """Append-only writer for one generation's log.

    Not thread-safe by itself — :class:`MutableIndexServer` calls it
    under its view lock, which is also what makes "append before
    acknowledge" atomic with the in-memory mutation.

    Args:
        path: log file; created (with a durable header) if absent.
        sync_policy: one of :data:`SYNC_POLICIES` — ``"always"`` fsyncs
            per append, ``"group"`` fsyncs once ``group_ops`` appends
            or ``group_interval_ms`` milliseconds have accumulated
            since the last sync, ``"off"`` never fsyncs on append.
            Every policy flushes the user-space buffer per append and
            fsyncs on :meth:`close`, so only a crash (not a clean
            shutdown) can lose the group/off windows.
        group_ops / group_interval_ms: the group-commit thresholds.
        truncate_to: byte length to truncate an existing file to before
            appending — pass :attr:`WalReplay.valid_bytes` when
            resuming past a torn tail.
    """

    def __init__(
        self,
        path: str,
        *,
        sync_policy: str = "always",
        group_ops: int = 64,
        group_interval_ms: float = 50.0,
        truncate_to: int | None = None,
    ) -> None:
        if sync_policy not in SYNC_POLICIES:
            raise ValueError(
                f"sync_policy must be one of {SYNC_POLICIES}, "
                f"got {sync_policy!r}"
            )
        if group_ops < 1:
            raise ValueError(f"group_ops must be positive, got {group_ops}")
        if group_interval_ms <= 0:
            raise ValueError(
                f"group_interval_ms must be positive, "
                f"got {group_interval_ms}"
            )
        self.path = path
        self.sync_policy = sync_policy
        self._group_ops = group_ops
        self._group_interval = group_interval_ms / 1e3
        self.n_appends = 0
        self.n_syncs = 0
        self._pending = 0
        self._last_sync = time.perf_counter()
        fresh = not os.path.exists(path)
        self._file = open(path, "wb" if fresh else "r+b")
        try:
            if fresh:
                self._file.write(WAL_MAGIC)
                self._file.flush()
                os.fsync(self._file.fileno())
                _fsync_dir(os.path.dirname(path) or ".")
            else:
                if truncate_to is not None:
                    self._file.truncate(max(truncate_to, 0))
                    if truncate_to < len(WAL_MAGIC):
                        # The header itself was torn; rewrite it so the
                        # log is well-formed again.
                        self._file.seek(0)
                        self._file.truncate(0)
                        self._file.write(WAL_MAGIC)
                    self._file.flush()
                    os.fsync(self._file.fileno())
                self._file.seek(0, os.SEEK_END)
        except BaseException:
            self._file.close()
            raise

    def append_insert(self, row_id: int, vector: np.ndarray) -> None:
        """Log one insert; durable per ``sync_policy`` on return."""
        self._append(encode_insert(row_id, vector))

    def append_delete(self, row_id: int) -> None:
        """Log one delete; durable per ``sync_policy`` on return."""
        self._append(encode_delete(row_id))

    def _append(self, payload: bytes) -> None:
        if self._file.closed:
            raise ValueError(f"{self.path}: write-ahead log is closed")
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        self._file.write(_FRAME.pack(len(payload), crc) + payload)
        # Always leave the kernel holding the bytes: sync_policy prices
        # the fsync (durability across power loss), not visibility.
        self._file.flush()
        self.n_appends += 1
        self._pending += 1
        if self.sync_policy == "always":
            self.sync()
        elif self.sync_policy == "group" and (
            self._pending >= self._group_ops
            or time.perf_counter() - self._last_sync >= self._group_interval
        ):
            self.sync()

    def sync(self) -> None:
        """Force an fsync of everything appended so far."""
        if self._file.closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._pending = 0
        self._last_sync = time.perf_counter()
        self.n_syncs += 1

    def close(self) -> None:
        """Sync and close (idempotent); a clean shutdown never loses ops."""
        if self._file.closed:
            return
        self.sync()
        self._file.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _fsync_dir(path: str) -> None:
    """fsync a directory so a just-created entry survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
