"""Mutable serving: a memtable over immutable snapshot generations.

The serving stack below this module is frozen-corpus by construction —
an :class:`~repro.serve.server.IndexServer` answers from one immutable
snapshot.  Production corpora mutate.  This module adds mutation the
LSM way, without ever answering approximately:

* the **base** is the active snapshot generation
  (:class:`~repro.search.snapshot.GenerationStore`), served by an
  ordinary ``IndexServer``;
* the **memtable** is an in-memory insert/delete delta: inserted rows
  keyed by their global row id, plus a tombstone set over both base and
  memtable rows;
* every query is answered as an **exact merge**: the base server
  returns its top-``k + |tombstones|`` (so at least ``k`` live base
  rows survive masking), dead rows are masked out, the memtable's live
  rows are scanned with the family's sequential distance arithmetic,
  and the pooled candidates are re-selected by ``(distance, global
  id)`` — exactly the order a fresh index built over the live rowset
  (rows in ascending global-id order) would produce, because every
  index in the family breaks distance ties by lower corpus index.

A background **compactor** folds the memtable into the base: it builds
a fresh index over the live rowset, publishes it as a new generation
(reason ``"size"``, ``"drift"``, or ``"manual"``), and **hot-swaps**
the serving view.  The swap protocol guarantees in-flight queries are
never dropped or mis-answered:

1. the new generation is built and published while the old view keeps
   serving (queries merge against the memtable snapshot they captured,
   so concurrent mutations never skew an in-flight answer);
2. under the view lock the server reference is swapped, the compacted
   cut is trimmed from the memtable, and tombstones of rows that were
   compacted away are dropped (tombstones of cut rows deleted *during*
   the build are kept — those rows made it into the new base and must
   stay masked);
3. the old view is reference-counted: each query pins the view it
   captured (capture and base submission happen under the same lock
   acquisition, so a submission can never race the close), and the old
   ``IndexServer`` — whose deadline reaper keeps releasing deadlined
   callers throughout — is closed only after its last pinned query
   resolves;
4. old generations beyond ``keep_generations`` are pruned.

Because compaction rebuilds from scratch, a ``projscreen`` generation
refits its screening projection over the live corpus — re-reduction is
the rebuild.  When ``drift_threshold`` is set, an
:class:`~repro.dynamic.IncrementalMoments` accumulator tracks the live
distribution (updated on insert, downdated on delete) and a
:class:`~repro.dynamic.DriftMonitor` frozen at each generation's basis
triggers that rebuild automatically once the captured-energy ratio
decays past the threshold.

Only **exact** kinds (:data:`repro.search.registry.EXACT_KINDS`) can be
served mutably: their answers are the true Euclidean top-k, a function
of the live rows alone, which is what makes base + delta merge equal a
fresh rebuild.  LSH (approximate probing) and IGrid (corpus-derived
scoring) are refused at construction.

The memtable is durable: every insert/delete is appended to the active
generation's **write-ahead log** (:mod:`repro.serve.wal`) *before* it
is acknowledged, fsync'd per the ``wal_sync`` policy (``"always"`` —
an acked op can never be lost; ``"group"`` / ``"off"`` trade bounded
loss windows for throughput).  On resume the server replays the log —
tolerating a torn tail, refusing mid-stream corruption — and
reconstructs memtable, tombstones, ``next_row_id``, and drift moments
in append order, so the resumed server answers bit-identically to one
that never crashed.  Each compaction rotates the log: the new
generation's WAL is seeded with the surviving memtable state *before*
the manifest repoint (the single commit point), so no crash window
loses acknowledged ops, and superseded logs die with their pruned
generation directories.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.search.registry import EXACT_KINDS, build_index, index_spec
from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    QueryStats,
    combine_stats,
    validate_corpus,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.search.snapshot import (
    GenerationInfo,
    GenerationStore,
    read_snapshot,
)
from repro.serve.batcher import BatchPolicy
from repro.serve.errors import ServerClosedError
from repro.serve.server import IndexServer
from repro.serve.wal import SYNC_POLICIES, WalError, WalWriter, read_wal

COMPACTION_REASONS = ("initial", "size", "drift", "manual")


class MutationError(ValueError):
    """A mutable-serving operation is invalid (kind, ids, or state)."""


class _View:
    """One served generation: an IndexServer pinned by in-flight queries.

    ``refs`` counts queries that captured this view; the compactor
    retires a view after the swap and closes its server only once the
    last pinned query released it (``drained``).
    """

    __slots__ = ("info", "server", "base_ids", "points", "refs",
                 "retired", "drained")

    def __init__(
        self, info: GenerationInfo, server: IndexServer, points
    ) -> None:
        self.info = info
        self.server = server
        self.base_ids = info.load_ids()
        self.points = points  # mmap'd (n, d) corpus of the generation
        self.refs = 0
        self.retired = False
        self.drained = threading.Event()

    def local_of(self, row_id: int) -> int:
        """Local row index of global ``row_id``, or ``-1`` if absent."""
        position = int(np.searchsorted(self.base_ids, row_id))
        if (
            position < self.base_ids.size
            and int(self.base_ids[position]) == row_id
        ):
            return position
        return -1


class MutableIndexServer:
    """Serve and mutate one corpus with exact, rebuild-identical answers.

    Args:
        root: generation-store directory.  If it holds a manifest the
            server resumes from the active generation (pass
            ``points=None``); otherwise ``points`` seeds generation 0.
        points: initial ``(n, d)`` corpus for a fresh store.
        row_ids: global ids for the seed rows (strictly ascending);
            defaults to ``0..n-1``.  A sharded coordinator passes each
            member its slice of the global id space here.
        kind: index kind — must be exact
            (:data:`~repro.search.registry.EXACT_KINDS`).  On resume it
            must match the active generation.
        index_kwargs: constructor keywords applied to *every* rebuild
            (e.g. ``subspace_dim``/``ordering`` for projscreen — the
            projection itself is refit from the live corpus at each
            compaction, never carried over).
        n_workers / policy / cache_capacity / mmap_points /
        start_method / default_deadline_ms: forwarded to the per-
            generation :class:`IndexServer`.
        compact_threshold: auto-compact once the memtable holds this
            many operations (inserted rows + tombstones); ``None``
            disables size-triggered compaction.
        drift_threshold: captured-energy ratio below which a drift
            compaction is triggered (projscreen only); ``None``
            disables drift monitoring.
        keep_generations: generations retained after each compaction.
        wal_sync: write-ahead-log fsync policy, one of
            :data:`~repro.serve.wal.SYNC_POLICIES` — ``"always"``
            fsyncs every append (an acknowledged op survives any
            crash), ``"group"`` fsyncs every ``wal_group_ops`` appends
            or ``wal_group_interval_ms`` milliseconds (bounded loss
            window), ``"off"`` leaves flushing to the OS.  A clean
            :meth:`close` syncs under every policy.
        wal_group_ops / wal_group_interval_ms: the ``"group"``
            commit thresholds.
    """

    def __init__(
        self,
        root: str,
        points=None,
        *,
        row_ids=None,
        kind: str = "bruteforce",
        index_kwargs: dict | None = None,
        n_workers: int = 0,
        policy: BatchPolicy | None = None,
        cache_capacity: int = 0,
        mmap_points: bool = True,
        start_method: str | None = None,
        default_deadline_ms: float | None = None,
        compact_threshold: int | None = None,
        drift_threshold: float | None = None,
        keep_generations: int = 2,
        wal_sync: str = "always",
        wal_group_ops: int = 64,
        wal_group_interval_ms: float = 50.0,
    ) -> None:
        if wal_sync not in SYNC_POLICIES:
            raise ValueError(
                f"wal_sync must be one of {SYNC_POLICIES}, "
                f"got {wal_sync!r}"
            )
        spec = index_spec(kind)
        if not spec.exact:
            raise MutationError(
                f"index kind {kind!r} cannot serve mutations: delta-merge "
                "answers are provably identical to a fresh rebuild only "
                "for exact kinds (answers a function of the live rows "
                f"alone); choose one of {list(EXACT_KINDS)}"
            )
        if compact_threshold is not None and compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be positive or None, "
                f"got {compact_threshold}"
            )
        if drift_threshold is not None and kind != "projscreen":
            raise MutationError(
                "drift_threshold monitors the projscreen screening "
                f"basis; it does not apply to kind {kind!r}"
            )
        if keep_generations < 1:
            raise ValueError(
                f"keep_generations must be positive, got {keep_generations}"
            )
        self._kind = kind
        self._index_kwargs = dict(index_kwargs or {})
        self._server_options = {
            "n_workers": n_workers,
            "policy": policy,
            "cache_capacity": cache_capacity,
            "mmap_points": mmap_points,
            "start_method": start_method,
            "default_deadline_ms": default_deadline_ms,
        }
        self._compact_threshold = compact_threshold
        self._drift_threshold = drift_threshold
        self._keep_generations = keep_generations
        self._wal_options = {
            "sync_policy": wal_sync,
            "group_ops": wal_group_ops,
            "group_interval_ms": wal_group_interval_ms,
        }
        self._store = GenerationStore(root)

        resuming = self._store.exists()
        if resuming:
            if points is not None:
                raise MutationError(
                    f"{root}: generation store already initialized; "
                    "resume with points=None"
                )
            info = self._store.active()
            if info.kind != kind:
                raise MutationError(
                    f"{root}: active generation holds kind "
                    f"{info.kind!r}, not {kind!r}"
                )
        else:
            if points is None:
                raise MutationError(
                    f"{root}: no generation store; pass the initial "
                    "corpus as points="
                )
            corpus = validate_corpus(points)
            if row_ids is None:
                ids = np.arange(corpus.shape[0], dtype=np.intp)
            else:
                ids = np.asarray(row_ids, dtype=np.intp)
            index = build_index(kind, corpus, **self._index_kwargs)
            info = self._store.publish(
                index,
                ids,
                next_row_id=int(ids[-1]) + 1 if ids.size else 0,
                reason="initial",
            )

        # The view lock guards the serving view, the memtable, the
        # tombstones, and the id counter.  Queries hold it only to
        # capture a consistent (view, delta, tombstones) triple and
        # submit the base request; mutations hold it to update state.
        self._lock = threading.Lock()
        self._view = self._open_view(info)
        self._memtable: dict[int, np.ndarray] = {}
        self._tombstones: set[int] = set()
        self._next_row_id = info.next_row_id
        self._n_live = info.n_points
        self._delta_dirty = True
        self._delta_rows = np.empty((0, self.dimensionality))
        self._delta_ids = np.empty(0, dtype=np.intp)
        self._closed = False
        self.n_compactions = 0
        self.n_drift_compactions = 0

        self._moments = None
        self._monitor = None
        self._drift_pending = False
        if drift_threshold is not None:
            from repro.dynamic import IncrementalMoments

            self._moments = IncrementalMoments(self.dimensionality)
            self._moments.update(np.asarray(self._view.points))
            self._arm_drift_monitor()

        # Recover, then open the log for appends.  Replay runs before
        # the compactor thread exists, so it owns all state; the writer
        # truncates the recovered torn tail (if any) so the log is
        # well-formed before the first new append lands after it.
        replay = None
        if resuming:
            try:
                replay = read_wal(info.wal_path)
            except FileNotFoundError:
                # A pre-WAL generation never wrote a log; its memtable
                # was declared volatile, so there is nothing to replay.
                replay = None
        try:
            self._wal = WalWriter(
                info.wal_path,
                truncate_to=(
                    replay.valid_bytes if replay is not None else None
                ),
                **self._wal_options,
            )
        except BaseException:
            self._view.server.close()
            raise
        if replay is not None and replay.ops:
            try:
                self._replay(replay.ops)
            except BaseException:
                self._wal.close()
                self._view.server.close()
                raise

        # One compaction at a time; manual compact() and the background
        # compactor serialize here.
        self._compact_lock = threading.Lock()
        self._wake = threading.Event()
        self._compactor = None
        if compact_threshold is not None or drift_threshold is not None:
            self._compactor = threading.Thread(
                target=self._compactor_loop,
                name="repro-compactor",
                daemon=True,
            )
            self._compactor.start()
            # A replayed memtable may already be over a trigger; fire
            # the compactor immediately rather than on the next op.
            with self._lock:
                self._check_triggers_locked()

    # -- introspection -------------------------------------------------

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def dimensionality(self) -> int:
        return self._view.server.dimensionality

    @property
    def n_live(self) -> int:
        """Rows a fresh rebuild right now would contain."""
        with self._lock:
            return self._n_live

    @property
    def generation_id(self) -> int:
        """Id of the generation currently serving as the base."""
        with self._lock:
            return self._view.info.generation_id

    @property
    def memtable_ops(self) -> int:
        """Un-compacted operations (inserted rows + tombstones)."""
        with self._lock:
            return len(self._memtable) + len(self._tombstones)

    @property
    def next_row_id(self) -> int:
        """The id the next coordinator-less insert would be assigned."""
        with self._lock:
            return self._next_row_id

    @property
    def wal_sync(self) -> str:
        """The write-ahead log's fsync policy."""
        return self._wal_options["sync_policy"]

    @property
    def wal_appends(self) -> int:
        """Records appended to the *current* generation's log."""
        with self._lock:
            return self._wal.n_appends

    @property
    def wal_syncs(self) -> int:
        """fsyncs issued by the *current* generation's log."""
        with self._lock:
            return self._wal.n_syncs

    @property
    def store(self) -> GenerationStore:
        return self._store

    def stats(self):
        """Serving metrics of the current generation's server."""
        with self._lock:
            return self._view.server.stats()

    # -- mutation ------------------------------------------------------

    def insert(self, vector, *, row_id: int | None = None) -> int:
        """Add one row to the live rowset; returns its global row id.

        ``row_id`` may be supplied by a coordinator that allocates the
        global sequence (sharded serving); it must continue the
        sequence, never reuse an id.
        """
        row = validate_query(vector, self.dimensionality)
        with self._lock:
            self._require_open()
            if row_id is None:
                row_id = self._next_row_id
            elif row_id < self._next_row_id:
                raise MutationError(
                    f"row_id {row_id} is not fresh: ids below "
                    f"{self._next_row_id} were already allocated"
                )
            # Log before touching any state: an op is acknowledged only
            # once it is durable per the sync policy, and a failed
            # append leaves the server exactly as it was.
            self._wal.append_insert(row_id, row)
            self._next_row_id = row_id + 1
            self._memtable[row_id] = row
            self._n_live += 1
            self._delta_dirty = True
            if self._moments is not None:
                self._moments.update(row)
            self._check_triggers_locked()
        return row_id

    def delete(self, row_id: int) -> None:
        """Remove one live row (base or memtable) from the rowset.

        Raises:
            KeyError: when ``row_id`` is not a live row.
        """
        with self._lock:
            self._require_open()
            if row_id in self._tombstones:
                raise KeyError(f"row id {row_id} is already deleted")
            if row_id in self._memtable:
                row = self._memtable[row_id]
            else:
                local = self._view.local_of(row_id)
                if local < 0:
                    raise KeyError(f"unknown row id {row_id}")
                row = np.asarray(
                    self._view.points[local], dtype=np.float64
                )
            # Log before touching any state (see insert).
            self._wal.append_delete(row_id)
            # The row is tombstoned, not evicted: an in-flight
            # compaction may already have cut this memtable entry into
            # the next base, where only the tombstone can mask it.
            self._tombstones.add(row_id)
            self._n_live -= 1
            self._delta_dirty = True
            if self._moments is not None and self._moments.count > 0:
                self._moments.downdate(row)
            self._check_triggers_locked()

    # -- queries -------------------------------------------------------

    def query(
        self, query, k: int = 1, *, deadline_ms: float | None = None
    ) -> KnnResult:
        """Exact top-``k`` over the live rowset (global row ids).

        Bit-identical to ``build_index(kind, live_rows).query(...)``
        with local indices mapped to global ids — neighbors, distances,
        and tie-breaks included.
        """
        vector = validate_query(query, self.dimensionality)
        view, pending, rows, ids, tombs, k = self._begin(vector, k,
                                                         deadline_ms)
        try:
            delta = self._scan_delta(rows, ids, vector, k)
            base = pending.result() if pending is not None else None
            return self._merge(base, view, tombs, delta, k)
        finally:
            self._release(view)

    def query_batch(
        self, queries, k: int = 1, *, deadline_ms: float | None = None
    ) -> BatchKnnResult:
        """Row-wise :meth:`query` through one explicit base batch.

        ``deadline_ms`` carries the same contract as :meth:`query` —
        it bounds the whole batch and is propagated to the base
        server's explicit-batch submission.
        """
        array = validate_queries(queries, self.dimensionality)
        with self._lock:
            self._require_open()
            view = self._view
            view.refs += 1
            k = validate_k(k, self._n_live)
            rows, ids = self._delta_snapshot_locked()
            tombs = frozenset(self._tombstones)
            k_base = min(view.base_ids.size, k + len(tombs))
        try:
            base_batch = None
            if k_base > 0 and array.shape[0] > 0:
                base_batch = view.server.query_batch(
                    array, k_base, deadline_ms=deadline_ms
                )
            results = tuple(
                self._merge(
                    base_batch.results[row] if base_batch is not None
                    else None,
                    view,
                    tombs,
                    self._scan_delta(rows, ids, array[row], k),
                    k,
                )
                for row in range(array.shape[0])
            )
            return BatchKnnResult(
                results=results,
                stats=combine_stats(r.stats for r in results),
            )
        finally:
            self._release(view)

    # -- compaction ----------------------------------------------------

    def compact(self, reason: str = "manual") -> GenerationInfo:
        """Fold the memtable into a new generation and hot-swap to it.

        Rebuilds an index over the live rowset (rows ascending by
        global id — the order that makes local-index tie-breaks equal
        global-id tie-breaks), publishes it, swaps the serving view,
        then closes the old server after its in-flight queries drain.
        """
        if reason not in COMPACTION_REASONS:
            raise ValueError(
                f"reason must be one of {COMPACTION_REASONS}, "
                f"got {reason!r}"
            )
        with self._compact_lock:
            with self._lock:
                self._require_open()
                old_view = self._view
                cut_ids = tuple(self._memtable.keys())
                cut_rows = [self._memtable[gid] for gid in cut_ids]
                tombs = frozenset(self._tombstones)
                next_row_id = self._next_row_id
            base_ids = old_view.base_ids
            base_live = np.fromiter(
                (gid not in tombs for gid in base_ids),
                dtype=bool,
                count=base_ids.size,
            )
            live_cut = [
                (gid, row)
                for gid, row in zip(cut_ids, cut_rows)
                if gid not in tombs
            ]
            n_rows = int(base_live.sum()) + len(live_cut)
            if n_rows == 0:
                raise MutationError(
                    "cannot compact an empty rowset: every index kind "
                    "requires at least one corpus row; insert before "
                    "compacting"
                )
            all_ids = np.concatenate([
                base_ids[base_live],
                np.array(
                    [gid for gid, _ in live_cut], dtype=np.intp
                ).reshape(-1),
            ])
            all_rows = np.concatenate([
                np.asarray(old_view.points)[base_live],
                np.array([row for _, row in live_cut]).reshape(
                    len(live_cut), -1
                ),
            ]) if live_cut else np.asarray(old_view.points)[base_live]
            order = np.argsort(all_ids, kind="stable")
            live_ids = all_ids[order]
            live_rows = np.ascontiguousarray(all_rows[order])

            index = build_index(
                self._kind, live_rows, **self._index_kwargs
            )
            # prepare/commit straddle the WAL rotation: the new
            # generation's directory (snapshot, ids) goes durably to
            # disk first, its log is seeded with the surviving memtable
            # state, and only then does commit repoint the manifest —
            # the single commit point.  A crash anywhere before it
            # resumes from the old generation + old log (nothing lost);
            # a crash after it resumes from the new pair.
            pending = self._store.prepare(
                index, live_ids, next_row_id=next_row_id, reason=reason
            )
            new_view = self._open_view(pending)
            base_set = set(int(gid) for gid in live_ids)
            cut_set = set(cut_ids)

            new_wal = None
            try:
                with self._lock:
                    # Rotation is atomic with mutations: an op logged
                    # after the survivor capture but before the swap
                    # would land only in the superseded log and vanish.
                    # Survivors (inserted during the build) are carried
                    # over in memtable insertion order — replay rebuilds
                    # the dict in the same order, which the delta scan's
                    # stable-sort tie-break depends on.
                    survivors = {
                        gid: row
                        for gid, row in self._memtable.items()
                        if gid not in cut_set
                    }
                    # Tombstones of rows that were compacted away are
                    # satisfied (the row is simply absent from the new
                    # base); tombstones of rows that made the cut
                    # *after* capture — deleted mid-build — must
                    # survive to mask them in the new base.
                    new_tombs = {
                        gid
                        for gid in self._tombstones
                        if gid in base_set or gid in survivors
                    }
                    new_wal = WalWriter(
                        pending.wal_path, **self._wal_options
                    )
                    for gid, row in survivors.items():
                        new_wal.append_insert(gid, row)
                    for gid in sorted(new_tombs):
                        new_wal.append_delete(gid)
                    new_wal.sync()
                    info = self._store.commit(pending)
                    # -- commit point: adopt the new generation --
                    self._view = new_view
                    self._memtable = survivors
                    self._tombstones = new_tombs
                    old_wal, self._wal = self._wal, new_wal
                    self._delta_dirty = True
                    self._drift_pending = False
                    if self._moments is not None:
                        # The moments track the live rowset, which a
                        # compaction does not change — only the
                        # monitor's frozen basis and reference
                        # covariance re-anchor.
                        self._arm_drift_monitor()
                    self.n_compactions += 1
                    if reason == "drift":
                        self.n_drift_compactions += 1
                    old_view.retired = True
                    drained = old_view.refs == 0
            except BaseException:
                # Nothing was adopted: in-memory state is untouched and
                # the old log keeps every op.  The orphan generation
                # directory (and its seeded log) is swept by the next
                # successful prune.
                if new_wal is not None:
                    new_wal.close()
                new_view.server.close()
                raise
            if drained:
                old_view.drained.set()
            old_wal.close()
            # In-flight queries pinned to the old view finish against
            # it; only then is its server closed (batcher flush + pool
            # drain + reaper shutdown, in that order, so deadlines keep
            # holding throughout the swap).
            old_view.drained.wait()
            old_view.server.close()
            self._store.prune(keep=self._keep_generations)
            return info

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Stop the compactor and the serving stack.

        The write-ahead log is synced and closed, so a clean shutdown
        loses nothing under any ``wal_sync`` policy; a later resume
        replays the log and continues bit-identically.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake.set()
        if self._compactor is not None:
            self._compactor.join()
        # Serialize with any manual compaction still publishing.
        with self._compact_lock:
            self._view.server.close()
            self._wal.close()

    def __enter__(self) -> "MutableIndexServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -----------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ServerClosedError("mutable server is closed")

    def _open_view(self, info: GenerationInfo) -> _View:
        server = IndexServer(info.snapshot_path, **self._server_options)
        points = read_snapshot(
            info.snapshot_path,
            None,
            required=("points",),
            mmap_points=True,
        )["points"]
        return _View(info, server, points)

    def _replay(self, ops) -> None:
        """Apply a recovered log on top of the freshly opened base.

        Mirrors :meth:`insert`/:meth:`delete` exactly — same
        validation, same memtable insertion order (the delta scan's
        stable-sort tie-break depends on it), same moments updates —
        but never re-logs: every record is already durable.  A record
        that contradicts the state built so far means the log is lying
        about history, which is corruption, not a torn tail.

        Raises:
            WalError: a replayed op is semantically invalid (id reuse,
                unknown or double delete, dimensionality mismatch).
        """
        path = self._view.info.wal_path
        for op in ops:
            if op[0] == "insert":
                _, row_id, row = op
                if row.size != self.dimensionality:
                    raise WalError(
                        f"{path}: replayed insert of row {row_id} has "
                        f"{row.size} dims, generation serves "
                        f"{self.dimensionality}"
                    )
                if row_id < self._next_row_id:
                    raise WalError(
                        f"{path}: replayed insert reuses row id "
                        f"{row_id} (ids below {self._next_row_id} were "
                        "already allocated)"
                    )
                self._next_row_id = row_id + 1
                self._memtable[row_id] = row
                self._n_live += 1
                if self._moments is not None:
                    self._moments.update(row)
            else:
                _, row_id = op
                if row_id in self._tombstones:
                    raise WalError(
                        f"{path}: replayed delete of row {row_id} "
                        "which an earlier record already deleted"
                    )
                if row_id in self._memtable:
                    row = self._memtable[row_id]
                else:
                    local = self._view.local_of(row_id)
                    if local < 0:
                        raise WalError(
                            f"{path}: replayed delete of unknown row "
                            f"id {row_id}"
                        )
                    row = np.asarray(
                        self._view.points[local], dtype=np.float64
                    )
                self._tombstones.add(row_id)
                self._n_live -= 1
                if self._moments is not None and self._moments.count > 0:
                    self._moments.downdate(row)
        self._delta_dirty = True

    def _arm_drift_monitor(self) -> None:
        """Freeze the drift monitor at the active generation's basis."""
        if self._kind != "projscreen" or self._moments is None:
            return
        from repro.dynamic import DriftMonitor

        from repro.search.projected import ProjectionScreenedIndex

        index = ProjectionScreenedIndex.load(
            self._view.info.snapshot_path, mmap_points=True
        )
        self._monitor = DriftMonitor(
            index.projection.matrix,
            self._moments.covariance(),
            threshold=self._drift_threshold,
        )

    def _check_triggers_locked(self) -> None:
        """Under the view lock: arm the compactor if a trigger fired."""
        fire = False
        if (
            self._compact_threshold is not None
            and len(self._memtable) + len(self._tombstones)
            >= self._compact_threshold
        ):
            fire = True
        if (
            self._monitor is not None
            and not self._drift_pending
            and self._moments.count >= 2
            and self._monitor.should_refit(self._moments.covariance())
        ):
            self._drift_pending = True
            fire = True
        if fire and self._compactor is not None:
            self._wake.set()

    def _compactor_loop(self) -> None:
        while True:
            self._wake.wait()
            self._wake.clear()
            with self._lock:
                if self._closed:
                    return
                if self._drift_pending:
                    reason = "drift"
                elif (
                    self._compact_threshold is not None
                    and len(self._memtable) + len(self._tombstones)
                    >= self._compact_threshold
                ):
                    reason = "size"
                else:
                    reason = None
            if reason is not None:
                try:
                    self.compact(reason=reason)
                except MutationError:
                    # e.g. the rowset emptied out; the next mutation
                    # re-arms the trigger.
                    pass

    def _delta_snapshot_locked(self) -> tuple[np.ndarray, np.ndarray]:
        """The memtable's live rows + ids (cached until dirtied)."""
        if self._delta_dirty:
            live = [
                (gid, row)
                for gid, row in self._memtable.items()
                if gid not in self._tombstones
            ]
            if live:
                self._delta_ids = np.array(
                    [gid for gid, _ in live], dtype=np.intp
                )
                self._delta_rows = np.array([row for _, row in live])
            else:
                self._delta_ids = np.empty(0, dtype=np.intp)
                self._delta_rows = np.empty((0, self.dimensionality))
            self._delta_dirty = False
        return self._delta_rows, self._delta_ids

    def _begin(self, vector, k, deadline_ms):
        """Capture a consistent view and submit the base request.

        Capture and submission share one lock acquisition: the swap
        also runs under this lock, so a base request can only be
        submitted to a server that is still the active view (or a
        retired one that is pinned by this query's reference and
        therefore not yet closed) — never to a closed server.
        """
        with self._lock:
            self._require_open()
            view = self._view
            view.refs += 1
            try:
                k = validate_k(k, self._n_live)
                rows, ids = self._delta_snapshot_locked()
                tombs = frozenset(self._tombstones)
                k_base = min(view.base_ids.size, k + len(tombs))
                pending = None
                if k_base > 0:
                    pending = view.server.submit(
                        vector, k_base, deadline_ms=deadline_ms
                    )
            except BaseException:
                self._release_locked(view)
                raise
        return view, pending, rows, ids, tombs, k

    def _release(self, view: _View) -> None:
        with self._lock:
            self._release_locked(view)

    @staticmethod
    def _release_locked(view: _View) -> None:
        view.refs -= 1
        if view.retired and view.refs == 0:
            view.drained.set()

    @staticmethod
    def _scan_delta(rows, ids, vector, k):
        """Exact top-``k`` of the memtable's live rows.

        Same arithmetic as the family's sequential scan — per-row
        subtract, square, sum, then a stable argsort — so a delta row's
        distance has exactly the bits a fresh index would produce, and
        ascending-id storage makes the stable sort break ties by lower
        global id.
        """
        if rows.shape[0] == 0:
            return KnnResult(neighbors=(), stats=QueryStats())
        gaps = rows - vector
        squared = np.sum(np.square(gaps), axis=1)
        order = np.argsort(squared, kind="stable")[:k]
        neighbors = tuple(
            Neighbor(
                index=int(ids[i]),
                distance=float(np.sqrt(squared[i])),
            )
            for i in order
        )
        return KnnResult(
            neighbors=neighbors,
            stats=QueryStats(points_scanned=int(rows.shape[0])),
        )

    @staticmethod
    def _merge(base, view, tombs, delta, k) -> KnnResult:
        """Mask dead base rows, pool with the delta, re-select top-k.

        Ordering by ``(distance, global id)`` reproduces the family's
        (distance, lower corpus index) tie-break of a fresh index whose
        rows are sorted by ascending global id.
        """
        candidates: list[tuple[float, int]] = []
        stats = [delta.stats]
        if base is not None:
            stats.append(base.stats)
            base_ids = view.base_ids
            for neighbor in base.neighbors:
                gid = int(base_ids[neighbor.index])
                if gid not in tombs:
                    candidates.append((neighbor.distance, gid))
        for neighbor in delta.neighbors:
            candidates.append((neighbor.distance, neighbor.index))
        candidates.sort()
        return KnnResult(
            neighbors=tuple(
                Neighbor(index=gid, distance=distance)
                for distance, gid in candidates[:k]
            ),
            stats=combine_stats(stats),
        )


def live_reference_index(server: MutableIndexServer):
    """A freshly built index + id map equal to the server's live rowset.

    Returns ``(index, live_ids)``: the reference the identity tests
    compare against — ``index`` is built over the live rows in
    ascending global-id order and ``live_ids[local] -> global``.
    Mutations must be quiescent while it is used.
    """
    with server._lock:
        view = server._view
        base_ids = view.base_ids
        tombs = frozenset(server._tombstones)
        rows, ids = server._delta_snapshot_locked()
        base_live = np.fromiter(
            (gid not in tombs for gid in base_ids),
            dtype=bool,
            count=base_ids.size,
        )
        all_ids = np.concatenate([base_ids[base_live], ids])
        all_rows = (
            np.concatenate([np.asarray(view.points)[base_live], rows])
            if rows.shape[0]
            else np.asarray(view.points)[base_live].copy()
        )
    order = np.argsort(all_ids, kind="stable")
    live_ids = all_ids[order]
    index = build_index(
        server.kind,
        np.ascontiguousarray(all_rows[order]),
        **server._index_kwargs,
    )
    return index, live_ids


# Timing helper shared by the mutation bench: wall-clock one callable.
def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start
