"""The serving facade: snapshot in, bit-identical answers out.

:class:`IndexServer` wires the serving layers together:

    snapshot --> [LRU cache] --> micro-batcher --> worker pool
                                         \\-> in-process index (0 workers)

``submit(query, k)`` returns a future for one
:class:`~repro.search.results.KnnResult`; ``query`` is the blocking
convenience.  Requests are validated synchronously (bad input raises in
the caller, exactly like ``index.query``), then either answered from the
LRU cache or coalesced by the micro-batcher into ``query_batch`` calls
executed by the worker pool — or in-process when ``n_workers=0``, which
keeps the micro-batching win without any IPC.

Failure model — every degradation path is loud and typed, and every
submitted future resolves:

* ``deadline_ms`` (per request, or the server-wide default) bounds the
  end-to-end wait; a request that cannot be answered in time fails with
  :class:`~repro.serve.errors.DeadlineExceeded` — while queued, while a
  worker holds it, or at delivery if the answer arrived too late.  A
  dedicated reaper thread releases each deadlined caller *at its own
  deadline*, even when its batch (mixed with later- or no-deadline
  neighbors) is still executing, so a blocked ``future.result()`` never
  outlives the deadline by more than scheduling noise.
* ``policy.max_pending`` bounds admission; an overflowing request is
  shed per ``policy.shed_policy`` with
  :class:`~repro.serve.errors.ServerOverloaded`.
* crashed workers restart and their batches are resubmitted (bounded by
  ``max_resubmits``); a *hung* worker is detected by the
  ``heartbeat_timeout`` and killed into the same recovery path.
* submission after ``close()`` raises
  :class:`~repro.serve.errors.ServerClosedError`.

Everything downstream preserves the repo-wide bit-identity contract:
the batch kernels answer exactly like sequential ``query``, snapshot
loading is bit-identical to the builder, and the cache stores the very
result objects it replays — so a served answer never differs from
``index.query(query, k)`` on the freshly built index.  Degradation
sheds or fails requests; it never answers approximately.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import CancelledError, Future, InvalidStateError

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.search.snapshot import snapshot_kind
from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.cache import (
    ResultCache,
    result_cache_key,
    snapshot_fingerprint,
)
from repro.serve.errors import (
    DeadlineExceeded,
    ServerClosedError,
    ServerOverloaded,
)
from repro.serve.pool import WorkerPool, _load_snapshot_index
from repro.serve.stats import ServingReport, ServingStats


class IndexServer:
    """Serve single-query k-NN traffic from an index snapshot.

    Args:
        snapshot_path: ``.npz`` snapshot of any of the eight index kinds.
        n_workers: worker processes.  ``0`` serves in-process (no IPC,
            still micro-batched); ``>= 1`` runs a :class:`WorkerPool`
            whose workers share the mmap'd corpus through the page
            cache.
        policy: micro-batching flush policy plus the admission bound
            (default :class:`BatchPolicy`).
        cache_capacity: LRU result-cache entries; ``0`` disables the
            cache.
        mmap_points: map the corpus from disk instead of loading it
            (both in workers and for the in-process/metadata copy).
        start_method / restart_crashed: forwarded to :class:`WorkerPool`.
        heartbeat_timeout: seconds a worker may hold unanswered work
            without producing any response before it is declared hung
            and killed into the restart path (default 30; ``None``
            disables hang detection; size it above the worst-case
            single-batch compute time).  Only meaningful with
            ``n_workers >= 1`` — in-process flushes run on the batcher
            thread and cannot be preempted, though the deadline reaper
            still releases deadlined callers while one executes.
        max_resubmits: retry budget per batch across worker
            crashes/hangs before its requests fail with ``WorkerError``.
        default_deadline_ms: deadline applied to every ``submit`` that
            does not pass its own; ``None`` means no deadline.
        index_loader: fault-injection/test seam — a picklable
            ``loader(snapshot_path, mmap_points)`` used for whatever
            executes the queries: the in-process index when
            ``n_workers=0``, otherwise each pool worker.  The local
            metadata/validation copy always loads clean (see
            :mod:`repro.serve.faults`).
    """

    def __init__(
        self,
        snapshot_path: str,
        *,
        n_workers: int = 1,
        policy: BatchPolicy | None = None,
        cache_capacity: int = 0,
        mmap_points: bool = True,
        start_method: str | None = None,
        restart_crashed: bool = True,
        heartbeat_timeout: float | None = 30.0,
        max_resubmits: int = 1,
        default_deadline_ms: float | None = None,
        index_loader=None,
    ) -> None:
        if n_workers < 0:
            raise ValueError(
                f"n_workers must be non-negative, got {n_workers}"
            )
        if cache_capacity < 0:
            raise ValueError(
                f"cache_capacity must be non-negative, got {cache_capacity}"
            )
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                "default_deadline_ms must be positive or None, "
                f"got {default_deadline_ms}"
            )
        self.snapshot_path = snapshot_path
        self.kind = snapshot_kind(snapshot_path)
        self.n_workers = int(n_workers)
        self.default_deadline_ms = default_deadline_ms
        # The local copy answers in-process traffic (n_workers=0) and
        # supplies metadata for request validation; with mmap the corpus
        # bytes are shared with the workers rather than duplicated.  The
        # index_loader seam only wraps whatever executes queries, so a
        # pooled server's metadata copy must not consume the fault plan
        # (or its one-shot marker claim) that is meant for the workers.
        loader = (
            index_loader
            if index_loader is not None and n_workers == 0
            else _load_snapshot_index
        )
        self._local = loader(snapshot_path, mmap_points)
        self.fingerprint = snapshot_fingerprint(snapshot_path)
        self._cache = (
            ResultCache(cache_capacity) if cache_capacity else None
        )
        # Stampede coalescing: cache key -> future of the one in-flight
        # computation for that key.  Concurrent identical misses attach
        # to it instead of enqueueing duplicate batch rows.
        self._inflight_lock = threading.Lock()
        self._inflight_by_key: dict = {}
        self._stats = ServingStats()
        self._pool = (
            WorkerPool(
                snapshot_path,
                n_workers,
                mmap_points=mmap_points,
                start_method=start_method,
                restart_crashed=restart_crashed,
                heartbeat_timeout=heartbeat_timeout,
                max_resubmits=max_resubmits,
                index_loader=index_loader,
            )
            if n_workers >= 1
            else None
        )
        self._batcher = MicroBatcher(self._flush, policy)
        self._reaper = _DeadlineReaper()
        self._closed = False

    # -- introspection -------------------------------------------------

    @property
    def n_points(self) -> int:
        return self._local.n_points

    @property
    def dimensionality(self) -> int:
        return self._local.dimensionality

    @property
    def policy(self) -> BatchPolicy:
        return self._batcher.policy

    def stats(self) -> ServingReport:
        """Current serving metrics (cache and pool counters merged in)."""
        counters = (0, 0, 0)
        if self._cache is not None:
            c = self._cache.counters
            counters = (c.hits, c.misses, c.evictions)
        pool_counters = (0, 0, 0)
        if self._pool is not None:
            pool_counters = (
                self._pool.n_restarts,
                self._pool.n_hung_kills,
                self._pool.n_resubmitted,
            )
        return self._stats.report(
            cache_counters=counters, pool_counters=pool_counters
        )

    def reset_stats(self) -> None:
        """Restart the metrics clock (cache/pool counters are lifetime)."""
        self._stats.reset()

    # -- request paths -------------------------------------------------

    def submit(
        self, query, k: int = 1, *, deadline_ms: float | None = None
    ) -> Future:
        """Enqueue one query; the future resolves to its KnnResult.

        Validation happens here, synchronously — malformed queries and
        out-of-range ``k`` raise ``ValueError`` exactly like
        ``index.query`` would; a full admission queue raises
        :class:`~repro.serve.errors.ServerOverloaded` under the
        ``reject-new`` policy.  ``deadline_ms`` (falling back to the
        server's ``default_deadline_ms``) bounds the end-to-end wait:
        past it the future fails with
        :class:`~repro.serve.errors.DeadlineExceeded` instead of waiting
        forever.
        """
        self._require_open()
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive or None, got {deadline_ms}"
            )
        started = time.perf_counter()
        deadline = (
            started + deadline_ms / 1e3 if deadline_ms is not None else None
        )
        key = None
        slot = None
        if self._cache is not None:
            key = result_cache_key(vector, k, self.fingerprint)
            hit = self._cache.get(key)
            if hit is not None:
                self._stats.record_request(time.perf_counter() - started)
                future: Future = Future()
                future.set_result(hit)
                return future
            # Stampede coalescing: if an identical request is already in
            # flight, follow it instead of enqueueing a duplicate batch
            # row.  The follower mirrors the leader's outcome (result or
            # typed failure) but keeps its *own* deadline — the reaper
            # can still release it earlier than the leader resolves.
            with self._inflight_lock:
                leader = self._inflight_by_key.get(key)
                if leader is None:
                    slot = Future()
                    self._inflight_by_key[key] = slot
            if leader is not None:
                follower: Future = Future()
                if deadline is not None:
                    self._reaper.watch(follower, deadline)
                follower.add_done_callback(
                    lambda f: self._finish_request(f, None, started)
                )
                leader.add_done_callback(
                    lambda f: _mirror_outcome(f, follower)
                )
                return follower
        try:
            future = self._batcher.submit(vector, k, deadline=deadline)
        except ServerOverloaded:
            self._stats.record_shed()
            if slot is not None:
                self._clear_inflight(key)
                _fail(slot, ServerOverloaded(
                    "coalesced leader was shed by admission control"
                ))
            raise
        if deadline is not None:
            # The batcher enforces the deadline while the request is
            # queued; the reaper enforces it for the rest of its life —
            # including while a coalesced batch with later- or
            # no-deadline neighbors is still executing, where no
            # pool-side batch deadline can act for this member alone.
            self._reaper.watch(future, deadline)
        future.add_done_callback(
            lambda f: self._finish_request(f, key, started)
        )
        if slot is not None:
            # After _finish_request (so the cache put has happened): any
            # follower that arrives post-resolution hits the cache; the
            # tiny window between put and de-registration at worst lets
            # a fresh leader recompute, never answer wrongly.
            future.add_done_callback(
                lambda f: self._release_leader(f, key, slot)
            )
        return future

    def query(self, query, k: int = 1, *, deadline_ms: float | None = None) -> KnnResult:
        """Blocking single-query convenience around :meth:`submit`."""
        return self.submit(query, k=k, deadline_ms=deadline_ms).result()

    def query_batch(
        self, queries, k: int = 1, *, deadline_ms: float | None = None
    ) -> BatchKnnResult:
        """One explicit batch, bypassing the micro-batcher.

        Callers that already hold a batch should not pay the coalescing
        wait; the batch goes to a worker (or the in-process index) as
        one ``query_batch`` call.  Recorded in the batch histogram but
        not in the single-request latency percentiles.  Explicit batches
        bypass admission control, but honor the same deadline contract
        as :meth:`query`: ``deadline_ms`` (falling back to
        ``default_deadline_ms``) bounds the whole batch with
        :class:`~repro.serve.errors.DeadlineExceeded`.  On the pooled
        path the deadline can cut a hung worker loose mid-compute; the
        in-process path cannot be preempted, so there it is enforced
        on completion — a blown deadline raises rather than returning
        an answer the caller declared too late to use.
        """
        self._require_open()
        array = validate_queries(queries, self.dimensionality)
        k = validate_k(k, self.n_points)
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive or None, got {deadline_ms}"
            )
        deadline = (
            time.perf_counter() + deadline_ms / 1e3
            if deadline_ms is not None
            else None
        )
        if self._pool is None or array.shape[0] == 0:
            batch = self._local.query_batch(array, k=k)
            if deadline is not None and time.perf_counter() > deadline:
                self._stats.record_deadline_exceeded()
                raise DeadlineExceeded(
                    f"explicit batch exceeded its {deadline_ms:g} ms "
                    "deadline (in-process compute cannot be preempted)"
                )
        else:
            try:
                batch = self._pool.submit(
                    array, k, deadline=deadline
                ).result()
            except DeadlineExceeded:
                self._stats.record_deadline_exceeded()
                raise
        self._stats.record_batch(len(batch), batch.stats)
        return batch

    # -- internals -----------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ServerClosedError("server is closed")

    def _clear_inflight(self, key) -> None:
        with self._inflight_lock:
            self._inflight_by_key.pop(key, None)

    def _release_leader(self, future: Future, key, slot: Future) -> None:
        """Leader done-callback: de-register the key, resolve followers."""
        self._clear_inflight(key)
        _mirror_outcome(future, slot)

    def _finish_request(self, future: Future, key, started: float) -> None:
        """Done-callback: classify the outcome and account it exactly once.

        Guarded by ``future.exception()`` so a failed batch can never
        raise inside the callback (which ``concurrent.futures`` would
        swallow into a log line), skip the cache put, *and* vanish from
        the stats — failures are first-class counted outcomes.  A future
        the caller cancelled is likewise counted (``n_cancelled``)
        rather than skipped, so the degradation ledger keeps balancing:
        every completed submission lands in exactly one column.
        """
        latency = time.perf_counter() - started
        if future.cancelled():
            self._stats.record_cancelled()
            return
        error = future.exception()
        if error is None:
            if key is not None:
                self._cache.put(key, future.result())
            self._stats.record_request(latency)
        elif isinstance(error, DeadlineExceeded):
            self._stats.record_deadline_exceeded()
        elif isinstance(error, ServerOverloaded):
            self._stats.record_shed()
        else:
            self._stats.record_failure()

    def _flush(self, queries, k: int, futures: list, deadlines: list) -> None:
        """Micro-batcher flush hook: run one coalesced batch.

        Releasing each member at its own deadline is the reaper's job
        (it watches every deadlined future from ``submit`` onward).  The
        pool-side batch deadline is purely a discard optimisation: it is
        the latest member deadline, set only when *every* member carries
        one — by then no caller can use the answer, so the pool may drop
        the batch and free its bookkeeping.  A mixed batch gets no pool
        deadline (its deadline-less members still need the answer, and a
        request must never inherit a neighbor's deadline).  Members are
        individually re-checked at delivery so a late answer is never
        delivered as a result.
        """
        if self._pool is None:
            batch = self._local.query_batch(queries, k=k)
            self._distribute(batch, futures, deadlines)
            return
        finite = [d for d in deadlines if d is not None]
        batch_deadline = (
            max(finite) if len(finite) == len(deadlines) and finite else None
        )
        pooled = self._pool.submit(queries, k, deadline=batch_deadline)
        pooled.add_done_callback(
            lambda f: self._distribute_pooled(f, futures, deadlines)
        )

    def _distribute(
        self, batch: BatchKnnResult, futures: list, deadlines: list
    ) -> None:
        self._stats.record_batch(len(futures), batch.stats)
        now = time.perf_counter()
        for future, result, deadline in zip(
            futures, batch.results, deadlines
        ):
            if future.done():
                continue
            if deadline is not None and now > deadline:
                # The answer exists but arrived late.  Deadline
                # semantics stay strict and uniform: resolve-with-result
                # happens before the deadline or not at all.
                _fail(
                    future,
                    DeadlineExceeded(
                        "answer arrived after the request deadline"
                    ),
                )
            else:
                _complete(future, result)

    def _distribute_pooled(
        self, pooled: Future, futures: list, deadlines: list
    ) -> None:
        error = pooled.exception()
        if error is not None:
            for future in futures:
                _fail(future, error)
            return
        self._distribute(pooled.result(), futures, deadlines)

    # -- lifecycle -----------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Flush pending requests, drain workers, stop everything."""
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        if self._pool is not None:
            self._pool.drain(timeout)
            self._pool.close()
        # Last: the reaper must stay alive while draining so deadlined
        # callers blocked on in-flight batches are still released on
        # time.  (Leftover futures were failed by the pool above.)
        self._reaper.close()

    def __enter__(self) -> "IndexServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _DeadlineReaper:
    """Fail watched futures with :class:`DeadlineExceeded` when due.

    The batcher can only expire a request while it is *queued*; once a
    coalesced batch is executing, a member whose neighbors have later
    (or no) deadlines has nothing downstream enforcing its own.  The
    reaper closes that gap: every deadlined future is watched from
    submission, and a dedicated thread — asleep until the earliest
    watched deadline — fails it the moment its deadline passes, unless
    an answer (or another failure) got there first.  Whoever resolves
    the future first wins; the loser is a silent no-op, so double
    enforcement with the batcher and the pool is harmless.

    Entries for futures that resolve normally linger in the heap until
    their deadline passes and are then discarded, so memory is bounded
    by the number of requests submitted within one deadline window.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._heap: list[tuple[float, int, Future]] = []
        self._seq = itertools.count()  # heap tie-break; futures don't order
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-deadline-reaper", daemon=True
        )
        self._thread.start()

    def watch(self, future: Future, deadline: float) -> None:
        """Release ``future`` with ``DeadlineExceeded`` at ``deadline``."""
        with self._cond:
            if self._closed:
                return
            earliest = self._heap[0][0] if self._heap else None
            heapq.heappush(self._heap, (deadline, next(self._seq), future))
            if earliest is None or deadline < earliest:
                self._cond.notify()  # re-arm the sleep to the new earliest

    def close(self) -> None:
        """Stop the thread; pending watches are dropped, not failed."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify()
        self._thread.join()

    def _run(self) -> None:
        while True:
            due: list[Future] = []
            with self._cond:
                if self._closed:
                    return
                now = time.perf_counter()
                while self._heap and self._heap[0][0] <= now:
                    _, _, future = heapq.heappop(self._heap)
                    if not future.done():
                        due.append(future)
                if not due:
                    timeout = (
                        self._heap[0][0] - now if self._heap else None
                    )
                    self._cond.wait(timeout)
                    continue
            # Failing a future runs its done-callbacks (stats, cache);
            # never do that while holding the condition lock.
            for future in due:
                _fail(
                    future,
                    DeadlineExceeded(
                        "request deadline passed before its answer was "
                        "delivered"
                    ),
                )


def _mirror_outcome(src: Future, dst: Future) -> None:
    """Copy a resolved future's outcome onto a dependent future.

    Used by stampede coalescing: a follower shares its leader's result
    or typed failure.  A cancelled leader surfaces as ``CancelledError``
    on the follower (set as an exception — the follower itself was not
    cancelled by its caller).  No-op wherever ``dst`` resolved first.
    """
    if src.cancelled():
        _fail(dst, CancelledError("coalesced leader request was cancelled"))
        return
    error = src.exception()
    if error is not None:
        _fail(dst, error)
    else:
        _complete(dst, src.result())


def _complete(future: Future, value) -> None:
    try:
        future.set_result(value)
    except InvalidStateError:  # resolved concurrently (e.g. cancelled)
        pass


def _fail(future: Future, error: Exception) -> None:
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass
