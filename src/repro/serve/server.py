"""The serving facade: snapshot in, bit-identical answers out.

:class:`IndexServer` wires the serving layers together:

    snapshot --> [LRU cache] --> micro-batcher --> worker pool
                                         \\-> in-process index (0 workers)

``submit(query, k)`` returns a future for one
:class:`~repro.search.results.KnnResult`; ``query`` is the blocking
convenience.  Requests are validated synchronously (bad input raises in
the caller, exactly like ``index.query``), then either answered from the
LRU cache or coalesced by the micro-batcher into ``query_batch`` calls
executed by the worker pool — or in-process when ``n_workers=0``, which
keeps the micro-batching win without any IPC.

Everything downstream preserves the repo-wide bit-identity contract:
the batch kernels answer exactly like sequential ``query``, snapshot
loading is bit-identical to the builder, and the cache stores the very
result objects it replays — so a served answer never differs from
``index.query(query, k)`` on the freshly built index.
"""

from __future__ import annotations

import time
from concurrent.futures import Future

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.search.snapshot import load_index, snapshot_kind
from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.cache import (
    ResultCache,
    result_cache_key,
    snapshot_fingerprint,
)
from repro.serve.pool import WorkerPool
from repro.serve.stats import ServingReport, ServingStats


class IndexServer:
    """Serve single-query k-NN traffic from an index snapshot.

    Args:
        snapshot_path: ``.npz`` snapshot of any of the eight index kinds.
        n_workers: worker processes.  ``0`` serves in-process (no IPC,
            still micro-batched); ``>= 1`` runs a :class:`WorkerPool`
            whose workers share the mmap'd corpus through the page
            cache.
        policy: micro-batching flush policy (default
            :class:`BatchPolicy`).
        cache_capacity: LRU result-cache entries; ``0`` disables the
            cache.
        mmap_points: map the corpus from disk instead of loading it
            (both in workers and for the in-process/metadata copy).
        start_method / restart_crashed: forwarded to :class:`WorkerPool`.
    """

    def __init__(
        self,
        snapshot_path: str,
        *,
        n_workers: int = 1,
        policy: BatchPolicy | None = None,
        cache_capacity: int = 0,
        mmap_points: bool = True,
        start_method: str | None = None,
        restart_crashed: bool = True,
    ) -> None:
        if n_workers < 0:
            raise ValueError(
                f"n_workers must be non-negative, got {n_workers}"
            )
        if cache_capacity < 0:
            raise ValueError(
                f"cache_capacity must be non-negative, got {cache_capacity}"
            )
        self.snapshot_path = snapshot_path
        self.kind = snapshot_kind(snapshot_path)
        self.n_workers = int(n_workers)
        # The local copy answers in-process traffic (n_workers=0) and
        # supplies metadata for request validation; with mmap the corpus
        # bytes are shared with the workers rather than duplicated.
        self._local = load_index(snapshot_path, mmap_points=mmap_points)
        self.fingerprint = snapshot_fingerprint(snapshot_path)
        self._cache = (
            ResultCache(cache_capacity) if cache_capacity else None
        )
        self._stats = ServingStats()
        self._pool = (
            WorkerPool(
                snapshot_path,
                n_workers,
                mmap_points=mmap_points,
                start_method=start_method,
                restart_crashed=restart_crashed,
            )
            if n_workers >= 1
            else None
        )
        self._batcher = MicroBatcher(self._flush, policy)
        self._closed = False

    # -- introspection -------------------------------------------------

    @property
    def n_points(self) -> int:
        return self._local.n_points

    @property
    def dimensionality(self) -> int:
        return self._local.dimensionality

    @property
    def policy(self) -> BatchPolicy:
        return self._batcher.policy

    def stats(self) -> ServingReport:
        """Current serving metrics (cache counters merged in)."""
        counters = (0, 0, 0)
        if self._cache is not None:
            c = self._cache.counters
            counters = (c.hits, c.misses, c.evictions)
        return self._stats.report(cache_counters=counters)

    def reset_stats(self) -> None:
        """Restart the metrics clock (cache counters are lifetime)."""
        self._stats.reset()

    # -- request paths -------------------------------------------------

    def submit(self, query, k: int = 1) -> Future:
        """Enqueue one query; the future resolves to its KnnResult.

        Validation happens here, synchronously — malformed queries and
        out-of-range ``k`` raise ``ValueError`` exactly like
        ``index.query`` would.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        started = time.perf_counter()
        key = None
        if self._cache is not None:
            key = result_cache_key(vector, k, self.fingerprint)
            hit = self._cache.get(key)
            if hit is not None:
                self._stats.record_request(time.perf_counter() - started)
                future: Future = Future()
                future.set_result(hit)
                return future
        future = self._batcher.submit(vector, k)
        future.add_done_callback(
            lambda f: self._finish_request(f, key, started)
        )
        return future

    def query(self, query, k: int = 1) -> KnnResult:
        """Blocking single-query convenience around :meth:`submit`."""
        return self.submit(query, k=k).result()

    def query_batch(self, queries, k: int = 1) -> BatchKnnResult:
        """One explicit batch, bypassing the micro-batcher.

        Callers that already hold a batch should not pay the coalescing
        wait; the batch goes to a worker (or the in-process index) as
        one ``query_batch`` call.  Recorded in the batch histogram but
        not in the single-request latency percentiles.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        array = validate_queries(queries, self.dimensionality)
        k = validate_k(k, self.n_points)
        if self._pool is None or array.shape[0] == 0:
            batch = self._local.query_batch(array, k=k)
        else:
            batch = self._pool.submit(array, k).result()
        self._stats.record_batch(len(batch), batch.stats)
        return batch

    # -- internals -----------------------------------------------------

    def _finish_request(self, future: Future, key, started: float) -> None:
        if (
            key is not None
            and not future.cancelled()
            and future.exception() is None
        ):
            self._cache.put(key, future.result())
        self._stats.record_request(time.perf_counter() - started)

    def _flush(self, queries, k: int, futures: list) -> None:
        """Micro-batcher flush hook: run one coalesced batch."""
        if self._pool is None:
            batch = self._local.query_batch(queries, k=k)
            self._distribute(batch, futures)
            return
        pooled = self._pool.submit(queries, k)
        pooled.add_done_callback(
            lambda f: self._distribute_pooled(f, futures)
        )

    def _distribute(self, batch: BatchKnnResult, futures: list) -> None:
        self._stats.record_batch(len(futures), batch.stats)
        for future, result in zip(futures, batch.results):
            if not future.done():
                future.set_result(result)

    def _distribute_pooled(self, pooled: Future, futures: list) -> None:
        error = pooled.exception()
        if error is not None:
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        self._distribute(pooled.result(), futures)

    # -- lifecycle -----------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Flush pending requests, drain workers, stop everything."""
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        if self._pool is not None:
            self._pool.drain(timeout)
            self._pool.close()

    def __enter__(self) -> "IndexServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
