"""Multiprocess workers serving one mmap'd index snapshot.

Each worker process ``load()``s the same snapshot with
``mmap_points=True``: the (typically dominant) corpus member stays on
disk and its pages are shared read-only through the OS page cache, so N
workers cost roughly one corpus of memory, not N.  Transport is plain
``multiprocessing`` queues — one request and one response queue per
worker, so a crashed worker can be replaced together with its queues
without another worker's traffic ever touching a lock the casualty may
have corrupted.

Reliability model:

* every submitted batch is tracked until its response arrives;
* a worker that dies (crash, OOM-kill, ``kill -9``) is detected by the
  dispatcher, its responses already produced are drained, a fresh
  worker is started in its slot, and the unanswered batches are
  resubmitted to the replacement — queries are read-only, so
  re-execution is always safe;
* a worker that cannot even load the snapshot marks its slot fatal
  instead of entering a restart storm;
* :meth:`WorkerPool.close` shuts workers down gracefully (sentinel,
  join, then terminate stragglers) and fails any still-pending futures
  with :class:`WorkerError`; :meth:`WorkerPool.drain` lets callers wait
  for in-flight work first.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import threading
import time
from concurrent.futures import Future, InvalidStateError

import numpy as np

from repro.search.snapshot import snapshot_kind


class WorkerError(RuntimeError):
    """A batch failed in (or never reached) a worker process."""


def _worker_main(
    snapshot_path: str, mmap_points: bool, requests, responses
) -> None:
    """Worker loop: load the snapshot once, answer batches forever."""
    from repro.search.snapshot import load_index

    try:
        index = load_index(snapshot_path, mmap_points=mmap_points)
    except Exception as error:
        responses.put((None, "fatal", f"{type(error).__name__}: {error}"))
        return
    while True:
        item = requests.get()
        if item is None:
            return
        batch_id, queries, k = item
        try:
            batch = index.query_batch(queries, k=k)
            responses.put((batch_id, "ok", batch))
        except Exception as error:
            responses.put(
                (batch_id, "error", f"{type(error).__name__}: {error}")
            )


class _Slot:
    """One worker position: process + its private queues + assignments."""

    __slots__ = ("process", "requests", "responses", "assigned", "fatal")

    def __init__(self, process, requests, responses) -> None:
        self.process = process
        self.requests = requests
        self.responses = responses
        self.assigned: set[int] = set()
        self.fatal = False


class _Inflight:
    __slots__ = ("queries", "k", "future")

    def __init__(self, queries, k, future) -> None:
        self.queries = queries
        self.k = k
        self.future = future


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerPool:
    """A fixed-size pool of snapshot-serving worker processes.

    Args:
        snapshot_path: ``.npz`` index snapshot every worker loads; it is
            validated up front so a typo fails in the caller, not in N
            workers.
        n_workers: worker processes (>= 1).
        mmap_points: forwarded to ``load_index`` in each worker; the
            default ``True`` is what makes the pool memory-cheap.
        start_method: multiprocessing start method; default prefers
            ``"fork"`` (fast, shares the parent's page-cache warmth) and
            falls back to ``"spawn"`` where fork is unavailable.
        restart_crashed: replace dead workers and resubmit their
            unanswered batches (default).  When ``False`` a crash fails
            the affected futures with :class:`WorkerError` instead.
    """

    _POLL_SECONDS = 0.002
    _LIVENESS_PERIOD_SECONDS = 0.05

    def __init__(
        self,
        snapshot_path: str,
        n_workers: int = 1,
        *,
        mmap_points: bool = True,
        start_method: str | None = None,
        restart_crashed: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        snapshot_kind(snapshot_path)  # raises SnapshotError early
        self.snapshot_path = snapshot_path
        self.n_workers = int(n_workers)
        self.mmap_points = bool(mmap_points)
        self.restart_crashed = bool(restart_crashed)
        self._ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._lock = threading.Lock()
        self._inflight: dict[int, _Inflight] = {}
        self._ids = itertools.count()
        self._rr = itertools.count()
        self._restarts = 0
        self._closing = threading.Event()
        self._slots = [self._start_slot() for _ in range(self.n_workers)]
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-pool-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # -- lifecycle -----------------------------------------------------

    def _start_slot(self) -> _Slot:
        requests = self._ctx.Queue()
        responses = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.snapshot_path, self.mmap_points, requests, responses),
            daemon=True,
        )
        process.start()
        return _Slot(process, requests, responses)

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait until no batches are in flight; ``True`` on success."""
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._lock:
                if not self._inflight:
                    return True
            time.sleep(self._POLL_SECONDS)
        with self._lock:
            return not self._inflight

    def close(self, timeout: float = 5.0) -> None:
        """Stop workers, fail leftover futures, join the dispatcher."""
        if self._closing.is_set():
            return
        self._closing.set()
        for slot in self._slots:
            try:
                slot.requests.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.perf_counter() + timeout
        for slot in self._slots:
            slot.process.join(max(0.0, deadline - time.perf_counter()))
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(1.0)
        self._dispatcher.join(timeout)
        with self._lock:
            leftovers = list(self._inflight.values())
            self._inflight.clear()
        for entry in leftovers:
            _fail(entry.future, WorkerError("worker pool is closed"))

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ----------------------------------------------------

    def submit(self, queries, k: int) -> Future:
        """Send one batch to a worker; resolves to a ``BatchKnnResult``.

        The rows are forwarded verbatim to ``index.query_batch`` in the
        worker, so answers (and validation errors, surfaced as
        :class:`WorkerError`) match a local call exactly.
        """
        array = np.asarray(queries, dtype=np.float64)
        future: Future = Future()
        with self._lock:
            if self._closing.is_set():
                raise WorkerError("worker pool is closed")
            usable = [s for s in self._slots if not s.fatal]
            if not usable:
                raise WorkerError(
                    "no usable workers (snapshot failed to load)"
                )
            # Least-loaded slot; rotate the tie-break so equally idle
            # workers share traffic.
            offset = next(self._rr) % len(usable)
            slot = min(
                (usable[(i + offset) % len(usable)]
                 for i in range(len(usable))),
                key=lambda s: len(s.assigned),
            )
            batch_id = next(self._ids)
            self._inflight[batch_id] = _Inflight(array, k, future)
            slot.assigned.add(batch_id)
            slot.requests.put((batch_id, array, k))
        return future

    @property
    def n_restarts(self) -> int:
        """Workers replaced after a crash, over the pool's lifetime."""
        return self._restarts

    def worker_pids(self) -> list[int]:
        """Current worker process ids (test/ops hook)."""
        return [slot.process.pid for slot in self._slots]

    # -- dispatch ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        last_liveness = time.perf_counter()
        while not self._closing.is_set():
            progressed = False
            for slot in self._slots:
                try:
                    item = slot.responses.get_nowait()
                except (queue_module.Empty, OSError, ValueError):
                    continue
                progressed = True
                self._resolve(slot, item)
            now = time.perf_counter()
            if (
                not progressed
                or now - last_liveness > self._LIVENESS_PERIOD_SECONDS
            ):
                self._check_workers()
                last_liveness = now
            if not progressed:
                time.sleep(self._POLL_SECONDS)

    def _resolve(self, slot: _Slot, item) -> None:
        batch_id, status, payload = item
        if batch_id is None:  # the worker could not load the snapshot
            slot.fatal = True
            self._fail_slot(slot, WorkerError(payload))
            return
        with self._lock:
            entry = self._inflight.pop(batch_id, None)
            slot.assigned.discard(batch_id)
        if entry is None:  # duplicate after a crash-resubmit race
            return
        if status == "ok":
            _complete(entry.future, payload)
        else:
            _fail(entry.future, WorkerError(payload))

    def _fail_slot(self, slot: _Slot, error: WorkerError) -> None:
        with self._lock:
            pending = [
                self._inflight.pop(batch_id)
                for batch_id in sorted(slot.assigned)
                if batch_id in self._inflight
            ]
            slot.assigned.clear()
        for entry in pending:
            _fail(entry.future, error)

    def _check_workers(self) -> None:
        for position, slot in enumerate(self._slots):
            if slot.process.is_alive() or self._closing.is_set():
                continue
            # Resolve whatever the worker managed to answer before dying.
            while True:
                try:
                    item = slot.responses.get_nowait()
                except (queue_module.Empty, OSError, ValueError):
                    break
                self._resolve(slot, item)
            if slot.fatal:
                continue  # known-unserviceable snapshot; never restart
            exitcode = slot.process.exitcode
            if not self.restart_crashed:
                slot.fatal = True
                self._fail_slot(
                    slot,
                    WorkerError(f"worker died (exit code {exitcode})"),
                )
                continue
            replacement = self._start_slot()
            with self._lock:
                self._restarts += 1
                orphaned = sorted(slot.assigned)
                self._slots[position] = replacement
                for batch_id in orphaned:
                    entry = self._inflight.get(batch_id)
                    if entry is None:
                        continue
                    replacement.assigned.add(batch_id)
                    replacement.requests.put(
                        (batch_id, entry.queries, entry.k)
                    )


def _complete(future: Future, value) -> None:
    try:
        future.set_result(value)
    except InvalidStateError:  # caller cancelled it meanwhile
        pass


def _fail(future: Future, error: Exception) -> None:
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass
