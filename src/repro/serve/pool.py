"""Multiprocess workers serving one mmap'd index snapshot.

Each worker process ``load()``s the same snapshot with
``mmap_points=True``: the (typically dominant) corpus member stays on
disk and its pages are shared read-only through the OS page cache, so N
workers cost roughly one corpus of memory, not N.  Transport is plain
``multiprocessing`` queues — one request and one response queue per
worker, so a crashed worker can be replaced together with its queues
without another worker's traffic ever touching a lock the casualty may
have corrupted.

Reliability model:

* every submitted batch is tracked until its response arrives;
* a worker that dies (crash, OOM-kill, ``kill -9``) is detected by the
  dispatcher, its responses already produced are drained, a fresh
  worker is started in its slot, and the unanswered batches are
  resubmitted to the replacement — queries are read-only, so
  re-execution is always safe;
* a worker that *hangs* (stuck syscall, livelock, adversarial input) is
  detected by the heartbeat: when ``heartbeat_timeout`` is set and a
  worker has held dispatched-but-unanswered work for that long without
  producing *any* response, it is killed (SIGKILL) and the crash path
  above takes over — restart plus resubmission.  The evidence is
  per-slot and keyed on worker silence, not per-batch age, so a worker
  steadily draining a backlog (answering something every so often) is
  never mistaken for hung; and it survives request-deadline expiry —
  a batch whose deadline already passed (its future long failed) still
  counts as unanswered work, so a zombie worker is detected and
  replaced even after every caller has given up, instead of sitting in
  the pool absorbing fresh traffic.  The same unanswered-work count
  drives least-loaded routing, so new requests prefer healthy workers
  during the detection window;
* resubmission is bounded: a batch that has already been resubmitted
  ``max_resubmits`` times is failed with :class:`WorkerError` instead
  of being handed to yet another worker, so a poison batch cannot cycle
  the pool forever;
* a batch submitted with a ``deadline`` whose response has not arrived
  by then fails with :class:`~repro.serve.errors.DeadlineExceeded`
  (the worker's late answer, if any, is discarded — never delivered as
  a stale result);
* a worker that cannot even load the snapshot marks its slot fatal
  instead of entering a restart storm;
* :meth:`WorkerPool.close` shuts workers down gracefully (sentinel,
  join, then terminate stragglers) and fails any still-pending futures
  with :class:`WorkerError`; :meth:`WorkerPool.drain` lets callers wait
  for in-flight work first.

Timeout granularity: deadline and heartbeat checks run on the
dispatcher's liveness cadence (every poll iteration when idle, at least
every ``_LIVENESS_PERIOD_SECONDS`` under load), so enforcement lags the
nominal instant by at most that period — bounded, and documented rather
than hidden.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_module
import threading
import time
from concurrent.futures import Future, InvalidStateError

import numpy as np

from repro.search.snapshot import snapshot_kind
from repro.serve.errors import DeadlineExceeded, ServingError


class WorkerError(ServingError):
    """A batch failed in (or never reached, or was abandoned by) a worker."""


def _load_snapshot_index(snapshot_path: str, mmap_points: bool):
    """Default worker-side loader: the plain snapshot round trip."""
    from repro.search.snapshot import load_index

    return load_index(snapshot_path, mmap_points=mmap_points)


def _worker_main(
    snapshot_path: str, mmap_points: bool, requests, responses, index_loader
) -> None:
    """Worker loop: load the snapshot once, answer batches forever."""
    loader = index_loader if index_loader is not None else _load_snapshot_index
    try:
        index = loader(snapshot_path, mmap_points)
    except Exception as error:
        responses.put((None, "fatal", f"{type(error).__name__}: {error}"))
        return
    while True:
        item = requests.get()
        if item is None:
            return
        batch_id, queries, k = item
        try:
            batch = index.query_batch(queries, k=k)
            responses.put((batch_id, "ok", batch))
        except Exception as error:
            responses.put(
                (batch_id, "error", f"{type(error).__name__}: {error}")
            )


class _Slot:
    """One worker position: process + its private queues + assignments.

    ``assigned`` tracks batches with live futures for resubmission after
    a failure.  ``dispatched`` tracks every batch sent to the worker and
    not yet answered — unlike ``assigned`` it is *not* trimmed when a
    request deadline expires, because it models the work the process
    physically holds, which is what routing and hang detection must see
    even after the callers gave up.  ``quiet_since`` is the start of the
    worker's current silence: reset by every response, and by a dispatch
    that moves the slot from idle to busy.
    """

    __slots__ = ("process", "requests", "responses", "assigned",
                 "dispatched", "quiet_since", "fatal")

    def __init__(self, process, requests, responses) -> None:
        self.process = process
        self.requests = requests
        self.responses = responses
        self.assigned: set[int] = set()
        self.dispatched: set[int] = set()
        self.quiet_since = time.perf_counter()
        self.fatal = False


class _Inflight:
    __slots__ = ("queries", "k", "future", "deadline", "resubmits")

    def __init__(self, queries, k, future, deadline) -> None:
        self.queries = queries
        self.k = k
        self.future = future
        self.deadline = deadline
        self.resubmits = 0


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerPool:
    """A fixed-size pool of snapshot-serving worker processes.

    Args:
        snapshot_path: ``.npz`` index snapshot every worker loads; it is
            validated up front so a typo fails in the caller, not in N
            workers.
        n_workers: worker processes (>= 1).
        mmap_points: forwarded to the worker-side loader; the default
            ``True`` is what makes the pool memory-cheap.
        start_method: multiprocessing start method; default prefers
            ``"fork"`` (fast, shares the parent's page-cache warmth) and
            falls back to ``"spawn"`` where fork is unavailable.
        restart_crashed: replace dead workers and resubmit their
            unanswered batches (default).  When ``False`` a crash fails
            the affected futures with :class:`WorkerError` instead.
        heartbeat_timeout: seconds a worker may hold unanswered work
            without producing *any* response before it is declared
            hung, killed, and replaced (batches with live futures are
            resubmitted like a crash).  Detection keys on worker
            silence, not per-batch age — a worker draining a backlog
            resets the clock with every answer — and is independent of
            request deadlines, so a stuck worker is replaced even after
            its batches' deadlines expired.  Must exceed the worst-case
            compute time of a *single* batch.  ``None`` disables hang
            detection — a genuinely stuck worker then strands its
            batches, which is the pre-hardening behavior.
        max_resubmits: how many times one batch may be handed to a
            replacement worker after crashes/hangs before it is failed
            with :class:`WorkerError` (default 1 — one bounded retry).
        index_loader: picklable ``loader(snapshot_path, mmap_points)``
            callable each worker uses instead of the default snapshot
            load.  This is the fault-injection seam used by
            :mod:`repro.serve.faults` and the robustness bench; leave
            ``None`` in production.
    """

    _POLL_SECONDS = 0.002
    _LIVENESS_PERIOD_SECONDS = 0.05

    def __init__(
        self,
        snapshot_path: str,
        n_workers: int = 1,
        *,
        mmap_points: bool = True,
        start_method: str | None = None,
        restart_crashed: bool = True,
        heartbeat_timeout: float | None = None,
        max_resubmits: int = 1,
        index_loader=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                "heartbeat_timeout must be positive or None, "
                f"got {heartbeat_timeout}"
            )
        if max_resubmits < 0:
            raise ValueError(
                f"max_resubmits must be non-negative, got {max_resubmits}"
            )
        snapshot_kind(snapshot_path)  # raises SnapshotError early
        self.snapshot_path = snapshot_path
        self.n_workers = int(n_workers)
        self.mmap_points = bool(mmap_points)
        self.restart_crashed = bool(restart_crashed)
        self.heartbeat_timeout = heartbeat_timeout
        self.max_resubmits = int(max_resubmits)
        self._index_loader = index_loader
        self._ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._lock = threading.Lock()
        self._inflight: dict[int, _Inflight] = {}
        self._ids = itertools.count()
        self._rr = itertools.count()
        self._restarts = 0
        self._hung_kills = 0
        self._resubmitted = 0
        self._closing = threading.Event()
        self._slots = [self._start_slot() for _ in range(self.n_workers)]
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-pool-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # -- lifecycle -----------------------------------------------------

    def _start_slot(self) -> _Slot:
        requests = self._ctx.Queue()
        responses = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.snapshot_path, self.mmap_points, requests, responses,
                  self._index_loader),
            daemon=True,
        )
        process.start()
        return _Slot(process, requests, responses)

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait until no batches are in flight; ``True`` on success."""
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            with self._lock:
                if not self._inflight:
                    return True
            time.sleep(self._POLL_SECONDS)
        with self._lock:
            return not self._inflight

    def close(self, timeout: float = 5.0) -> None:
        """Stop workers, fail leftover futures, join the dispatcher."""
        if self._closing.is_set():
            return
        self._closing.set()
        for slot in self._slots:
            try:
                slot.requests.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.perf_counter() + timeout
        for slot in self._slots:
            slot.process.join(max(0.0, deadline - time.perf_counter()))
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(1.0)
        self._dispatcher.join(timeout)
        with self._lock:
            leftovers = list(self._inflight.values())
            self._inflight.clear()
        for entry in leftovers:
            _fail(entry.future, WorkerError("worker pool is closed"))

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ----------------------------------------------------

    def submit(self, queries, k: int, *, deadline: float | None = None) -> Future:
        """Send one batch to a worker; resolves to a ``BatchKnnResult``.

        The rows are forwarded verbatim to ``index.query_batch`` in the
        worker, so answers (and validation errors, surfaced as
        :class:`WorkerError`) match a local call exactly.  ``deadline``
        is an absolute ``time.perf_counter()`` value: if no response has
        arrived by then the future fails with
        :class:`~repro.serve.errors.DeadlineExceeded` and any late
        worker answer is discarded.
        """
        array = np.asarray(queries, dtype=np.float64)
        future: Future = Future()
        now = time.perf_counter()
        with self._lock:
            if self._closing.is_set():
                raise WorkerError("worker pool is closed")
            usable = [s for s in self._slots if not s.fatal]
            if not usable:
                raise WorkerError(
                    "no usable workers (snapshot failed to load)"
                )
            # Least-loaded by *unanswered* dispatches (not live futures:
            # a hung worker whose batches all expired must still look
            # busy); rotate the tie-break so equally idle workers share
            # traffic.
            offset = next(self._rr) % len(usable)
            slot = min(
                (usable[(i + offset) % len(usable)]
                 for i in range(len(usable))),
                key=lambda s: len(s.dispatched),
            )
            batch_id = next(self._ids)
            self._inflight[batch_id] = _Inflight(array, k, future, deadline)
            self._dispatch_locked(slot, batch_id, array, k, now)
        return future

    def _dispatch_locked(
        self, slot: _Slot, batch_id: int, queries, k: int, now: float
    ) -> None:
        """Hand one batch to a slot's worker (caller holds the lock)."""
        if not slot.dispatched:
            # Idle -> busy: the silence clock starts at this dispatch,
            # not at whatever the slot last did.
            slot.quiet_since = now
        slot.dispatched.add(batch_id)
        slot.assigned.add(batch_id)
        slot.requests.put((batch_id, queries, k))

    @property
    def n_restarts(self) -> int:
        """Workers replaced after a crash or hang, over the pool's lifetime."""
        return self._restarts

    @property
    def n_hung_kills(self) -> int:
        """Workers killed by the heartbeat for holding a batch too long."""
        return self._hung_kills

    @property
    def n_resubmitted(self) -> int:
        """Orphaned batches handed to a replacement worker."""
        return self._resubmitted

    def worker_pids(self) -> list[int]:
        """Current worker process ids (test/ops hook)."""
        return [slot.process.pid for slot in self._slots]

    # -- dispatch ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        last_liveness = time.perf_counter()
        while not self._closing.is_set():
            progressed = False
            for slot in self._slots:
                try:
                    item = slot.responses.get_nowait()
                except (queue_module.Empty, OSError, ValueError):
                    continue
                progressed = True
                self._resolve(slot, item)
            now = time.perf_counter()
            if (
                not progressed
                or now - last_liveness > self._LIVENESS_PERIOD_SECONDS
            ):
                self._check_timeouts(now)
                self._check_workers()
                last_liveness = now
            if not progressed:
                time.sleep(self._POLL_SECONDS)

    def _resolve(self, slot: _Slot, item) -> None:
        batch_id, status, payload = item
        if batch_id is None:  # the worker could not load the snapshot
            slot.fatal = True
            self._fail_slot(slot, WorkerError(payload))
            return
        with self._lock:
            # Any response is liveness evidence, even one for a batch
            # whose callers already gave up.
            slot.dispatched.discard(batch_id)
            slot.quiet_since = time.perf_counter()
            entry = self._inflight.pop(batch_id, None)
            slot.assigned.discard(batch_id)
        if entry is None:  # duplicate after a crash-resubmit race, or a
            return        # late answer for an expired-deadline batch
        if status == "ok":
            _complete(entry.future, payload)
        else:
            _fail(entry.future, WorkerError(payload))

    def _fail_slot(self, slot: _Slot, error: WorkerError) -> None:
        with self._lock:
            pending = [
                self._inflight.pop(batch_id)
                for batch_id in sorted(slot.assigned)
                if batch_id in self._inflight
            ]
            slot.assigned.clear()
        for entry in pending:
            _fail(entry.future, error)

    def _check_timeouts(self, now: float) -> None:
        """Enforce batch deadlines and the hung-worker heartbeat."""
        expired: list[_Inflight] = []
        hung: list[_Slot] = []
        with self._lock:
            for batch_id, entry in list(self._inflight.items()):
                if entry.deadline is not None and now > entry.deadline:
                    expired.append(self._inflight.pop(batch_id))
                    # Only ``assigned`` is trimmed: the worker still
                    # physically holds the batch, so it stays in
                    # ``dispatched`` as hang evidence and routing load.
                    for slot in self._slots:
                        slot.assigned.discard(batch_id)
            if self.heartbeat_timeout is not None:
                for slot in self._slots:
                    if slot.fatal or not slot.process.is_alive():
                        continue
                    if (
                        slot.dispatched
                        and now - slot.quiet_since > self.heartbeat_timeout
                    ):
                        hung.append(slot)
        for entry in expired:
            _fail(
                entry.future,
                DeadlineExceeded(
                    "batch deadline passed before a worker answered"
                ),
            )
        for slot in hung:
            # SIGKILL, not SIGTERM: a hung worker may be unresponsive to
            # polite signals.  The dead-worker path below then drains
            # its completed answers, restarts the slot, and resubmits.
            self._hung_kills += 1
            slot.process.kill()

    def _check_workers(self) -> None:
        for position, slot in enumerate(self._slots):
            if slot.process.is_alive() or self._closing.is_set():
                continue
            # Resolve whatever the worker managed to answer before dying.
            while True:
                try:
                    item = slot.responses.get_nowait()
                except (queue_module.Empty, OSError, ValueError):
                    break
                self._resolve(slot, item)
            if slot.fatal:
                continue  # known-unserviceable snapshot; never restart
            exitcode = slot.process.exitcode
            if not self.restart_crashed:
                slot.fatal = True
                self._fail_slot(
                    slot,
                    WorkerError(f"worker died (exit code {exitcode})"),
                )
                continue
            replacement = self._start_slot()
            doomed: list[_Inflight] = []
            with self._lock:
                self._restarts += 1
                orphaned = sorted(slot.assigned)
                self._slots[position] = replacement
                now = time.perf_counter()
                for batch_id in orphaned:
                    entry = self._inflight.get(batch_id)
                    if entry is None:
                        continue
                    if entry.resubmits >= self.max_resubmits:
                        # Poison-batch guard: this batch has already
                        # consumed its retry budget across worker
                        # failures; fail it loudly instead of cycling
                        # the pool forever.
                        doomed.append(self._inflight.pop(batch_id))
                        continue
                    entry.resubmits += 1
                    self._resubmitted += 1
                    self._dispatch_locked(
                        replacement, batch_id, entry.queries, entry.k, now
                    )
            for entry in doomed:
                _fail(
                    entry.future,
                    WorkerError(
                        f"batch abandoned after {entry.resubmits + 1} worker "
                        f"failures (max_resubmits={self.max_resubmits})"
                    ),
                )


def _complete(future: Future, value) -> None:
    try:
        future.set_result(value)
    except InvalidStateError:  # caller cancelled it meanwhile
        pass


def _fail(future: Future, error: Exception) -> None:
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass
