"""Closed-loop vs micro-batched serving comparison.

Shared by ``repro serve-bench`` (CLI) and
``benchmarks/bench_ablation_serving.py`` so both measure the same way:

* **closed loop** — one ``index.query`` call per query, sequentially:
  the one-query-per-call baseline a naive deployment pays.
* **served** — the same queries submitted one at a time to a running
  :class:`~repro.serve.server.IndexServer`, which coalesces them into
  ``query_batch`` calls; wall time covers first submit to last result
  (server startup is excluded — serving throughput is a warm-process
  property).

Both paths answer from the same index structure, and
:func:`identical_results` checks the served answers are bit-identical
to the closed-loop ones — the serving layer is not allowed to buy
throughput with accuracy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.serve.batcher import BatchPolicy
from repro.serve.errors import ServerOverloaded, ServingError
from repro.serve.server import IndexServer
from repro.serve.stats import ServingReport


def identical_results(expected, observed) -> bool:
    """True when every delivered result matches bit-for-bit.

    Compares neighbor indices, distances, and per-query stats — the
    full observable surface of a :class:`KnnResult`.  ``None`` entries
    in ``observed`` mark requests that were shed or failed with a typed
    serving error; they are skipped, because the degradation contract is
    "fail loudly, never answer wrong" — an undelivered answer is not a
    divergence, a *different* answer is.
    """
    expected = list(expected)
    observed = list(observed)
    if len(expected) != len(observed):
        return False
    return all(
        tuple(a.indices.tolist()) == tuple(b.indices.tolist())
        and tuple(a.distances.tolist()) == tuple(b.distances.tolist())
        and a.stats == b.stats
        for a, b in zip(expected, observed)
        if b is not None
    )


def closed_loop_run(index, queries, k: int) -> tuple[float, list]:
    """Sequential one-query-per-call baseline: (seconds, results)."""
    array = np.asarray(queries, dtype=np.float64)
    started = time.perf_counter()
    results = [index.query(row, k=k) for row in array]
    return time.perf_counter() - started, results


def served_run(
    server: IndexServer, queries, k: int, *, deadline_ms: float | None = None
) -> tuple[float, list, ServingReport]:
    """Submit every query individually; gather: (seconds, results, report).

    The server's stats are reset at the start so the returned report
    describes exactly this run.  Requests resolved with a typed serving
    error (shed by admission control, expired deadline, worker failure)
    appear as ``None`` in the result list; the report's
    ``n_shed`` / ``n_deadline_exceeded`` / ``n_failed`` counters say
    why.
    """
    array = np.asarray(queries, dtype=np.float64)
    server.reset_stats()
    started = time.perf_counter()
    futures: list = []
    for row in array:
        try:
            futures.append(server.submit(row, k=k, deadline_ms=deadline_ms))
        except ServerOverloaded:
            futures.append(None)
    results = []
    for future in futures:
        if future is None:
            results.append(None)
            continue
        try:
            results.append(future.result())
        except ServingError:
            results.append(None)
    seconds = time.perf_counter() - started
    return seconds, results, server.stats()


@dataclass(frozen=True)
class ServingComparison:
    """Closed-loop vs served measurements for one configuration."""

    index_kind: str
    n_points: int
    dims: int
    n_queries: int
    k: int
    n_workers: int
    closed_loop_seconds: float
    closed_loop_qps: float
    served_seconds: float
    served_qps: float
    speedup: float
    identical: bool
    report: ServingReport


def compare_serving(
    index,
    snapshot_path: str,
    queries,
    k: int,
    *,
    n_workers: int,
    policy: BatchPolicy | None = None,
    cache_capacity: int = 0,
    start_method: str | None = None,
    deadline_ms: float | None = None,
    heartbeat_timeout: float | None = 30.0,
    max_resubmits: int = 1,
) -> ServingComparison:
    """Measure closed-loop vs micro-batched serving for one index.

    ``index`` is the locally built structure (the baseline); the server
    loads ``snapshot_path``, which must be a snapshot of that same
    index so the bit-identity check is meaningful.  The hardening knobs
    (``deadline_ms``, admission bounds on ``policy``,
    ``heartbeat_timeout``, ``max_resubmits``) are forwarded so
    ``repro serve-bench`` can exercise degradation behavior; shed or
    failed requests are excluded from the identity check and show up in
    the report counters instead.
    """
    array = np.asarray(queries, dtype=np.float64)
    closed_seconds, closed_results = closed_loop_run(index, array, k)
    with IndexServer(
        snapshot_path,
        n_workers=n_workers,
        policy=policy,
        cache_capacity=cache_capacity,
        start_method=start_method,
        heartbeat_timeout=heartbeat_timeout,
        max_resubmits=max_resubmits,
    ) as server:
        served_seconds, served_results, report = served_run(
            server, array, k, deadline_ms=deadline_ms
        )
    n_queries = array.shape[0]
    return ServingComparison(
        index_kind=type(index).__name__,
        n_points=index.n_points,
        dims=index.dimensionality,
        n_queries=n_queries,
        k=k,
        n_workers=n_workers,
        closed_loop_seconds=closed_seconds,
        closed_loop_qps=n_queries / closed_seconds if closed_seconds else 0.0,
        served_seconds=served_seconds,
        served_qps=n_queries / served_seconds if served_seconds else 0.0,
        speedup=closed_seconds / served_seconds if served_seconds else 0.0,
        identical=identical_results(closed_results, served_results),
        report=report,
    )
