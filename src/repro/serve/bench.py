"""Closed-loop vs micro-batched serving comparison.

Shared by ``repro serve-bench`` (CLI) and
``benchmarks/bench_ablation_serving.py`` so both measure the same way:

* **closed loop** — one ``index.query`` call per query, sequentially:
  the one-query-per-call baseline a naive deployment pays.
* **served** — the same queries submitted one at a time to a running
  :class:`~repro.serve.server.IndexServer`, which coalesces them into
  ``query_batch`` calls; wall time covers first submit to last result
  (server startup is excluded — serving throughput is a warm-process
  property).

Both paths answer from the same index structure, and
:func:`identical_results` checks the served answers are bit-identical
to the closed-loop ones — the serving layer is not allowed to buy
throughput with accuracy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.serve.batcher import BatchPolicy
from repro.serve.errors import ServerOverloaded, ServingError
from repro.serve.server import IndexServer
from repro.serve.stats import ServingReport


def identical_answers(reference, live_ids, observed) -> bool:
    """True when a mutable-serving answer equals the fresh-rebuild one.

    ``reference`` is the answer of an index freshly built over the live
    rowset (rows ascending by global id), ``live_ids`` maps its local
    indices to global row ids, and ``observed`` is the
    :class:`~repro.serve.mutation.MutableIndexServer` answer (global
    ids).  Neighbors and distances must match bit-for-bit; stats are
    not compared — base + delta execution honestly reports its own work
    (base top-``k+|tombstones|`` plus a delta scan), like the sharded
    merge does.
    """
    want = [
        (float(n.distance), int(live_ids[n.index]))
        for n in reference.neighbors
    ]
    got = [(float(n.distance), int(n.index)) for n in observed.neighbors]
    return want == got


def identical_results(expected, observed) -> bool:
    """True when every delivered result matches bit-for-bit.

    Compares neighbor indices, distances, and per-query stats — the
    full observable surface of a :class:`KnnResult`.  ``None`` entries
    in ``observed`` mark requests that were shed or failed with a typed
    serving error; they are skipped, because the degradation contract is
    "fail loudly, never answer wrong" — an undelivered answer is not a
    divergence, a *different* answer is.
    """
    expected = list(expected)
    observed = list(observed)
    if len(expected) != len(observed):
        return False
    return all(
        tuple(a.indices.tolist()) == tuple(b.indices.tolist())
        and tuple(a.distances.tolist()) == tuple(b.distances.tolist())
        and a.stats == b.stats
        for a, b in zip(expected, observed)
        if b is not None
    )


def closed_loop_run(index, queries, k: int) -> tuple[float, list]:
    """Sequential one-query-per-call baseline: (seconds, results)."""
    array = np.asarray(queries, dtype=np.float64)
    started = time.perf_counter()
    results = [index.query(row, k=k) for row in array]
    return time.perf_counter() - started, results


def served_run(
    server: IndexServer, queries, k: int, *, deadline_ms: float | None = None
) -> tuple[float, list, ServingReport]:
    """Submit every query individually; gather: (seconds, results, report).

    The server's stats are reset at the start so the returned report
    describes exactly this run.  Requests resolved with a typed serving
    error (shed by admission control, expired deadline, worker failure)
    appear as ``None`` in the result list; the report's
    ``n_shed`` / ``n_deadline_exceeded`` / ``n_failed`` counters say
    why.
    """
    array = np.asarray(queries, dtype=np.float64)
    server.reset_stats()
    started = time.perf_counter()
    futures: list = []
    for row in array:
        try:
            futures.append(server.submit(row, k=k, deadline_ms=deadline_ms))
        except ServerOverloaded:
            futures.append(None)
    results = []
    for future in futures:
        if future is None:
            results.append(None)
            continue
        try:
            results.append(future.result())
        except ServingError:
            results.append(None)
    seconds = time.perf_counter() - started
    return seconds, results, server.stats()


@dataclass(frozen=True)
class ServingComparison:
    """Closed-loop vs served measurements for one configuration."""

    index_kind: str
    n_points: int
    dims: int
    n_queries: int
    k: int
    n_workers: int
    closed_loop_seconds: float
    closed_loop_qps: float
    served_seconds: float
    served_qps: float
    speedup: float
    identical: bool
    report: ServingReport


def compare_serving(
    index,
    snapshot_path: str,
    queries,
    k: int,
    *,
    n_workers: int,
    policy: BatchPolicy | None = None,
    cache_capacity: int = 0,
    start_method: str | None = None,
    deadline_ms: float | None = None,
    heartbeat_timeout: float | None = 30.0,
    max_resubmits: int = 1,
) -> ServingComparison:
    """Measure closed-loop vs micro-batched serving for one index.

    ``index`` is the locally built structure (the baseline); the server
    loads ``snapshot_path``, which must be a snapshot of that same
    index so the bit-identity check is meaningful.  The hardening knobs
    (``deadline_ms``, admission bounds on ``policy``,
    ``heartbeat_timeout``, ``max_resubmits``) are forwarded so
    ``repro serve-bench`` can exercise degradation behavior; shed or
    failed requests are excluded from the identity check and show up in
    the report counters instead.
    """
    array = np.asarray(queries, dtype=np.float64)
    closed_seconds, closed_results = closed_loop_run(index, array, k)
    with IndexServer(
        snapshot_path,
        n_workers=n_workers,
        policy=policy,
        cache_capacity=cache_capacity,
        start_method=start_method,
        heartbeat_timeout=heartbeat_timeout,
        max_resubmits=max_resubmits,
    ) as server:
        served_seconds, served_results, report = served_run(
            server, array, k, deadline_ms=deadline_ms
        )
    n_queries = array.shape[0]
    return ServingComparison(
        index_kind=type(index).__name__,
        n_points=index.n_points,
        dims=index.dimensionality,
        n_queries=n_queries,
        k=k,
        n_workers=n_workers,
        closed_loop_seconds=closed_seconds,
        closed_loop_qps=n_queries / closed_seconds if closed_seconds else 0.0,
        served_seconds=served_seconds,
        served_qps=n_queries / served_seconds if served_seconds else 0.0,
        speedup=closed_seconds / served_seconds if served_seconds else 0.0,
        identical=identical_results(closed_results, served_results),
        report=report,
    )


@dataclass(frozen=True)
class MutationComparison:
    """One mutate-while-serving trace, identity-checked throughout."""

    index_kind: str
    n_initial: int
    dims: int
    k: int
    n_ops: int
    n_inserts: int
    n_deletes: int
    n_queries: int
    n_compactions: int
    n_drift_compactions: int
    n_generations: int
    swap_inflight_queries: int
    wal_sync: str
    identical: bool
    mutate_seconds: float
    query_seconds: float
    query_qps: float


def compare_mutable_serving(
    root: str,
    points,
    queries,
    k: int,
    *,
    kind: str = "bruteforce",
    index_kwargs: dict | None = None,
    n_ops: int = 200,
    insert_fraction: float = 0.5,
    delete_fraction: float = 0.2,
    compact_every: int | None = 64,
    drift_threshold: float | None = None,
    drift_scale=None,
    swap_inflight_queries: int = 8,
    n_workers: int = 0,
    deadline_ms: float | None = None,
    wal_sync: str = "always",
    seed: int = 0,
) -> MutationComparison:
    """Drive an insert/delete/query trace and check rebuild identity.

    The trace interleaves inserts, deletes, and queries drawn from a
    seeded rng over a :class:`~repro.serve.mutation.MutableIndexServer`
    rooted at ``root``.  **Every** query in the trace is checked
    bit-identical against an index freshly built over the live rowset
    at that instant.  After every ``compact_every`` mutations a manual
    compaction runs *concurrently* with ``swap_inflight_queries``
    queries (mutations quiescent, so the expected answer is fixed),
    asserting the hot swap neither drops nor mis-answers in-flight
    traffic.  With ``drift_threshold`` set (projscreen), inserts are
    drawn scaled by ``drift_scale`` so the live distribution rotates
    away from the frozen basis and drift compactions fire.
    ``wal_sync`` picks the write-ahead-log fsync policy the mutations
    pay for (``mutate_seconds`` prices it).
    """
    import threading

    from repro.serve.mutation import (
        MutableIndexServer,
        live_reference_index,
    )

    array = np.asarray(points, dtype=np.float64)
    probe = np.asarray(queries, dtype=np.float64)
    rng = np.random.default_rng(seed)
    dims = array.shape[1]
    n_inserts = n_deletes = n_queries = n_checked_swap = 0
    identical = True
    mutate_seconds = 0.0
    query_seconds = 0.0

    server = MutableIndexServer(
        root,
        array,
        kind=kind,
        index_kwargs=index_kwargs,
        n_workers=n_workers,
        drift_threshold=drift_threshold,
        default_deadline_ms=deadline_ms,
        wal_sync=wal_sync,
    )
    live: list[int] = list(range(array.shape[0]))
    with server:
        def check_queries(rows) -> bool:
            nonlocal query_seconds
            reference, live_ids = live_reference_index(server)
            ok = True
            for row in rows:
                started = time.perf_counter()
                observed = server.query(row, k=k)
                query_seconds += time.perf_counter() - started
                ok = ok and identical_answers(
                    reference.query(row, k=k), live_ids, observed
                )
            return ok

        since_compaction = 0
        for _ in range(n_ops):
            roll = rng.random()
            if roll < insert_fraction:
                vector = rng.standard_normal(dims)
                if drift_scale is not None:
                    vector = vector * np.asarray(drift_scale, dtype=float)
                started = time.perf_counter()
                live.append(server.insert(vector))
                mutate_seconds += time.perf_counter() - started
                n_inserts += 1
                since_compaction += 1
            elif roll < insert_fraction + delete_fraction and len(live) > k:
                victim = live.pop(int(rng.integers(len(live))))
                started = time.perf_counter()
                server.delete(victim)
                mutate_seconds += time.perf_counter() - started
                n_deletes += 1
                since_compaction += 1
            else:
                row = probe[int(rng.integers(probe.shape[0]))]
                n_queries += 1
                identical = check_queries([row]) and identical
            if compact_every is not None and since_compaction >= compact_every:
                since_compaction = 0
                # Hot swap under fire: queries run while the compactor
                # publishes and swaps the next generation.  Mutations
                # are quiescent, so each in-flight query has exactly
                # one correct answer regardless of which side of the
                # swap serves it.
                swap_rows = probe[
                    rng.integers(probe.shape[0], size=swap_inflight_queries)
                ]
                outcome: dict = {}

                def run_swap_queries():
                    outcome["ok"] = check_queries(list(swap_rows))

                thread = threading.Thread(target=run_swap_queries)
                thread.start()
                server.compact(reason="size")
                thread.join()
                identical = identical and outcome["ok"]
                n_queries += swap_inflight_queries
                n_checked_swap += swap_inflight_queries
        # Final sweep over the full probe set against the final rowset.
        identical = check_queries(list(probe)) and identical
        n_queries += probe.shape[0]
        generations = server.store.generations()
        return MutationComparison(
            index_kind=kind,
            n_initial=array.shape[0],
            dims=dims,
            k=k,
            n_ops=n_ops,
            n_inserts=n_inserts,
            n_deletes=n_deletes,
            n_queries=n_queries,
            n_compactions=server.n_compactions,
            n_drift_compactions=server.n_drift_compactions,
            n_generations=len(generations),
            swap_inflight_queries=n_checked_swap,
            wal_sync=wal_sync,
            identical=identical,
            mutate_seconds=mutate_seconds,
            query_seconds=query_seconds,
            query_qps=(
                n_queries / query_seconds if query_seconds else 0.0
            ),
        )
