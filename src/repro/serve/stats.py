"""Serving-side instrumentation: throughput, latency, batch shapes.

:class:`ServingStats` is the mutable accumulator the server records
into; :class:`ServingReport` is the immutable snapshot handed to
callers (and printed by ``repro serve-bench``).  Latency percentiles use
the nearest-rank method so a report is a deterministic function of the
retained samples.

Latency samples live in a :class:`LatencyReservoir` — a fixed-size
uniform reservoir (Vitter's Algorithm R) driven by a *seeded* RNG, so
memory stays O(reservoir capacity) no matter how long the server runs
**and** the retained sample set (hence every percentile report) is a
deterministic function of the recorded sequence: feed two accumulators
the same latencies and their reports are identical.  The pre-hardening
implementation appended every sample to a list for the life of the
server, which is an unbounded leak under sustained traffic.

Besides successes, the accumulator counts every degradation outcome the
hardened server can produce — failed batches, shed requests, expired
deadlines, caller-cancelled futures — plus the worker-pool recovery
counters (restarts, hung-worker kills, resubmissions), so a report
always accounts for every submitted request: ``n_requests + n_failed +
n_shed + n_deadline_exceeded + n_cancelled`` equals the number of
completed submissions.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.search.results import QueryStats, combine_stats


def nearest_rank_percentile(samples: np.ndarray, q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100])."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must lie in [0, 100], got {q}")
    if samples.size == 0:
        return 0.0
    ordered = np.sort(samples)
    rank = max(1, int(np.ceil(q / 100.0 * ordered.size)))
    return float(ordered[rank - 1])


class LatencyReservoir:
    """Fixed-size uniform sample of a stream (Algorithm R, seeded).

    The first ``capacity`` values are kept verbatim; the i-th value
    thereafter replaces a uniformly chosen retained sample with
    probability ``capacity / i``.  Because the RNG is seeded, the
    retained set is a deterministic function of the ``add`` sequence —
    two reservoirs fed the same stream hold identical samples, so
    percentile reports are reproducible run to run while memory stays
    O(capacity).

    Args:
        capacity: samples retained (default 4096 — percentile error on
            a p99 estimate is well under a percentile point at this
            size).
        seed: RNG seed; ``reset`` re-seeds so a reset reservoir replays
            identically.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._samples: list[float] = []
        self._n_seen = 0

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def n_seen(self) -> int:
        """Values offered to the reservoir over its lifetime."""
        return self._n_seen

    def add(self, value: float) -> None:
        """Offer one value; it is retained with probability capacity/n_seen."""
        self._n_seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self._n_seen)
        if slot < self.capacity:
            self._samples[slot] = value

    def snapshot(self) -> np.ndarray:
        """The retained samples as a float64 array (copy)."""
        return np.asarray(self._samples, dtype=np.float64)

    def reset(self) -> None:
        """Drop every sample and re-seed, so a fresh run replays identically."""
        self._rng = random.Random(self.seed)
        self._samples.clear()
        self._n_seen = 0


@dataclass(frozen=True)
class ServingReport:
    """Immutable summary of a serving run.

    Attributes:
        n_requests: single-query requests answered successfully (cache
            hits included).
        n_batches: ``query_batch`` calls issued downstream.
        elapsed_seconds: wall time since the stats were started/reset.
        throughput_qps: ``n_requests / elapsed_seconds``.
        latency_p50_ms / latency_p95_ms / latency_p99_ms: request latency
            percentiles (submit to completed future), milliseconds,
            computed over the deterministic latency reservoir.
        batch_size_histogram: batch size -> number of flushed batches.
        mean_batch_size: request rows per flushed batch, averaged.
        query_stats: summed work accounting across every served batch.
        cache_hits / cache_misses / cache_evictions: LRU counters (all
            zero when the server runs without a cache).
        n_failed: requests whose future resolved with an error other
            than shedding or a deadline (worker failures, injected
            faults, validation errors surfaced downstream).
        n_shed: requests sacrificed by the bounded admission queue
            (``ServerOverloaded`` — rejected new or dropped oldest).
        n_deadline_exceeded: requests that failed with
            ``DeadlineExceeded`` at any stage.
        n_cancelled: requests whose future the *caller* cancelled while
            it was still pending.  Without this column a cancelled
            request would vanish from the ledger and
            ``n_requests + n_failed + n_shed + n_deadline_exceeded``
            would undercount the completed submissions.
        n_restarts / n_hung_kills / n_resubmitted: worker-pool recovery
            counters (zero for in-process serving).
    """

    n_requests: int
    n_batches: int
    elapsed_seconds: float
    throughput_qps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    batch_size_histogram: dict[int, int]
    mean_batch_size: float
    query_stats: QueryStats = field(default_factory=QueryStats)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    n_failed: int = 0
    n_shed: int = 0
    n_deadline_exceeded: int = 0
    n_cancelled: int = 0
    n_restarts: int = 0
    n_hung_kills: int = 0
    n_resubmitted: int = 0


class ServingStats:
    """Thread-safe accumulator for the serving metrics.

    The server calls :meth:`record_request` once per successfully
    completed request (with the submit-to-completion latency),
    :meth:`record_batch` once per flushed batch, and one of
    :meth:`record_failure` / :meth:`record_shed` /
    :meth:`record_deadline_exceeded` per degraded request.
    :meth:`report` snapshots everything.

    Args:
        reservoir_capacity / reservoir_seed: forwarded to the
            :class:`LatencyReservoir` that bounds latency-sample memory.
    """

    def __init__(
        self, *, reservoir_capacity: int = 4096, reservoir_seed: int = 0
    ) -> None:
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self._latencies = LatencyReservoir(reservoir_capacity, reservoir_seed)
        self._histogram: dict[int, int] = {}
        # Folded on the fly (QueryStats addition is associative), so the
        # accumulator holds one total instead of a per-batch list — the
        # same unbounded-growth fix the latency reservoir applies.
        self._batch_stats = QueryStats()
        self._n_requests = 0
        self._n_batches = 0
        self._n_rows = 0
        self._n_failed = 0
        self._n_shed = 0
        self._n_deadline_exceeded = 0
        self._n_cancelled = 0

    def record_request(self, latency_seconds: float) -> None:
        """Account one successfully completed single-query request."""
        with self._lock:
            self._n_requests += 1
            self._latencies.add(latency_seconds)

    def record_failure(self) -> None:
        """Account one request whose future resolved with an error."""
        with self._lock:
            self._n_failed += 1

    def record_shed(self) -> None:
        """Account one request shed by the bounded admission queue."""
        with self._lock:
            self._n_shed += 1

    def record_deadline_exceeded(self) -> None:
        """Account one request that missed its end-to-end deadline."""
        with self._lock:
            self._n_deadline_exceeded += 1

    def record_cancelled(self) -> None:
        """Account one request whose future the caller cancelled."""
        with self._lock:
            self._n_cancelled += 1

    def record_batch(self, size: int, stats: QueryStats | None = None) -> None:
        """Account one flushed batch of ``size`` request rows."""
        if size < 0:
            raise ValueError(f"batch size must be non-negative, got {size}")
        with self._lock:
            self._n_batches += 1
            self._n_rows += size
            self._histogram[size] = self._histogram.get(size, 0) + 1
            if stats is not None:
                self._batch_stats = combine_stats([self._batch_stats, stats])

    def reset(self) -> None:
        """Discard all samples and restart the wall clock."""
        with self._lock:
            self._started = time.perf_counter()
            self._latencies.reset()
            self._histogram.clear()
            self._batch_stats = QueryStats()
            self._n_requests = 0
            self._n_batches = 0
            self._n_rows = 0
            self._n_failed = 0
            self._n_shed = 0
            self._n_deadline_exceeded = 0
            self._n_cancelled = 0

    def report(
        self,
        *,
        cache_counters: tuple[int, int, int] = (0, 0, 0),
        pool_counters: tuple[int, int, int] = (0, 0, 0),
    ) -> ServingReport:
        """Snapshot the accumulated metrics into a :class:`ServingReport`.

        ``pool_counters`` is ``(n_restarts, n_hung_kills,
        n_resubmitted)`` from the worker pool, merged in the same way
        the cache counters are.
        """
        with self._lock:
            elapsed = time.perf_counter() - self._started
            latencies = self._latencies.snapshot()
            histogram = dict(self._histogram)
            total = combine_stats([self._batch_stats])
            n_requests = self._n_requests
            n_batches = self._n_batches
            n_rows = self._n_rows
            n_failed = self._n_failed
            n_shed = self._n_shed
            n_deadline = self._n_deadline_exceeded
            n_cancelled = self._n_cancelled
        hits, misses, evictions = cache_counters
        restarts, hung_kills, resubmitted = pool_counters
        return ServingReport(
            n_requests=n_requests,
            n_batches=n_batches,
            elapsed_seconds=elapsed,
            throughput_qps=n_requests / elapsed if elapsed > 0 else 0.0,
            latency_p50_ms=nearest_rank_percentile(latencies, 50.0) * 1e3,
            latency_p95_ms=nearest_rank_percentile(latencies, 95.0) * 1e3,
            latency_p99_ms=nearest_rank_percentile(latencies, 99.0) * 1e3,
            batch_size_histogram=histogram,
            mean_batch_size=n_rows / n_batches if n_batches else 0.0,
            query_stats=total,
            cache_hits=hits,
            cache_misses=misses,
            cache_evictions=evictions,
            n_failed=n_failed,
            n_shed=n_shed,
            n_deadline_exceeded=n_deadline,
            n_cancelled=n_cancelled,
            n_restarts=restarts,
            n_hung_kills=hung_kills,
            n_resubmitted=resubmitted,
        )
