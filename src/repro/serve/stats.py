"""Serving-side instrumentation: throughput, latency, batch shapes.

:class:`ServingStats` is the mutable accumulator the server records
into; :class:`ServingReport` is the immutable snapshot handed to
callers (and printed by ``repro serve-bench``).  Latency percentiles use
the nearest-rank method so a report is a deterministic function of the
recorded samples.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.search.results import QueryStats, combine_stats


def nearest_rank_percentile(samples: np.ndarray, q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100])."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must lie in [0, 100], got {q}")
    if samples.size == 0:
        return 0.0
    ordered = np.sort(samples)
    rank = max(1, int(np.ceil(q / 100.0 * ordered.size)))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class ServingReport:
    """Immutable summary of a serving run.

    Attributes:
        n_requests: single-query requests answered (cache hits included).
        n_batches: ``query_batch`` calls issued downstream.
        elapsed_seconds: wall time since the stats were started/reset.
        throughput_qps: ``n_requests / elapsed_seconds``.
        latency_p50_ms / latency_p95_ms / latency_p99_ms: request latency
            percentiles (submit to completed future), milliseconds.
        batch_size_histogram: batch size -> number of flushed batches.
        mean_batch_size: request rows per flushed batch, averaged.
        query_stats: summed work accounting across every served batch.
        cache_hits / cache_misses / cache_evictions: LRU counters (all
            zero when the server runs without a cache).
    """

    n_requests: int
    n_batches: int
    elapsed_seconds: float
    throughput_qps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    batch_size_histogram: dict[int, int]
    mean_batch_size: float
    query_stats: QueryStats = field(default_factory=QueryStats)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0


class ServingStats:
    """Thread-safe accumulator for the serving metrics.

    The server calls :meth:`record_request` once per completed request
    (with the submit-to-completion latency) and :meth:`record_batch`
    once per flushed batch.  :meth:`report` snapshots everything.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self._latencies: list[float] = []
        self._histogram: dict[int, int] = {}
        self._batch_stats: list[QueryStats] = []
        self._n_requests = 0
        self._n_batches = 0
        self._n_rows = 0

    def record_request(self, latency_seconds: float) -> None:
        """Account one completed single-query request."""
        with self._lock:
            self._n_requests += 1
            self._latencies.append(latency_seconds)

    def record_batch(self, size: int, stats: QueryStats | None = None) -> None:
        """Account one flushed batch of ``size`` request rows."""
        if size < 0:
            raise ValueError(f"batch size must be non-negative, got {size}")
        with self._lock:
            self._n_batches += 1
            self._n_rows += size
            self._histogram[size] = self._histogram.get(size, 0) + 1
            if stats is not None:
                self._batch_stats.append(stats)

    def reset(self) -> None:
        """Discard all samples and restart the wall clock."""
        with self._lock:
            self._started = time.perf_counter()
            self._latencies.clear()
            self._histogram.clear()
            self._batch_stats.clear()
            self._n_requests = 0
            self._n_batches = 0
            self._n_rows = 0

    def report(
        self, *, cache_counters: tuple[int, int, int] = (0, 0, 0)
    ) -> ServingReport:
        """Snapshot the accumulated metrics into a :class:`ServingReport`."""
        with self._lock:
            elapsed = time.perf_counter() - self._started
            latencies = np.asarray(self._latencies, dtype=np.float64)
            histogram = dict(self._histogram)
            total = combine_stats(self._batch_stats)
            n_requests = self._n_requests
            n_batches = self._n_batches
            n_rows = self._n_rows
        hits, misses, evictions = cache_counters
        return ServingReport(
            n_requests=n_requests,
            n_batches=n_batches,
            elapsed_seconds=elapsed,
            throughput_qps=n_requests / elapsed if elapsed > 0 else 0.0,
            latency_p50_ms=nearest_rank_percentile(latencies, 50.0) * 1e3,
            latency_p95_ms=nearest_rank_percentile(latencies, 95.0) * 1e3,
            latency_p99_ms=nearest_rank_percentile(latencies, 99.0) * 1e3,
            batch_size_histogram=histogram,
            mean_batch_size=n_rows / n_batches if n_batches else 0.0,
            query_stats=total,
            cache_hits=hits,
            cache_misses=misses,
            cache_evictions=evictions,
        )
