"""Dynamic micro-batching of individually arriving k-NN requests.

Single-query traffic pays per-call overhead that the vectorized
``query_batch`` kernels amortize away; the :class:`MicroBatcher` closes
that gap by coalescing requests that arrive within a short window into
one batch.  The policy is the classic size-or-deadline rule: a batch is
flushed as soon as it holds :attr:`BatchPolicy.max_batch` requests *or*
its oldest request has waited :attr:`BatchPolicy.max_wait_ms`,
whichever happens first.  Requests with different ``k`` never share a
batch (``query_batch`` takes one ``k``), so pending requests are grouped
per ``k``.

Two robustness features ride on the same queue:

* **Per-request deadlines.**  ``submit`` accepts an absolute deadline
  (``time.perf_counter()`` seconds); a request still queued when its
  deadline passes has its future failed with
  :class:`~repro.serve.errors.DeadlineExceeded` instead of waiting for a
  flush that may never help it.  The flusher thread arms its sleep to
  the earliest of the flush deadlines *and* the request deadlines.
* **Bounded admission.**  When :attr:`BatchPolicy.max_pending` is set,
  the total number of queued requests never exceeds it.  An arrival
  that would overflow is handled per :attr:`BatchPolicy.shed_policy`:
  ``"reject-new"`` raises :class:`~repro.serve.errors.ServerOverloaded`
  in the submitting caller, ``"drop-oldest"`` admits the newcomer and
  fails the oldest queued request's future with the same error.

Batching is a latency/throughput trade only — the flushed batch goes
through the same ``query_batch`` engine whose answers are bit-identical
to sequential ``query``, and rows keep their arrival order inside a
batch.  Shed and expired requests are *failed*, never answered
approximately.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass

import numpy as np

from repro.serve.errors import (
    DeadlineExceeded,
    ServerClosedError,
    ServerOverloaded,
)

_SHED_POLICIES = ("reject-new", "drop-oldest")


@dataclass(frozen=True)
class BatchPolicy:
    """Flush and admission policy for the micro-batcher.

    Attributes:
        max_batch: flush a group as soon as it holds this many requests.
        max_wait_ms: flush a group once its oldest request has waited
            this long, even if the batch is not full.  ``0`` disables
            artificial waiting: a group is flushed as soon as the
            flusher thread gets to it, which still yields natural
            batching while a previous flush is in flight.
        max_pending: bound on the total number of queued (not yet
            flushed) requests across all ``k`` groups; ``None`` leaves
            admission unbounded (the pre-hardening behavior).
        shed_policy: what to do with an arrival that would overflow
            ``max_pending`` — ``"reject-new"`` raises
            :class:`~repro.serve.errors.ServerOverloaded` in the caller,
            ``"drop-oldest"`` admits it and fails the oldest queued
            request instead.
    """

    max_batch: int = 64
    max_wait_ms: float = 2.0
    max_pending: int | None = None
    shed_policy: str = "reject-new"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be non-negative, got {self.max_wait_ms}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(
                f"max_pending must be positive or None, got {self.max_pending}"
            )
        if self.shed_policy not in _SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {_SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )


class _Group:
    """Pending requests sharing one ``k`` (rows kept in arrival order).

    ``deadlines`` holds each request's absolute deadline (or ``None``),
    ``seqs`` its global arrival number — the drop-oldest policy uses the
    latter to find the oldest request across groups.
    """

    __slots__ = ("rows", "futures", "deadlines", "seqs", "flush_at")

    def __init__(self, flush_at: float) -> None:
        self.rows: list[np.ndarray] = []
        self.futures: list[Future] = []
        self.deadlines: list[float | None] = []
        self.seqs: list[int] = []
        self.flush_at = flush_at


class MicroBatcher:
    """Coalesce single ``(query, k)`` requests into batch flushes.

    Args:
        flush: callable ``flush(queries, k, futures, deadlines)``
            invoked on the batcher's background thread with a
            ``(rows, d)`` float64 matrix, the matching per-row futures,
            and the per-row absolute deadlines (``None`` where a request
            has no deadline).  It must resolve every future (result or
            exception); an exception escaping ``flush`` itself is routed
            to the batch's futures.
        policy: the size/deadline flush policy plus admission bound.

    ``submit`` never blocks on query execution — it enqueues and wakes
    the flusher.  Batches never exceed ``policy.max_batch`` rows: when
    requests outrun the flusher, an oversized group is split and the
    remainder is re-armed with a fresh flush deadline (per-request
    deadlines are untouched by the re-arm and keep counting down).
    """

    def __init__(self, flush, policy: BatchPolicy | None = None) -> None:
        self._flush = flush
        self.policy = policy if policy is not None else BatchPolicy()
        self._cond = threading.Condition()
        self._pending: dict[int, _Group] = {}
        self._n_pending = 0
        self._seq = itertools.count()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._thread.start()

    @property
    def n_pending(self) -> int:
        """Requests currently queued (admission-bound accounting)."""
        with self._cond:
            return self._n_pending

    def submit(
        self, query: np.ndarray, k: int, deadline: float | None = None
    ) -> Future:
        """Enqueue one request; the future resolves to its KnnResult.

        ``deadline`` is an absolute ``time.perf_counter()`` value; a
        request still queued past it fails with
        :class:`~repro.serve.errors.DeadlineExceeded`.  Raises
        :class:`~repro.serve.errors.ServerClosedError` after ``close``
        and :class:`~repro.serve.errors.ServerOverloaded` when the
        admission queue is full under ``reject-new``.
        """
        future: Future = Future()
        victim = None
        with self._cond:
            if self._closed:
                raise ServerClosedError("batcher is closed")
            bound = self.policy.max_pending
            if bound is not None and self._n_pending >= bound:
                if self.policy.shed_policy == "reject-new":
                    raise ServerOverloaded(
                        f"admission queue is full "
                        f"({self._n_pending} requests pending)"
                    )
                victim = self._drop_oldest_locked()
            group = self._pending.get(k)
            if group is None:
                flush_at = time.perf_counter() + self.policy.max_wait_ms / 1e3
                group = _Group(flush_at)
                self._pending[k] = group
                self._cond.notify()
            group.rows.append(query)
            group.futures.append(future)
            group.deadlines.append(deadline)
            group.seqs.append(next(self._seq))
            self._n_pending += 1
            if deadline is not None:
                # The flusher's sleep may be armed past this deadline;
                # wake it so it re-arms to the new earliest wakeup.
                self._cond.notify()
            if len(group.rows) >= self.policy.max_batch:
                self._cond.notify()
        if victim is not None:
            _fail_future(
                victim,
                ServerOverloaded(
                    "shed by drop-oldest admission policy to make room "
                    "for a newer request"
                ),
            )
        return future

    def close(self) -> None:
        """Flush everything still pending and stop the flusher thread."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify()
        self._thread.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queue maintenance (call with the lock held) -------------------

    def _drop_oldest_locked(self) -> Future:
        """Remove the oldest queued request; return its (unfailed) future."""
        k = min(self._pending, key=lambda key: self._pending[key].seqs[0])
        group = self._pending[k]
        group.rows.pop(0)
        future = group.futures.pop(0)
        group.deadlines.pop(0)
        group.seqs.pop(0)
        self._n_pending -= 1
        if not group.rows:
            del self._pending[k]
        return future

    def _collect_expired_locked(self, now: float) -> list[Future]:
        """Detach every queued request whose deadline has passed."""
        expired: list[Future] = []
        for k in list(self._pending):
            group = self._pending[k]
            if all(d is None or d > now for d in group.deadlines):
                continue
            keep = [
                i
                for i, d in enumerate(group.deadlines)
                if d is None or d > now
            ]
            expired.extend(
                group.futures[i]
                for i in range(len(group.futures))
                if group.deadlines[i] is not None
                and group.deadlines[i] <= now
            )
            self._n_pending -= len(group.rows) - len(keep)
            if not keep:
                del self._pending[k]
                continue
            group.rows = [group.rows[i] for i in keep]
            group.futures = [group.futures[i] for i in keep]
            group.deadlines = [group.deadlines[i] for i in keep]
            group.seqs = [group.seqs[i] for i in keep]
        return expired

    def _pop_ready(self, now: float) -> tuple[int, list, list, list] | None:
        """Detach one flushable ``(k, rows, futures, deadlines)``."""
        for k, group in self._pending.items():
            full = len(group.rows) >= self.policy.max_batch
            if not (full or group.flush_at <= now or self._closed):
                continue
            if len(group.rows) > self.policy.max_batch:
                cut = self.policy.max_batch
                rows = group.rows[:cut]
                futures = group.futures[:cut]
                deadlines = group.deadlines[:cut]
                group.rows = group.rows[cut:]
                group.futures = group.futures[cut:]
                group.deadlines = group.deadlines[cut:]
                group.seqs = group.seqs[cut:]
                # The survivors arrived while the flusher was busy; give
                # them a full wait window rather than an instant flush.
                # Their own request deadlines keep counting down.
                group.flush_at = now + self.policy.max_wait_ms / 1e3
                self._n_pending -= cut
                return k, rows, futures, deadlines
            del self._pending[k]
            self._n_pending -= len(group.rows)
            return k, group.rows, group.futures, group.deadlines
        return None

    def _next_wakeup(self, now: float) -> float | None:
        """Seconds until the earliest flush or request deadline."""
        candidates = [g.flush_at for g in self._pending.values()]
        candidates.extend(
            d
            for g in self._pending.values()
            for d in g.deadlines
            if d is not None
        )
        if not candidates:
            return None
        return min(candidates) - now

    # -- flusher thread ------------------------------------------------

    def _run(self) -> None:
        while True:
            ready = None
            expired: list[Future] = []
            with self._cond:
                while True:
                    now = time.perf_counter()
                    expired = self._collect_expired_locked(now)
                    if expired:
                        break
                    ready = self._pop_ready(now)
                    if ready is not None:
                        break
                    if self._closed and not self._pending:
                        return
                    timeout = self._next_wakeup(now)
                    if timeout is None or timeout > 0:
                        self._cond.wait(timeout)
            for future in expired:
                _fail_future(
                    future,
                    DeadlineExceeded(
                        "request deadline passed while queued for a batch"
                    ),
                )
            if ready is not None:
                k, rows, futures, deadlines = ready
                self._flush_one(k, rows, futures, deadlines)

    def _flush_one(
        self, k: int, rows: list, futures: list, deadlines: list
    ) -> None:
        try:
            self._flush(np.stack(rows), k, futures, deadlines)
        except Exception as error:  # route to the waiting callers
            for future in futures:
                _fail_future(future, error)


def _fail_future(future: Future, error: Exception) -> None:
    if future.done():
        return
    try:
        future.set_exception(error)
    except InvalidStateError:  # resolved concurrently
        pass
