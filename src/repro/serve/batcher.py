"""Dynamic micro-batching of individually arriving k-NN requests.

Single-query traffic pays per-call overhead that the vectorized
``query_batch`` kernels amortize away; the :class:`MicroBatcher` closes
that gap by coalescing requests that arrive within a short window into
one batch.  The policy is the classic size-or-deadline rule: a batch is
flushed as soon as it holds :attr:`BatchPolicy.max_batch` requests *or*
its oldest request has waited :attr:`BatchPolicy.max_wait_ms`,
whichever happens first.  Requests with different ``k`` never share a
batch (``query_batch`` takes one ``k``), so pending requests are grouped
per ``k``.

Batching is a latency/throughput trade only — the flushed batch goes
through the same ``query_batch`` engine whose answers are bit-identical
to sequential ``query``, and rows keep their arrival order inside a
batch.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BatchPolicy:
    """Flush policy for the micro-batcher.

    Attributes:
        max_batch: flush a group as soon as it holds this many requests.
        max_wait_ms: flush a group once its oldest request has waited
            this long, even if the batch is not full.  ``0`` disables
            artificial waiting: a group is flushed as soon as the
            flusher thread gets to it, which still yields natural
            batching while a previous flush is in flight.
    """

    max_batch: int = 64
    max_wait_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be non-negative, got {self.max_wait_ms}"
            )


class _Group:
    """Pending requests sharing one ``k`` (rows kept in arrival order)."""

    __slots__ = ("rows", "futures", "deadline")

    def __init__(self, deadline: float) -> None:
        self.rows: list[np.ndarray] = []
        self.futures: list[Future] = []
        self.deadline = deadline


class MicroBatcher:
    """Coalesce single ``(query, k)`` requests into batch flushes.

    Args:
        flush: callable ``flush(queries, k, futures)`` invoked on the
            batcher's background thread with a ``(rows, d)`` float64
            matrix and the matching per-row futures.  It must resolve
            every future (result or exception); an exception escaping
            ``flush`` itself is routed to the batch's futures.
        policy: the size/deadline flush policy.

    ``submit`` never blocks on query execution — it enqueues and wakes
    the flusher.  Batches never exceed ``policy.max_batch`` rows: when
    requests outrun the flusher, an oversized group is split and the
    remainder is re-armed with a fresh deadline.
    """

    def __init__(self, flush, policy: BatchPolicy | None = None) -> None:
        self._flush = flush
        self.policy = policy if policy is not None else BatchPolicy()
        self._cond = threading.Condition()
        self._pending: dict[int, _Group] = {}
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-microbatcher", daemon=True
        )
        self._thread.start()

    def submit(self, query: np.ndarray, k: int) -> Future:
        """Enqueue one request; the future resolves to its KnnResult."""
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            group = self._pending.get(k)
            if group is None:
                deadline = time.perf_counter() + self.policy.max_wait_ms / 1e3
                group = _Group(deadline)
                self._pending[k] = group
                self._cond.notify()
            group.rows.append(query)
            group.futures.append(future)
            if len(group.rows) >= self.policy.max_batch:
                self._cond.notify()
        return future

    def close(self) -> None:
        """Flush everything still pending and stop the flusher thread."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify()
        self._thread.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pop_ready(self, now: float) -> tuple[int, list, list] | None:
        """Detach one flushable ``(k, rows, futures)`` under the lock."""
        for k, group in self._pending.items():
            full = len(group.rows) >= self.policy.max_batch
            if not (full or group.deadline <= now or self._closed):
                continue
            if len(group.rows) > self.policy.max_batch:
                rows = group.rows[: self.policy.max_batch]
                futures = group.futures[: self.policy.max_batch]
                group.rows = group.rows[self.policy.max_batch :]
                group.futures = group.futures[self.policy.max_batch :]
                # The survivors arrived while the flusher was busy; give
                # them a full wait window rather than an instant flush.
                group.deadline = now + self.policy.max_wait_ms / 1e3
                return k, rows, futures
            del self._pending[k]
            return k, group.rows, group.futures
        return None

    def _run(self) -> None:
        while True:
            with self._cond:
                while True:
                    now = time.perf_counter()
                    ready = self._pop_ready(now)
                    if ready is not None:
                        break
                    if self._closed and not self._pending:
                        return
                    deadlines = [
                        g.deadline for g in self._pending.values()
                    ]
                    timeout = min(deadlines) - now if deadlines else None
                    if timeout is None or timeout > 0:
                        self._cond.wait(timeout)
            k, rows, futures = ready
            self._flush_one(k, rows, futures)

    def _flush_one(self, k: int, rows: list, futures: list) -> None:
        try:
            self._flush(np.stack(rows), k, futures)
        except Exception as error:  # route to the waiting callers
            for future in futures:
                if not future.done():
                    future.set_exception(error)
