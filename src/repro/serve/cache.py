"""LRU result cache for served k-NN queries.

Keys bind the answer to everything that determines it: the exact query
bytes, ``k``, and a fingerprint of the index snapshot being served — so
a cache can never return an answer computed by a *different* index.
Cached values are the immutable :class:`~repro.search.results.KnnResult`
objects themselves; a hit is therefore bit-identical to recomputing, and
the cache never trades accuracy for throughput.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass


def snapshot_fingerprint(path: str) -> str:
    """SHA-256 of a snapshot file's bytes (streamed; hex digest).

    Two serving processes pointed at byte-identical snapshots share a
    fingerprint, so externally persisted cache entries stay portable.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def result_cache_key(query, k: int, fingerprint: str) -> tuple:
    """Cache key for one ``(query, k)`` request against one snapshot.

    ``query`` must already be the validated float64 vector the index
    will see — the raw bytes of that canonical form are what is hashed,
    so ``[1, 2]`` and ``np.array([1.0, 2.0])`` share an entry.
    """
    return (fingerprint, int(k), query.tobytes())


@dataclass(frozen=True)
class CacheCounters:
    """Point-in-time cache statistics."""

    hits: int
    misses: int
    evictions: int
    size: int


class ResultCache:
    """Thread-safe LRU mapping request keys to query results.

    Args:
        capacity: maximum number of entries; the least recently *used*
            entry is evicted when a new key would exceed it.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key):
        """The cached value for ``key``, or ``None`` (counted either way)."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            return None

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``; evicts the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    @property
    def counters(self) -> CacheCounters:
        with self._lock:
            return CacheCounters(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
            )
