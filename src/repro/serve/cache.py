"""LRU result cache for served k-NN queries.

Keys bind the answer to everything that determines it: the exact query
bytes, ``k``, and a fingerprint of the index snapshot being served — so
a cache can never return an answer computed by a *different* index.
Cached values are the immutable :class:`~repro.search.results.KnnResult`
objects themselves; a hit is therefore bit-identical to recomputing, and
the cache never trades accuracy for throughput.
"""

from __future__ import annotations

import hashlib
import threading
import zipfile
from collections import OrderedDict
from dataclasses import dataclass


def snapshot_fingerprint(path: str) -> str:
    """Content fingerprint of a snapshot archive (SHA-256 hex digest).

    Derived from the zip *central directory* — every member's name,
    uncompressed size, and CRC-32, in archive order — rather than by
    streaming the file's bytes.  The CRCs were already computed when the
    snapshot was written, so fingerprinting reads only the few-hundred-
    byte directory at the end of the file and never touches the
    (typically dominant) corpus member: server startup stays true to the
    ``mmap_points=True`` promise that the corpus bytes remain on disk.

    The binding semantics are unchanged: two byte-identical snapshots
    share a fingerprint (same members, sizes, CRCs in the same order),
    and any change to an array's contents changes its CRC and therefore
    the fingerprint, so a cache entry can never be replayed against a
    *different* index.  (CRC-32 is a checksum, not a cryptographic hash
    — the fingerprint defends against mixups, not adversarial forgery,
    which is all a result cache key needs.)
    """
    digest = hashlib.sha256()
    try:
        with zipfile.ZipFile(path) as archive:
            for info in archive.infolist():
                record = f"{info.filename}\x00{info.file_size}\x00{info.CRC}\n"
                digest.update(record.encode())
    except (OSError, zipfile.BadZipFile) as error:
        raise ValueError(
            f"{path}: cannot fingerprint snapshot archive ({error})"
        ) from error
    return digest.hexdigest()


def result_cache_key(query, k: int, fingerprint: str) -> tuple:
    """Cache key for one ``(query, k)`` request against one snapshot.

    ``query`` must already be the validated float64 vector the index
    will see — the raw bytes of that canonical form are what is hashed,
    so ``[1, 2]`` and ``np.array([1.0, 2.0])`` share an entry.
    """
    return (fingerprint, int(k), query.tobytes())


@dataclass(frozen=True)
class CacheCounters:
    """Point-in-time cache statistics."""

    hits: int
    misses: int
    evictions: int
    size: int


class ResultCache:
    """Thread-safe LRU mapping request keys to query results.

    Args:
        capacity: maximum number of entries; the least recently *used*
            entry is evicted when a new key would exceed it.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key):
        """The cached value for ``key``, or ``None`` (counted either way)."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            return None

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``; evicts the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    @property
    def counters(self) -> CacheCounters:
        with self._lock:
            return CacheCounters(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
            )
