"""Deterministic fault injection for the serving stack.

The hardening features — heartbeat hung-worker recovery, bounded
resubmission, deadlines, load shedding — are only trustworthy if they
can be *demonstrated*, repeatably, against real failures.  This module
provides the test doubles that inject those failures at the one seam
the worker pool exposes (``index_loader``):

* :class:`FaultPlan` — a declarative, picklable schedule of what goes
  wrong on which ``query_batch`` call (1-based ordinals, counted per
  :class:`FaultyIndex` instance, i.e. per worker-process lifetime):
  hang, crash the process, raise :class:`InjectedFault`, or sleep
  before answering.
* :class:`FaultyIndex` — wraps a real index and executes the plan; any
  call the plan does not claim is delegated verbatim, so every answer
  that *is* produced stays bit-identical to the clean index.
* :class:`FaultyLoader` — a picklable ``index_loader`` for
  :class:`~repro.serve.pool.WorkerPool` / ``IndexServer`` (works under
  both ``fork`` and ``spawn``).  With ``marker_path`` set, only the
  *first* worker to load (atomically claimed via ``open(..., "x")``)
  gets the faults; replacement workers load clean — which is how the
  tests prove that recovery re-answers the orphaned batch correctly
  instead of tripping the same fault forever.

Determinism: the plan is a pure function of the per-process call
ordinal, the marker claim is an atomic filesystem operation, and no
randomness is involved anywhere — the same scenario replays the same
way every run, which is what lets ``bench_ablation_robustness.py``
assert exact recovery behavior in CI.

In-process caveat: ``crash`` would exit the *serving* process and
``hang`` would wedge the batcher's flusher thread when used with
``n_workers=0`` — use those two only against worker pools.  ``raise``
and delays are safe everywhere.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.serve.errors import ServingError

_HANG_SECONDS = 3600.0
_CRASH_EXIT_CODE = 170


class InjectedFault(ServingError):
    """The deliberate failure a :class:`FaultPlan` ``raise_on`` raises."""


@dataclass(frozen=True)
class FaultPlan:
    """Schedule of injected faults, keyed by 1-based batch ordinal.

    Attributes:
        hang_on: ordinals on which ``query_batch`` blocks (effectively)
            forever — the hung-worker case the heartbeat must catch.
        crash_on: ordinals on which the worker process dies hard
            (``os._exit``), modelling a segfault/OOM-kill.
        raise_on: ordinals on which :class:`InjectedFault` is raised —
            a failing batch whose error must surface, typed, in the
            caller's future.
        delay_on: ``(ordinal, seconds)`` pairs: sleep, then answer
            normally — for deadline-expiry and backlog scenarios.
        delay_all: seconds to sleep before *every* batch (composable
            with the per-ordinal schedules) — for sustained-overload
            scenarios.
    """

    hang_on: tuple[int, ...] = ()
    crash_on: tuple[int, ...] = ()
    raise_on: tuple[int, ...] = ()
    delay_on: tuple[tuple[int, float], ...] = ()
    delay_all: float = 0.0

    def __post_init__(self) -> None:
        for ordinal in (*self.hang_on, *self.crash_on, *self.raise_on,
                        *(o for o, _ in self.delay_on)):
            if ordinal < 1:
                raise ValueError(
                    f"fault ordinals are 1-based, got {ordinal}"
                )
        for _, seconds in self.delay_on:
            if seconds < 0:
                raise ValueError(f"delay must be non-negative, got {seconds}")
        if self.delay_all < 0:
            raise ValueError(
                f"delay_all must be non-negative, got {self.delay_all}"
            )


class FaultyIndex:
    """An index wrapper that misbehaves on scheduled ``query_batch`` calls.

    Everything the plan does not claim is delegated verbatim to the
    wrapped index, so the answers a faulty index *does* produce are
    bit-identical to the clean one — degradation never changes results.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self.plan = plan
        self._calls = 0

    @property
    def n_points(self) -> int:
        return self._inner.n_points

    @property
    def dimensionality(self) -> int:
        return self._inner.dimensionality

    @property
    def calls(self) -> int:
        """``query_batch`` invocations so far (fault ordinals index this)."""
        return self._calls

    def query(self, query, k: int = 1):
        """Delegate a single query verbatim (faults only target batches)."""
        return self._inner.query(query, k=k)

    def query_batch(self, queries, k: int = 1):
        """Run the fault schedule for this ordinal, then delegate."""
        self._calls += 1
        ordinal = self._calls
        if self.plan.delay_all:
            time.sleep(self.plan.delay_all)
        for when, seconds in self.plan.delay_on:
            if when == ordinal:
                time.sleep(seconds)
        if ordinal in self.plan.raise_on:
            raise InjectedFault(f"injected failure on batch {ordinal}")
        if ordinal in self.plan.crash_on:
            os._exit(_CRASH_EXIT_CODE)
        if ordinal in self.plan.hang_on:
            time.sleep(_HANG_SECONDS)
        return self._inner.query_batch(queries, k=k)


@dataclass(frozen=True)
class FaultyLoader:
    """A picklable ``index_loader`` that wraps the snapshot in faults.

    Args:
        plan: the fault schedule every claimed load executes.
        marker_path: when set, only the first process to atomically
            create this file gets the plan; later loads (replacement
            workers after a kill/crash) get the clean index.  Leave
            ``None`` to make *every* worker faulty — e.g. to prove the
            bounded-resubmission guard trips on a poison batch.
    """

    plan: FaultPlan
    marker_path: str | None = None

    def __call__(self, snapshot_path: str, mmap_points: bool):
        from repro.search.snapshot import load_index

        index = load_index(snapshot_path, mmap_points=mmap_points)
        if self.marker_path is not None:
            try:
                with open(self.marker_path, "x"):
                    pass
            except FileExistsError:
                return index  # a previous worker already took the faults
        return FaultyIndex(index, self.plan)
