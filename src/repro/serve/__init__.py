"""Query serving: micro-batching, worker pools, caching, and stats.

The paper's operational argument (Sections 4-6) is that a well-chosen
reduced representation makes similarity *queries* cheap; this package
turns the repo's batch kernels and snapshot persistence into a serving
stack that realizes the claim for single-query traffic:

* :class:`MicroBatcher` — coalesces individually arriving ``(query, k)``
  requests into ``query_batch`` calls under a size/deadline policy
  (:class:`BatchPolicy`), so one-at-a-time traffic inherits the
  vectorized batch speedup.  The same queue enforces per-request
  deadlines and the bounded admission/load-shedding policy.
* :class:`WorkerPool` — N OS processes, each ``load()``-ing the same
  index snapshot with ``mmap_points=True``.  The corpus pages are shared
  read-only through the page cache, so N workers cost roughly one
  corpus, not N.  Crashed workers restart; hung workers (unanswered work
  held in silence past the heartbeat timeout, even after request
  deadlines expired) are killed into the same
  restart-plus-bounded-resubmission path.
* :class:`ResultCache` — an LRU over ``(query bytes, k, snapshot
  fingerprint)`` with hit/miss/eviction counters.  Concurrent identical
  misses coalesce: the second submitter rides the first's in-flight
  computation instead of recomputing (no cache stampede), and the
  fingerprint is derived from the snapshot's zip central directory so
  startup never streams the corpus bytes a memory-mapped server
  deliberately left on disk.
* :class:`ServingStats` / :class:`ServingReport` — throughput, latency
  percentiles over a bounded deterministic reservoir, batch-size
  histogram, summed :class:`~repro.search.results.QueryStats`, and the
  full degradation ledger (failed / shed / deadline-exceeded /
  cancelled / restarted / resubmitted).
* :class:`IndexServer` — the facade wiring all of the above together.
* :class:`MutableIndexServer` (:mod:`repro.serve.mutation`) — live
  insert/delete on top of immutable snapshot *generations*: an
  in-memory memtable merged exactly with the base answer, a background
  compactor that publishes new generations, and a zero-downtime hot
  swap whose in-flight queries are never dropped or mis-answered.
* :mod:`repro.serve.wal` — the per-generation write-ahead log
  (:class:`WalWriter`, :func:`read_wal`, :class:`WalError`) that makes
  the memtable crash-durable: checksummed append-before-acknowledge
  records, a ``sync_policy`` knob pricing fsync explicitly, atomic
  rotation at every compaction, and replay on resume that rebuilds the
  server bit-identically — torn tails truncated, mid-stream corruption
  refused loudly.
* :mod:`repro.serve.errors` — the typed failure taxonomy
  (:class:`DeadlineExceeded`, :class:`ServerOverloaded`,
  :class:`ServerClosedError`, :class:`WorkerError`, and
  :class:`ShardError` raised by the scatter-gather coordinator in
  :mod:`repro.shard`).
* :mod:`repro.serve.faults` — deterministic fault injection
  (:class:`FaultPlan`, :class:`FaultyIndex`, :class:`FaultyLoader`) for
  the robustness tests and ``bench_ablation_robustness.py``.

Every layer preserves the repo-wide contract: served answers are
bit-identical to sequential ``index.query`` — batching, caching, and
process hops never trade accuracy for throughput, and degradation sheds
or fails requests loudly instead of answering approximately.
"""

from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.bench import (
    MutationComparison,
    ServingComparison,
    compare_mutable_serving,
    compare_serving,
)
from repro.serve.cache import (
    CacheCounters,
    ResultCache,
    result_cache_key,
    snapshot_fingerprint,
)
from repro.serve.errors import (
    DeadlineExceeded,
    ServerClosedError,
    ServerOverloaded,
    ServingError,
    ShardError,
)
from repro.serve.faults import (
    FaultPlan,
    FaultyIndex,
    FaultyLoader,
    InjectedFault,
)
from repro.serve.mutation import MutableIndexServer, MutationError
from repro.serve.pool import WorkerError, WorkerPool
from repro.serve.server import IndexServer
from repro.serve.stats import LatencyReservoir, ServingReport, ServingStats
from repro.serve.wal import (
    SYNC_POLICIES,
    WalError,
    WalReplay,
    WalWriter,
    read_wal,
)

__all__ = [
    "BatchPolicy",
    "CacheCounters",
    "compare_mutable_serving",
    "compare_serving",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultyIndex",
    "FaultyLoader",
    "IndexServer",
    "InjectedFault",
    "LatencyReservoir",
    "MicroBatcher",
    "MutableIndexServer",
    "MutationComparison",
    "MutationError",
    "ResultCache",
    "result_cache_key",
    "ServerClosedError",
    "ServerOverloaded",
    "ServingComparison",
    "ServingError",
    "ServingReport",
    "ServingStats",
    "ShardError",
    "snapshot_fingerprint",
    "SYNC_POLICIES",
    "read_wal",
    "WalError",
    "WalReplay",
    "WalWriter",
    "WorkerError",
    "WorkerPool",
]
