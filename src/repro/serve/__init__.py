"""Query serving: micro-batching, worker pools, caching, and stats.

The paper's operational argument (Sections 4-6) is that a well-chosen
reduced representation makes similarity *queries* cheap; this package
turns the repo's batch kernels and snapshot persistence into a serving
stack that realizes the claim for single-query traffic:

* :class:`MicroBatcher` — coalesces individually arriving ``(query, k)``
  requests into ``query_batch`` calls under a size/deadline policy
  (:class:`BatchPolicy`), so one-at-a-time traffic inherits the
  vectorized batch speedup.
* :class:`WorkerPool` — N OS processes, each ``load()``-ing the same
  index snapshot with ``mmap_points=True``.  The corpus pages are shared
  read-only through the page cache, so N workers cost roughly one
  corpus, not N.
* :class:`ResultCache` — an LRU over ``(query bytes, k, snapshot
  fingerprint)`` with hit/miss/eviction counters.
* :class:`ServingStats` / :class:`ServingReport` — throughput, latency
  percentiles, batch-size histogram, and summed
  :class:`~repro.search.results.QueryStats`.
* :class:`IndexServer` — the facade wiring all of the above together.

Every layer preserves the repo-wide contract: served answers are
bit-identical to sequential ``index.query`` — batching and caching never
trade accuracy for throughput.
"""

from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.bench import ServingComparison, compare_serving
from repro.serve.cache import (
    CacheCounters,
    ResultCache,
    result_cache_key,
    snapshot_fingerprint,
)
from repro.serve.pool import WorkerError, WorkerPool
from repro.serve.server import IndexServer
from repro.serve.stats import ServingReport, ServingStats

__all__ = [
    "BatchPolicy",
    "CacheCounters",
    "compare_serving",
    "ServingComparison",
    "IndexServer",
    "MicroBatcher",
    "ResultCache",
    "result_cache_key",
    "ServingReport",
    "ServingStats",
    "snapshot_fingerprint",
    "WorkerError",
    "WorkerPool",
]
