"""Typed error taxonomy for the serving stack.

The serving layer's degradation contract is: shed or fail a request
*loudly*, never answer it approximately or drop it silently.  Every
degradation path therefore resolves the affected future (or raises in
the submitting caller) with one of the types below, so callers can
branch on *what* went wrong instead of parsing message strings:

* :class:`DeadlineExceeded` — the request's end-to-end deadline passed
  before its answer was delivered.  The work may still complete
  downstream (queries are read-only, so that is harmless), but the
  caller is released at the deadline instead of waiting forever.
* :class:`ServerOverloaded` — the bounded admission queue was full and
  the load-shedding policy sacrificed this request: raised
  synchronously from ``submit`` under ``reject-new``, set on the oldest
  queued future under ``drop-oldest``.
* :class:`ServerClosedError` — work was submitted after ``close()``.
* :class:`ShardError` — in sharded serving, one shard of a
  scatter-gather fan-out failed, so the merged top-k cannot be produced.
  A partial merge over the surviving shards would be silently *wrong*
  (the dead shard may hold true neighbors), so the whole request fails
  with this type instead — partial answers are never returned.
* :class:`~repro.serve.pool.WorkerError` — a batch failed in (or was
  abandoned by) a worker process; also derives from
  :class:`ServingError`.

All of them subclass :class:`RuntimeError` so existing callers that
catch broadly keep working; none of them is ever paired with a partial
or approximate answer — an error future carries *no* result, and a
result future is always bit-identical to sequential ``index.query``.
"""

from __future__ import annotations


class ServingError(RuntimeError):
    """Base class for every typed serving-layer failure."""


class DeadlineExceeded(ServingError):
    """The request's deadline passed before an answer was delivered."""


class ServerOverloaded(ServingError):
    """The bounded admission queue was full and this request was shed."""


class ServerClosedError(ServingError):
    """Work was submitted to a server (or layer) after ``close()``."""


class ShardError(ServingError):
    """A shard of a scatter-gather fan-out failed; no partial answer.

    Raised (set on the request future) by
    :class:`~repro.shard.ShardedIndexServer` when any shard of the
    fan-out cannot deliver its per-shard top-k.  The original shard
    failure is attached as ``__cause__``.
    """
