"""Text similarity substrate.

The paper's motivation comes from text: Latent Semantic Indexing showed
that truncating the SVD of a term-document matrix *improves* retrieval
because the kept directions are semantic concepts while the dropped ones
are synonymy/polysemy noise (Deerwester et al.; Papadimitriou et al.).
This package builds that setting end-to-end so the coherence model can
be exercised on its home turf:

* :mod:`repro.text.corpus` — a synthetic topic-model corpus generator
  with explicit synonymy (several terms per meaning) and polysemy
  (terms shared across topics);
* :mod:`repro.text.vectorize` — bag-of-words counting and TF-IDF
  weighting;
* :mod:`repro.text.lsi` — LSI retrieval on the truncated SVD, with the
  coherence diagnostics applied to the semantic directions.
"""

from repro.text.corpus import TextCorpus, synthetic_topic_corpus
from repro.text.vectorize import CountVectorizer, tfidf_weight
from repro.text.lsi import LatentSemanticIndex

__all__ = [
    "CountVectorizer",
    "LatentSemanticIndex",
    "TextCorpus",
    "synthetic_topic_corpus",
    "tfidf_weight",
]
