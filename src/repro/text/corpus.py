"""Synthetic topic-model corpus with synonymy and polysemy.

The generative model follows the style of Papadimitriou et al. (PODS
1998), the paper's reference [16] for *why* LSI works: each document is
(mostly) about one topic; each topic owns a set of terms; the noise the
paper talks about comes from

* **synonymy** — each topic meaning is expressed by several
  interchangeable terms, so two documents about the same thing may share
  few raw terms; and
* **polysemy** — some terms belong to several topics, so raw-term
  overlap can be spurious.

Dimensionality reduction "re-enforces the semantic concepts": documents
of one topic form a coherent direction in term space regardless of which
synonyms they happened to use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TextCorpus:
    """A labeled collection of tokenized documents.

    Attributes:
        documents: one token list per document.
        labels: dominant topic of each document.
        vocabulary: every term the generator can emit, sorted.
        metadata: generator parameters.
    """

    documents: tuple[tuple[str, ...], ...]
    labels: np.ndarray
    vocabulary: tuple[str, ...]
    metadata: dict = field(default_factory=dict)

    @property
    def n_documents(self) -> int:
        return len(self.documents)

    @property
    def n_topics(self) -> int:
        return int(np.unique(self.labels).size)


def synthetic_topic_corpus(
    n_documents: int = 300,
    n_topics: int = 5,
    terms_per_topic: int = 60,
    n_shared_terms: int = 40,
    document_length: int = 20,
    topic_purity: float = 0.5,
    polysemy_fraction: float = 0.3,
    seed: int = 0,
) -> TextCorpus:
    """Generate a topic-labeled corpus.

    Args:
        n_documents: corpus size.
        n_topics: number of topics (= retrieval classes).
        terms_per_topic: topical vocabulary size per topic; synonymy is
            implicit — all of a topic's terms are interchangeable ways of
            expressing it, and each document samples only a fraction.
        n_shared_terms: topic-free filler vocabulary ("the", "and", …).
        document_length: tokens per document.
        topic_purity: fraction of tokens drawn from the document's own
            topic; the rest are filler or other-topic noise.
        polysemy_fraction: fraction of each topic's terms that are also
            claimed by the next topic (shared meanings).
        seed: RNG seed.
    """
    if n_documents < 1 or n_topics < 1:
        raise ValueError("n_documents and n_topics must be positive")
    if terms_per_topic < 2 or n_shared_terms < 1:
        raise ValueError("need at least 2 terms per topic and 1 shared term")
    if document_length < 1:
        raise ValueError("document_length must be positive")
    if not 0.0 < topic_purity <= 1.0:
        raise ValueError(f"topic_purity must lie in (0, 1], got {topic_purity}")
    if not 0.0 <= polysemy_fraction < 1.0:
        raise ValueError(
            f"polysemy_fraction must lie in [0, 1), got {polysemy_fraction}"
        )

    rng = np.random.default_rng(seed)

    topic_terms: list[list[str]] = [
        [f"topic{t}_term{j}" for j in range(terms_per_topic)]
        for t in range(n_topics)
    ]
    # Polysemy: the tail of each topic's vocabulary is shared with the
    # next topic (cyclically), so those terms are ambiguous evidence.
    n_polysemous = int(terms_per_topic * polysemy_fraction)
    if n_polysemous and n_topics > 1:
        for t in range(n_topics):
            neighbor = (t + 1) % n_topics
            shared = topic_terms[t][-n_polysemous:]
            topic_terms[neighbor] = topic_terms[neighbor] + shared
    shared_terms = [f"filler_term{j}" for j in range(n_shared_terms)]

    vocabulary = sorted(
        {term for terms in topic_terms for term in terms} | set(shared_terms)
    )

    documents = []
    labels = rng.integers(0, n_topics, size=n_documents)
    for label in labels:
        own = topic_terms[int(label)]
        tokens = []
        for _ in range(document_length):
            roll = rng.uniform()
            if roll < topic_purity:
                tokens.append(own[int(rng.integers(0, len(own)))])
            elif roll < topic_purity + (1 - topic_purity) * 0.8:
                tokens.append(
                    shared_terms[int(rng.integers(0, len(shared_terms)))]
                )
            else:
                other = int(rng.integers(0, n_topics))
                terms = topic_terms[other]
                tokens.append(terms[int(rng.integers(0, len(terms)))])
        documents.append(tuple(tokens))

    return TextCorpus(
        documents=tuple(documents),
        labels=labels,
        vocabulary=tuple(vocabulary),
        metadata={
            "generator": "synthetic_topic_corpus",
            "n_topics": n_topics,
            "terms_per_topic": terms_per_topic,
            "topic_purity": topic_purity,
            "polysemy_fraction": polysemy_fraction,
            "seed": seed,
        },
    )
