"""Latent Semantic Indexing on the from-scratch SVD.

The pipeline Deerwester et al. made famous and the paper builds its
intuition on: TF-IDF weight the term-document matrix, truncate its SVD
to ``k`` semantic directions, and retrieve by cosine similarity in the
reduced space.  Synonymous documents that share *no* raw terms land
close together because their terms load on the same singular direction.

:meth:`LatentSemanticIndex.concept_coherence` applies the paper's
coherence model to the singular directions — on a topic-structured
corpus the leading (semantic) directions score far above the uniform
baseline, which is precisely the paper's explanation of why LSI-style
truncation improves retrieval.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.svd_reduction import SVDReducer
from repro.core.coherence import dataset_coherence
from repro.text.vectorize import CountVectorizer, tfidf_weight


class LatentSemanticIndex:
    """TF-IDF + truncated SVD + cosine retrieval.

    Args:
        n_concepts: how many singular directions to keep.

    Fitted attributes:
        vectorizer_: the learned vocabulary.
        reducer_: the fitted truncated SVD (uncentered, classical LSI).
        document_vectors_: corpus coordinates in concept space.
    """

    def __init__(self, n_concepts: int = 10) -> None:
        if n_concepts < 1:
            raise ValueError(f"n_concepts must be positive, got {n_concepts}")
        self.n_concepts = n_concepts
        self.vectorizer_: CountVectorizer | None = None
        self.reducer_: SVDReducer | None = None
        self.document_vectors_: np.ndarray | None = None
        self._idf: np.ndarray | None = None
        self._tfidf: np.ndarray | None = None

    def fit(self, documents) -> "LatentSemanticIndex":
        """Learn the vocabulary, weights, and concept space of a corpus."""
        documents = list(documents)
        self.vectorizer_ = CountVectorizer().fit(documents)
        counts = self.vectorizer_.transform(documents)
        self._tfidf, self._idf = tfidf_weight(counts)
        budget = min(self.n_concepts, min(self._tfidf.shape))
        self.reducer_ = SVDReducer(n_components=budget, center=False)
        self.document_vectors_ = self.reducer_.fit_transform(self._tfidf)
        return self

    def _require_fitted(self) -> None:
        if self.document_vectors_ is None:
            raise RuntimeError("index is not fitted; call fit() first")

    def embed(self, documents) -> np.ndarray:
        """Concept-space coordinates for new documents."""
        self._require_fitted()
        counts = self.vectorizer_.transform(list(documents))
        weighted, _ = tfidf_weight(counts, idf=self._idf)
        return self.reducer_.transform(weighted)

    def query(self, document, k: int = 3) -> list[tuple[int, float]]:
        """Top-``k`` corpus documents by cosine similarity in concept space.

        Returns:
            ``(corpus_index, cosine_similarity)`` pairs, best first.
            Documents with a zero concept vector (no known terms) match
            nothing and return an empty list.
        """
        self._require_fitted()
        if not 1 <= k <= self.document_vectors_.shape[0]:
            raise ValueError(
                f"k must lie in [1, {self.document_vectors_.shape[0]}], got {k}"
            )
        vector = self.embed([document])[0]
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            return []
        corpus_norms = np.linalg.norm(self.document_vectors_, axis=1)
        safe = np.where(corpus_norms > 0.0, corpus_norms, 1.0)
        similarities = (self.document_vectors_ @ vector) / (safe * norm)
        similarities[corpus_norms == 0.0] = -np.inf
        order = np.argsort(-similarities, kind="stable")[:k]
        return [(int(i), float(similarities[i])) for i in order]

    def concept_coherence(self) -> np.ndarray:
        """Dataset coherence probability of each kept singular direction.

        Computed over the *centered* TF-IDF matrix (the coherence model
        is defined about the data mean).  On topical corpora the leading
        directions clear the 0.6827 uniform baseline decisively.
        """
        self._require_fitted()
        centered = self._tfidf - self._tfidf.mean(axis=0)
        return dataset_coherence(centered, self.reducer_.svd_.right)
