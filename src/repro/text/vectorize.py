"""Bag-of-words vectorization and TF-IDF weighting."""

from __future__ import annotations

import numpy as np


class CountVectorizer:
    """Token lists → dense term-count matrix.

    The vocabulary is learned at :meth:`fit` time in sorted order, so
    column indices are stable and reproducible.  Unseen terms at
    transform time are ignored (standard bag-of-words behaviour).
    """

    def __init__(self) -> None:
        self.vocabulary_: dict[str, int] | None = None

    def fit(self, documents) -> "CountVectorizer":
        """Learn the (sorted) vocabulary of a token-list corpus."""
        terms: set[str] = set()
        for document in documents:
            terms.update(document)
        if not terms:
            raise ValueError("corpus contains no terms")
        self.vocabulary_ = {term: i for i, term in enumerate(sorted(terms))}
        return self

    @property
    def n_terms(self) -> int:
        if self.vocabulary_ is None:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        return len(self.vocabulary_)

    def transform(self, documents) -> np.ndarray:
        """Count matrix of shape ``(n_documents, n_terms)``."""
        if self.vocabulary_ is None:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        documents = list(documents)
        counts = np.zeros((len(documents), self.n_terms))
        for row, document in enumerate(documents):
            for token in document:
                column = self.vocabulary_.get(token)
                if column is not None:
                    counts[row, column] += 1.0
        return counts

    def fit_transform(self, documents) -> np.ndarray:
        """Equivalent to ``fit(documents).transform(documents)``."""
        documents = list(documents)
        return self.fit(documents).transform(documents)


def tfidf_weight(counts, idf: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """TF-IDF weighting with L2 document normalization.

    ``tf = count``, ``idf = log((1 + n) / (1 + df)) + 1`` (smooth), rows
    normalized to unit length (documents of different lengths become
    comparable, as cosine retrieval assumes).

    Args:
        counts: ``(n, V)`` term-count matrix.
        idf: optional precomputed IDF vector (to weight queries with the
            *training* corpus statistics).

    Returns:
        ``(weighted, idf)`` — pass the returned ``idf`` back in when
        weighting queries.
    """
    matrix = np.asarray(counts, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"counts must be 2-d, got shape {matrix.shape}")
    if np.any(matrix < 0):
        raise ValueError("counts must be non-negative")

    if idf is None:
        n = matrix.shape[0]
        document_frequency = np.sum(matrix > 0, axis=0)
        idf = np.log((1.0 + n) / (1.0 + document_frequency)) + 1.0
    else:
        idf = np.asarray(idf, dtype=np.float64)
        if idf.shape != (matrix.shape[1],):
            raise ValueError(
                f"idf must have shape ({matrix.shape[1]},), got {idf.shape}"
            )

    weighted = matrix * idf
    norms = np.sqrt(np.sum(np.square(weighted), axis=1))
    norms[norms == 0.0] = 1.0  # empty documents stay zero vectors
    return weighted / norms[:, None], idf
