"""SVD / LSI-style truncation baseline.

Latent Semantic Indexing keeps the top-``k`` singular directions of the
(optionally centered) data matrix.  On centered data this coincides with
eigenvalue-ordered PCA — the classical rule the paper critiques — but it
is computed through the from-scratch SVD machinery and supports skipping
the centering (as classical LSI does on term-document matrices), so the
text experiments can run it in its native form.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.svd import (
    SingularValueDecomposition,
    svd_via_eigen,
    truncated_svd_power,
)


class SVDReducer:
    """Truncated-SVD reduction behind the common fit/transform interface.

    Args:
        n_components: how many singular directions to keep.
        center: subtract column means first (True reproduces PCA; False
            is classical LSI on raw term weights).
        method: ``"exact"`` (thin SVD via the symmetric eigensolver) or
            ``"power"`` (block power iteration — only the top ``k`` are
            computed).
        seed: seed for the power method's starting block.

    Fitted attributes:
        svd_: the underlying :class:`SingularValueDecomposition`
            (truncated to ``n_components``).
        mean_: training column means (zeros when ``center=False``).
    """

    def __init__(
        self,
        n_components: int,
        center: bool = True,
        method: str = "exact",
        seed: int = 0,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be positive, got {n_components}")
        if method not in ("exact", "power"):
            raise ValueError(f"method must be 'exact' or 'power', got {method!r}")
        self.n_components = n_components
        self.center = center
        self.method = method
        self.seed = seed
        self.svd_: SingularValueDecomposition | None = None
        self.mean_: np.ndarray | None = None

    def fit(self, features) -> "SVDReducer":
        """Compute the (truncated) SVD of the training matrix."""
        array = np.asarray(features, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(f"features must be 2-d, got shape {array.shape}")
        if self.n_components > min(array.shape):
            raise ValueError(
                f"n_components={self.n_components} exceeds "
                f"min(n, d)={min(array.shape)}"
            )
        self.mean_ = (
            array.mean(axis=0) if self.center else np.zeros(array.shape[1])
        )
        working = array - self.mean_
        self._total_energy = float(np.sum(np.square(working)))
        if self.method == "power":
            self.svd_ = truncated_svd_power(
                working, k=self.n_components, seed=self.seed
            )
        else:
            full = svd_via_eigen(working)
            k = min(self.n_components, full.rank)
            self.svd_ = SingularValueDecomposition(
                left=full.left[:, :k],
                singular_values=full.singular_values[:k],
                right=full.right[:, :k],
            )
        return self

    def transform(self, features) -> np.ndarray:
        """Coordinates of rows in the kept right-singular basis."""
        if self.svd_ is None:
            raise RuntimeError("reducer is not fitted; call fit() first")
        array = np.asarray(features, dtype=np.float64)
        single = array.ndim == 1
        if single:
            array = array.reshape(1, -1)
        projected = self.svd_.project_rows(array - self.mean_)
        return projected[0] if single else projected

    def fit_transform(self, features) -> np.ndarray:
        """Equivalent to ``fit(features).transform(features)``."""
        return self.fit(features).transform(features)

    def explained_energy(self) -> float:
        """Fraction of squared Frobenius mass the kept directions carry."""
        if self.svd_ is None:
            raise RuntimeError("reducer is not fitted; call fit() first")
        kept = float(np.sum(np.square(self.svd_.singular_values)))
        if self._total_energy == 0.0:
            return 0.0
        return min(1.0, kept / self._total_energy)
