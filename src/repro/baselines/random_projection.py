"""Random projection (Johnson–Lindenstrauss) baseline.

Projects onto a random ``k``-dimensional subspace, obliviously to the
data.  JL guarantees pairwise distances are approximately preserved when
``k = O(log n / eps^2)`` — but preserving distances is precisely the
objective the paper argues is insufficient: a projection that faithfully
preserves *noisy* distances also faithfully preserves the noise.  The
baseline therefore tracks full-dimensional quality rather than improving
on it, which is exactly its role in the comparison benches.
"""

from __future__ import annotations

import numpy as np

_KINDS = ("gaussian", "sparse")


class RandomProjectionReducer:
    """Data-oblivious linear reduction onto a random subspace.

    Args:
        n_components: target dimensionality ``k``.
        kind: ``"gaussian"`` (entries ``N(0, 1/k)``) or ``"sparse"``
            (Achlioptas ±sqrt(3/k)/0 with probabilities 1/6, 1/6, 2/3).
        seed: RNG seed; the projection is fixed at construction.

    Fitted attributes:
        components_: the ``(d, k)`` projection matrix.
        mean_: training column means (queries are centered consistently).
    """

    def __init__(self, n_components: int, kind: str = "gaussian", seed: int = 0) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be positive, got {n_components}")
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        self.n_components = n_components
        self.kind = kind
        self.seed = seed
        self.components_: np.ndarray | None = None
        self.mean_: np.ndarray | None = None

    def fit(self, features) -> "RandomProjectionReducer":
        """Draw the projection for the data's dimensionality."""
        array = np.asarray(features, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(f"features must be 2-d, got shape {array.shape}")
        d = array.shape[1]
        if self.n_components > d:
            raise ValueError(
                f"n_components={self.n_components} exceeds data "
                f"dimensionality {d}"
            )
        rng = np.random.default_rng(self.seed)
        k = self.n_components
        if self.kind == "gaussian":
            matrix = rng.normal(0.0, 1.0 / np.sqrt(k), size=(d, k))
        else:
            choices = rng.choice(
                [-1.0, 0.0, 1.0], size=(d, k), p=[1 / 6, 2 / 3, 1 / 6]
            )
            matrix = choices * np.sqrt(3.0 / k)
        self.components_ = matrix
        self.mean_ = array.mean(axis=0)
        return self

    def transform(self, features) -> np.ndarray:
        """Project (centered) rows onto the random subspace."""
        if self.components_ is None:
            raise RuntimeError("reducer is not fitted; call fit() first")
        array = np.asarray(features, dtype=np.float64)
        single = array.ndim == 1
        if single:
            array = array.reshape(1, -1)
        if array.shape[1] != self.components_.shape[0]:
            raise ValueError(
                f"expected {self.components_.shape[0]} columns, "
                f"got {array.shape[1]}"
            )
        projected = (array - self.mean_) @ self.components_
        return projected[0] if single else projected

    def fit_transform(self, features) -> np.ndarray:
        """Equivalent to ``fit(features).transform(features)``."""
        return self.fit(features).transform(features)
