"""Baseline dimensionality reducers.

The comparators a paper reader would reach for: classical eigenvalue-
ordered PCA is already covered by
``CoherenceReducer(ordering="eigenvalue")``; this package adds the two
other standard families — data-oblivious random projection
(Johnson–Lindenstrauss) and SVD/LSI-style truncation — behind the same
fit/transform interface, so every quality experiment can sweep all of
them (see ``benchmarks/bench_ablation_baselines.py``).
"""

from repro.baselines.random_projection import RandomProjectionReducer
from repro.baselines.svd_reduction import SVDReducer

__all__ = [
    "RandomProjectionReducer",
    "SVDReducer",
]
