"""Principal component analysis as a reusable fit result.

:func:`fit_pca` bundles the whole Section-2 pipeline of the paper:
optionally studentize (Section 2.2), form the second-moment matrix,
diagonalize it, and keep the sorted eigenpairs together with the exact
preprocessing needed to map *new* points into the eigenbasis.  The
coherence machinery in :mod:`repro.core` consumes the result; so does the
plain eigenvalue-ordered reduction baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.covariance import studentize
from repro.linalg.eigen import EigenDecomposition, decompose


@dataclass(frozen=True)
class PrincipalComponents:
    """A fitted PCA model.

    Attributes:
        decomposition: sorted eigenpairs of the second-moment matrix.
        means: per-column means of the training data (original columns).
        scales: per-retained-column standard deviations when fitted with
            ``scale=True``; ``None`` for covariance-matrix PCA.
        kept_columns: original column indices that survived preprocessing
            (studentization drops constant columns; covariance PCA keeps
            everything).
        scaled: whether the model was fitted on studentized data.
    """

    decomposition: EigenDecomposition
    means: np.ndarray
    scales: np.ndarray | None
    kept_columns: np.ndarray
    scaled: bool

    @property
    def input_dimensionality(self) -> int:
        """Number of columns the model expects from callers."""
        return self.means.size

    @property
    def working_dimensionality(self) -> int:
        """Number of columns after preprocessing (= eigenbasis size)."""
        return self.decomposition.dimensionality

    def preprocess(self, data) -> np.ndarray:
        """Center (and scale, if fitted scaled) rows of ``data``."""
        array = np.asarray(data, dtype=np.float64)
        single = array.ndim == 1
        if single:
            array = array.reshape(1, -1)
        if array.shape[1] != self.input_dimensionality:
            raise ValueError(
                f"expected {self.input_dimensionality} columns, "
                f"got {array.shape[1]}"
            )
        centered = (array - self.means)[:, self.kept_columns]
        if self.scaled:
            centered = centered / self.scales
        return centered[0] if single else centered

    def transform(self, data, component_indices=None) -> np.ndarray:
        """Project rows of ``data`` onto selected eigenvectors.

        Args:
            data: rows in the *original* column space.
            component_indices: indices into the descending-eigenvalue
                ordering; all components when omitted.
        """
        prepared = self.preprocess(data)
        vectors = self.decomposition.eigenvectors
        if component_indices is not None:
            vectors = self.decomposition.basis(component_indices)
        return prepared @ vectors


def fit_pca(data, scale: bool = False, eigen_method: str = "numpy") -> PrincipalComponents:
    """Fit PCA on a data matrix.

    Args:
        data: ``(n, d)`` matrix, rows are points.
        scale: studentize first (unit variance per dimension), i.e.
            diagonalize the correlation matrix instead of the covariance
            matrix.  This is the paper's recommended normalization.
        eigen_method: ``"numpy"`` (LAPACK) or ``"jacobi"`` (from scratch).

    Returns:
        A :class:`PrincipalComponents` fit result.
    """
    array = np.asarray(data, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-d data matrix, got shape {array.shape}")
    if array.shape[0] < 2:
        raise ValueError("PCA needs at least two data points")
    if not np.all(np.isfinite(array)):
        raise ValueError("data matrix must be finite (no NaN or inf entries)")

    means = np.mean(array, axis=0)
    if scale:
        studentized = studentize(array)
        working = studentized.features
        scales = studentized.scales
        kept = studentized.kept_columns
    else:
        working = array - means
        scales = None
        kept = np.arange(array.shape[1])

    # `working` is already centered, so form the second-moment matrix
    # directly instead of re-centering through covariance_matrix().
    n = working.shape[0]
    moment = working.T @ working / n
    moment = (moment + moment.T) / 2.0

    return PrincipalComponents(
        decomposition=decompose(moment, method=eigen_method),
        means=means,
        scales=scales,
        kept_columns=kept,
        scaled=scale,
    )
