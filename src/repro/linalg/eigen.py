"""Symmetric eigendecomposition.

Principal component analysis diagonalizes the covariance matrix
``C = P Lambda P^T`` (Section 2 of the paper).  This module provides two
interchangeable solvers:

* :func:`eigh_numpy` — LAPACK via ``numpy.linalg.eigh``; the production
  default.
* :func:`eigh_jacobi` — a from-scratch cyclic Jacobi rotation solver.
  Jacobi is slower but self-contained, unconditionally stable for
  symmetric matrices, and serves as an independent cross-check on the
  LAPACK results (see ``benchmarks/bench_ablation_eigensolver.py``).

Both return an :class:`EigenDecomposition` with eigenvalues sorted in
*descending* order — the library-wide convention: "component 0" is always
the largest-eigenvalue direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EigenDecomposition:
    """Sorted eigenpairs of a symmetric matrix.

    Attributes:
        eigenvalues: shape ``(d,)``, sorted descending.
        eigenvectors: shape ``(d, d)``; column ``i`` is the unit
            eigenvector paired with ``eigenvalues[i]``.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.eigenvalues, dtype=np.float64)
        vectors = np.asarray(self.eigenvectors, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("eigenvalues must be 1-d")
        if vectors.shape != (values.size, values.size):
            raise ValueError(
                f"eigenvectors must be square with side {values.size}, "
                f"got shape {vectors.shape}"
            )
        if np.any(np.diff(values) > 0.0):
            raise ValueError("eigenvalues must be sorted in descending order")
        object.__setattr__(self, "eigenvalues", values)
        object.__setattr__(self, "eigenvectors", vectors)

    @property
    def dimensionality(self) -> int:
        return self.eigenvalues.size

    @property
    def total_variance(self) -> float:
        """Sum of eigenvalues = trace of the decomposed matrix.

        For a covariance matrix this is the mean squared deviation of the
        data from its centroid (rotation-invariant, as the paper notes).
        """
        return float(np.sum(self.eigenvalues))

    def energy_fraction(self, component_indices) -> float:
        """Fraction of total variance carried by the given components."""
        indices = np.asarray(component_indices, dtype=np.intp)
        total = self.total_variance
        if total == 0.0:
            return 0.0
        return float(np.sum(self.eigenvalues[indices]) / total)

    def basis(self, component_indices) -> np.ndarray:
        """Rectangular ``(d, k)`` basis holding the selected eigenvectors."""
        indices = np.asarray(component_indices, dtype=np.intp)
        if indices.ndim != 1 or indices.size == 0:
            raise ValueError("component_indices must be a non-empty 1-d list")
        if np.any(indices < 0) or np.any(indices >= self.dimensionality):
            raise ValueError(
                f"component indices must lie in [0, {self.dimensionality})"
            )
        return self.eigenvectors[:, indices]


def _validate_symmetric(matrix, tolerance: float = 1e-8) -> np.ndarray:
    array = np.asarray(matrix, dtype=np.float64)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ValueError("matrix must be finite")
    scale = max(1.0, float(np.max(np.abs(array))))
    if np.max(np.abs(array - array.T)) > tolerance * scale:
        raise ValueError("matrix is not symmetric within tolerance")
    return (array + array.T) / 2.0


def _sorted_descending(values: np.ndarray, vectors: np.ndarray) -> EigenDecomposition:
    order = np.argsort(values)[::-1]
    return EigenDecomposition(
        eigenvalues=values[order],
        eigenvectors=vectors[:, order],
    )


def eigh_numpy(matrix) -> EigenDecomposition:
    """Eigendecomposition via LAPACK (``numpy.linalg.eigh``)."""
    symmetric = _validate_symmetric(matrix)
    values, vectors = np.linalg.eigh(symmetric)
    return _sorted_descending(values, vectors)


def eigh_jacobi(
    matrix,
    tolerance: float = 1e-12,
    max_sweeps: int = 100,
) -> EigenDecomposition:
    """Eigendecomposition via cyclic Jacobi rotations (from scratch).

    Repeatedly annihilates the largest remaining off-diagonal entries with
    Givens rotations until the off-diagonal Frobenius mass falls below
    ``tolerance`` times the matrix scale.  Quadratically convergent; a few
    sweeps suffice in practice.

    Args:
        matrix: symmetric ``(d, d)`` matrix.
        tolerance: relative off-diagonal mass at which to stop.
        max_sweeps: hard cap on full cyclic sweeps.

    Raises:
        RuntimeError: if the sweep cap is reached before convergence.
    """
    a = _validate_symmetric(matrix).copy()
    d = a.shape[0]
    vectors = np.eye(d)
    if d == 1:
        return EigenDecomposition(
            eigenvalues=a.diagonal().copy(), eigenvectors=vectors
        )

    scale = max(1.0, float(np.max(np.abs(a))))
    threshold = tolerance * scale

    off_diagonal_mask = ~np.eye(d, dtype=bool)
    for _ in range(max_sweeps):
        off_diagonal = np.sqrt(np.sum(np.square(a[off_diagonal_mask])))
        if off_diagonal <= threshold:
            break
        for p in range(d - 1):
            for q in range(p + 1, d):
                apq = a[p, q]
                if abs(apq) <= threshold / (d * d):
                    continue
                app, aqq = a[p, p], a[q, q]
                # Stable rotation angle (Golub & Van Loan 8.4).
                theta = (aqq - app) / (2.0 * apq)
                t = np.sign(theta) / (abs(theta) + np.sqrt(theta * theta + 1.0))
                if theta == 0.0:
                    t = 1.0
                c = 1.0 / np.sqrt(t * t + 1.0)
                s = t * c

                # Apply the rotation J(p, q, theta) on both sides of `a`
                # and accumulate it into `vectors`.
                row_p, row_q = a[p, :].copy(), a[q, :].copy()
                a[p, :] = c * row_p - s * row_q
                a[q, :] = s * row_p + c * row_q
                col_p, col_q = a[:, p].copy(), a[:, q].copy()
                a[:, p] = c * col_p - s * col_q
                a[:, q] = s * col_p + c * col_q
                a[p, q] = 0.0
                a[q, p] = 0.0

                vec_p, vec_q = vectors[:, p].copy(), vectors[:, q].copy()
                vectors[:, p] = c * vec_p - s * vec_q
                vectors[:, q] = s * vec_p + c * vec_q
    else:
        raise RuntimeError(
            f"Jacobi solver did not converge in {max_sweeps} sweeps"
        )

    return _sorted_descending(a.diagonal().copy(), vectors)


_SOLVERS = {
    "numpy": eigh_numpy,
    "jacobi": eigh_jacobi,
}


def decompose(matrix, method: str = "numpy") -> EigenDecomposition:
    """Dispatch to the requested eigensolver (``"numpy"`` or ``"jacobi"``)."""
    try:
        solver = _SOLVERS[method]
    except KeyError:
        raise ValueError(
            f"unknown eigensolver {method!r}; choose from {sorted(_SOLVERS)}"
        ) from None
    return solver(matrix)
