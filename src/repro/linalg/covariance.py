"""Centering, studentizing, and second-moment matrices.

The paper's Section 2.2 argues that principal component analysis is very
sensitive to the relative scaling of the input dimensions, and that a
sensible normalization gives every dimension unit variance — which makes
PCA on the covariance matrix of the scaled data identical to PCA on the
*correlation* matrix of the raw data.  Dimensions with zero variance
carry no information and are discarded during studentization, exactly as
the paper prescribes ("if the initial variance is zero along any
dimension, then that dimension may be discarded").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _validate_matrix(data, min_rows: int = 1) -> np.ndarray:
    array = np.asarray(data, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-d data matrix, got shape {array.shape}")
    if array.shape[0] < min_rows:
        raise ValueError(
            f"need at least {min_rows} rows, got {array.shape[0]}"
        )
    if array.shape[1] == 0:
        raise ValueError("data matrix must have at least one column")
    if not np.all(np.isfinite(array)):
        raise ValueError("data matrix must be finite (no NaN or inf entries)")
    return array


def center_columns(data) -> tuple[np.ndarray, np.ndarray]:
    """Subtract the per-column mean.

    Returns:
        ``(centered, means)`` where ``centered = data - means``.
    """
    array = _validate_matrix(data)
    means = np.mean(array, axis=0)
    return array - means, means


@dataclass(frozen=True)
class StudentizeResult:
    """Outcome of studentizing a data matrix.

    Attributes:
        features: centered data with unit variance per retained column.
        means: per-column means of the *original* matrix (all columns).
        scales: per-column standard deviations of the retained columns.
        kept_columns: indices (into the original matrix) of the columns
            that survived; zero-variance columns are dropped.
    """

    features: np.ndarray
    means: np.ndarray
    scales: np.ndarray
    kept_columns: np.ndarray

    def apply(self, data) -> np.ndarray:
        """Apply the same centering/scaling to new rows."""
        array = np.asarray(data, dtype=np.float64)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.shape[1] != self.means.size:
            raise ValueError(
                f"expected {self.means.size} columns, got {array.shape[1]}"
            )
        centered = array - self.means
        return centered[:, self.kept_columns] / self.scales


def studentize(data, ddof: int = 0) -> StudentizeResult:
    """Center every column and scale it to unit variance.

    Zero-variance columns are dropped (they cannot be scaled and carry no
    information).  Raises if *every* column is constant.
    """
    array = _validate_matrix(data, min_rows=2)
    means = np.mean(array, axis=0)
    stds = np.std(array, axis=0, ddof=ddof)
    kept = np.flatnonzero(stds > 0.0)
    if kept.size == 0:
        raise ValueError("all columns are constant; nothing to studentize")
    features = (array[:, kept] - means[kept]) / stds[kept]
    return StudentizeResult(
        features=features,
        means=means,
        scales=stds[kept],
        kept_columns=kept,
    )


def covariance_matrix(data, ddof: int = 0) -> np.ndarray:
    """The ``d x d`` covariance matrix of a data matrix (rows = points).

    ``ddof=0`` (population) matches the paper's identity that the trace of
    the covariance matrix equals the mean squared Euclidean deviation of
    the data from its centroid.
    """
    array = _validate_matrix(data, min_rows=2)
    n = array.shape[0]
    if n <= ddof:
        raise ValueError(f"need more than ddof={ddof} rows, got {n}")
    centered = array - np.mean(array, axis=0)
    matrix = centered.T @ centered / (n - ddof)
    # Symmetrize to remove floating-point asymmetry before eigensolving.
    return (matrix + matrix.T) / 2.0


def correlation_matrix(data) -> np.ndarray:
    """Correlation matrix over the non-constant columns of ``data``.

    Equivalent to the covariance matrix of the studentized data; constant
    columns are excluded (their correlation is undefined), consistent
    with :func:`studentize`.
    """
    result = studentize(data)
    return covariance_matrix(result.features)
