"""Subspace projection, reconstruction, and energy accounting.

After PCA picks a ``k``-dimensional orthonormal basis, projecting the
data onto it yields the reduced representation; projecting back gives the
best rank-``k`` approximation of the (centered) data.  The variance lost
equals the sum of the discarded eigenvalues (Section 2 of the paper) —
:func:`retained_energy_fraction` and :func:`reconstruction_error` make
that identity checkable, and the tests check it.
"""

from __future__ import annotations

import numpy as np


def _validate_basis(basis) -> np.ndarray:
    array = np.asarray(basis, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"basis must be 2-d (d, k), got shape {array.shape}")
    if array.shape[1] > array.shape[0]:
        raise ValueError(
            f"basis has more columns ({array.shape[1]}) than the ambient "
            f"dimensionality ({array.shape[0]})"
        )
    if not np.all(np.isfinite(array)):
        raise ValueError("basis must be finite")
    return array


def project(data, basis) -> np.ndarray:
    """Coordinates of ``data`` rows in the (orthonormal) ``basis`` columns.

    For a point ``X`` and eigenvectors ``e_1 … e_k`` this is exactly the
    paper's ``(X . e_1, …, X . e_k)``.  ``data`` may be a single vector or
    a matrix of row vectors.
    """
    basis = _validate_basis(basis)
    array = np.asarray(data, dtype=np.float64)
    single = array.ndim == 1
    if single:
        array = array.reshape(1, -1)
    if array.shape[1] != basis.shape[0]:
        raise ValueError(
            f"data has {array.shape[1]} columns but basis expects "
            f"{basis.shape[0]}"
        )
    coordinates = array @ basis
    return coordinates[0] if single else coordinates


def reconstruct(coordinates, basis) -> np.ndarray:
    """Map reduced coordinates back to the ambient space."""
    basis = _validate_basis(basis)
    array = np.asarray(coordinates, dtype=np.float64)
    single = array.ndim == 1
    if single:
        array = array.reshape(1, -1)
    if array.shape[1] != basis.shape[1]:
        raise ValueError(
            f"coordinates have {array.shape[1]} columns but basis has "
            f"{basis.shape[1]}"
        )
    ambient = array @ basis.T
    return ambient[0] if single else ambient


def reconstruction_error(data, basis) -> float:
    """Mean squared reconstruction error of ``data`` under ``basis``.

    For centered data and an orthonormal eigenbasis this equals the sum
    of the discarded eigenvalues.
    """
    array = np.asarray(data, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    approximation = reconstruct(project(array, basis), basis)
    residual = array - approximation
    return float(np.mean(np.sum(np.square(residual), axis=1)))


def retained_energy_fraction(data, basis) -> float:
    """Fraction of the data's total variance kept by the projection.

    Computed directly from the data (not from eigenvalues) so it works
    for any orthonormal basis, not only eigenbases.  ``data`` should be
    centered; a constant dataset has zero energy and returns 0.
    """
    array = np.asarray(data, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    total = float(np.mean(np.sum(np.square(array), axis=1)))
    if total == 0.0:
        return 0.0
    projected = project(array, basis)
    kept = float(np.mean(np.sum(np.square(projected), axis=1)))
    return kept / total
