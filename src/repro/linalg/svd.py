"""Singular value decomposition, from scratch.

PCA via the covariance matrix squares the condition number; the SVD of
the centered data matrix gives the same subspaces directly and is what
Latent Semantic Indexing (the paper's motivating text application)
actually computes.  This module provides:

* :func:`svd_via_eigen` — exact thin SVD built on the symmetric
  eigensolvers of :mod:`repro.linalg.eigen`: diagonalize the smaller of
  the two Gram matrices and recover the other side's singular vectors.
* :func:`truncated_svd_power` — rank-``k`` truncated SVD by block power
  iteration (subspace iteration with QR re-orthonormalization), the
  standard workhorse when only the leading concepts are needed.

The identities tying the two worlds together (pinned by tests):
``singular_value_i^2 / n = covariance eigenvalue i`` for centered data,
and the right singular vectors are the PCA eigenvectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.eigen import decompose


@dataclass(frozen=True)
class SingularValueDecomposition:
    """A (possibly truncated) thin SVD ``A ≈ U diag(s) V^T``.

    Attributes:
        left: ``(n, k)`` orthonormal columns (left singular vectors).
        singular_values: ``(k,)`` non-negative, descending.
        right: ``(d, k)`` orthonormal columns (right singular vectors).
    """

    left: np.ndarray
    singular_values: np.ndarray
    right: np.ndarray

    @property
    def rank(self) -> int:
        return self.singular_values.size

    def reconstruct(self) -> np.ndarray:
        """``U diag(s) V^T`` — the (rank-``k``) approximation of ``A``."""
        return (self.left * self.singular_values) @ self.right.T

    def project_rows(self, data) -> np.ndarray:
        """Coordinates of rows of ``data`` in the right-singular basis."""
        array = np.asarray(data, dtype=np.float64)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.shape[1] != self.right.shape[0]:
            raise ValueError(
                f"expected {self.right.shape[0]} columns, got {array.shape[1]}"
            )
        return array @ self.right


def _validate(data) -> np.ndarray:
    array = np.asarray(data, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-d matrix, got shape {array.shape}")
    if array.shape[0] == 0 or array.shape[1] == 0:
        raise ValueError("matrix must be non-empty")
    if not np.all(np.isfinite(array)):
        raise ValueError("matrix must be finite")
    return array


def svd_via_eigen(data, eigen_method: str = "numpy", rank_tolerance: float = 1e-7) -> SingularValueDecomposition:
    """Exact thin SVD through the smaller Gram matrix.

    For ``A`` of shape ``(n, d)``: diagonalize ``A^T A`` (if ``d <= n``)
    or ``A A^T`` (otherwise), take square roots of the eigenvalues as
    singular values, and recover the other factor as ``A v / s``.
    Directions whose singular value falls below ``rank_tolerance`` times
    the largest are dropped: squaring through the Gram matrix floors true
    zeros at ``sqrt(machine epsilon) ~ 1e-8`` relative, so anything below
    the default 1e-7 is numerically null space.  (Singular values that
    are *genuinely* below 1e-7 of the largest cannot be resolved by the
    Gram-matrix route at all — use a dedicated bidiagonalization SVD if
    that regime matters.)

    Args:
        data: ``(n, d)`` matrix.
        eigen_method: ``"numpy"`` or ``"jacobi"`` (forwarded to the
            symmetric eigensolver).
        rank_tolerance: relative cutoff below which singular values are
            treated as zero.
    """
    a = _validate(data)
    n, d = a.shape
    if d <= n:
        gram = a.T @ a
        eig = decompose((gram + gram.T) / 2.0, method=eigen_method)
        values = np.sqrt(np.maximum(eig.eigenvalues, 0.0))
        keep = values > rank_tolerance * max(values[0], 1e-300)
        right = eig.eigenvectors[:, keep]
        values = values[keep]
        left = a @ right / values
    else:
        gram = a @ a.T
        eig = decompose((gram + gram.T) / 2.0, method=eigen_method)
        values = np.sqrt(np.maximum(eig.eigenvalues, 0.0))
        keep = values > rank_tolerance * max(values[0], 1e-300)
        left = eig.eigenvectors[:, keep]
        values = values[keep]
        right = a.T @ left / values

    # Re-orthonormalize the derived side against floating-point drift.
    return SingularValueDecomposition(
        left=left, singular_values=values, right=right
    )


def truncated_svd_power(
    data,
    k: int,
    n_iterations: int = 100,
    seed: int = 0,
    tolerance: float = 1e-12,
) -> SingularValueDecomposition:
    """Rank-``k`` truncated SVD by block power (subspace) iteration.

    Repeatedly applies ``A^T A`` to a random ``(d, k)`` block and
    re-orthonormalizes with QR; converges geometrically at the ratio of
    the (k+1)-th to the k-th singular value.

    Args:
        data: ``(n, d)`` matrix.
        k: target rank, ``1 <= k <= min(n, d)``.
        n_iterations: iteration cap.
        seed: seed for the random starting block.
        tolerance: stop when the subspace rotation per step falls below
            this (measured as ``1 - min singular value of Q_old^T Q_new``).
    """
    a = _validate(data)
    n, d = a.shape
    if not 1 <= k <= min(n, d):
        raise ValueError(f"k must lie in [1, {min(n, d)}], got {k}")
    if n_iterations < 1:
        raise ValueError("n_iterations must be positive")

    rng = np.random.default_rng(seed)
    block = rng.normal(size=(d, k))
    q, _ = np.linalg.qr(block)

    for _ in range(n_iterations):
        previous = q
        q, _ = np.linalg.qr(a.T @ (a @ q))
        alignment = np.linalg.svd(previous.T @ q, compute_uv=False)
        if 1.0 - float(alignment.min()) < tolerance:
            break

    # Rayleigh-Ritz: project and take the small SVD for exact ordering.
    projected = a @ q  # (n, k)
    small_left, values, small_right_t = np.linalg.svd(
        projected, full_matrices=False
    )
    return SingularValueDecomposition(
        left=small_left,
        singular_values=values,
        right=q @ small_right_t.T,
    )
