"""Linear-algebra substrate.

Covariance/correlation matrices, a from-scratch symmetric eigensolver
(cyclic Jacobi) alongside a numpy backend, and subspace projection with
energy accounting — everything principal component analysis needs.
"""

from repro.linalg.covariance import (
    StudentizeResult,
    center_columns,
    correlation_matrix,
    covariance_matrix,
    studentize,
)
from repro.linalg.eigen import (
    EigenDecomposition,
    decompose,
    eigh_jacobi,
    eigh_numpy,
)
from repro.linalg.pca import PrincipalComponents, fit_pca
from repro.linalg.projection import (
    project,
    reconstruct,
    reconstruction_error,
    retained_energy_fraction,
)

__all__ = [
    "EigenDecomposition",
    "PrincipalComponents",
    "StudentizeResult",
    "center_columns",
    "correlation_matrix",
    "covariance_matrix",
    "decompose",
    "eigh_jacobi",
    "eigh_numpy",
    "fit_pca",
    "project",
    "reconstruct",
    "reconstruction_error",
    "retained_energy_fraction",
    "studentize",
]
