"""Lloyd's k-means with k-means++ seeding.

A plain, exactly-specified k-means used as a substrate by the iDistance
index (reference points) and available for the projected-clustering
experiments.  Deterministic given the seed; empty clusters are reseeded
at the point farthest from its assigned center.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distances.metrics import squared_euclidean_matrix


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes:
        labels: ``(n,)`` cluster assignment per point.
        centers: ``(k, d)`` cluster centroids.
        inertia: sum of squared distances to the assigned centers.
        n_iterations: Lloyd iterations until convergence (or the cap).
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iterations: int

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[0]


def _plus_plus_seeds(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread the initial centers out."""
    n = data.shape[0]
    centers = [data[int(rng.integers(0, n))]]
    for _ in range(1, k):
        squared = squared_euclidean_matrix(data, np.asarray(centers))
        closest = squared.min(axis=1)
        total = closest.sum()
        if total == 0.0:
            # All remaining points coincide with a center; any point works.
            centers.append(data[int(rng.integers(0, n))])
            continue
        probabilities = closest / total
        centers.append(data[int(rng.choice(n, p=probabilities))])
    return np.asarray(centers)


def kmeans(
    data,
    n_clusters: int,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    seed: int = 0,
) -> KMeansResult:
    """Cluster rows of ``data`` into ``n_clusters`` groups.

    Args:
        data: ``(n, d)`` matrix.
        n_clusters: ``k``; must not exceed the number of points.
        max_iterations: Lloyd iteration cap.
        tolerance: stop when the centers move less than this (squared,
            summed) between iterations.
        seed: RNG seed for the k-means++ initialization.
    """
    array = np.asarray(data, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"data must be 2-d, got shape {array.shape}")
    n = array.shape[0]
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must lie in [1, {n}], got {n_clusters}")
    if max_iterations < 1:
        raise ValueError("max_iterations must be positive")
    if not np.all(np.isfinite(array)):
        raise ValueError("data must be finite")

    rng = np.random.default_rng(seed)
    centers = _plus_plus_seeds(array, n_clusters, rng)
    labels = np.zeros(n, dtype=np.intp)

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        squared = squared_euclidean_matrix(array, centers)
        labels = np.argmin(squared, axis=1).astype(np.intp)

        new_centers = centers.copy()
        for c in range(n_clusters):
            members = array[labels == c]
            if members.shape[0] > 0:
                new_centers[c] = members.mean(axis=0)
            else:
                # Reseed an empty cluster at the worst-served point.
                worst = int(np.argmax(squared[np.arange(n), labels]))
                new_centers[c] = array[worst]
                labels[worst] = c

        movement = float(np.sum(np.square(new_centers - centers)))
        centers = new_centers
        if movement <= tolerance:
            break

    squared = squared_euclidean_matrix(array, centers)
    labels = np.argmin(squared, axis=1).astype(np.intp)
    inertia = float(squared[np.arange(n), labels].sum())
    return KMeansResult(
        labels=labels,
        centers=centers,
        inertia=inertia,
        n_iterations=iterations,
    )
