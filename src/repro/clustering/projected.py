"""PROCLUS-style projected clustering.

Each cluster lives in its own axis-parallel subspace: a medoid plus the
``n_dims`` dimensions along which the cluster is tightest.  Assignment
and subspace selection alternate until the assignment stabilizes —
k-medoids generalized to per-cluster subspace distances.

This is deliberately the *simple* member of the projected-clustering
family: enough to demonstrate the paper's Section 3.1 escape hatch
(decompose high-implicit-dimensionality data, then reduce per cluster),
not a re-implementation of the full PROCLUS/ORCLUS machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reducer import CoherenceReducer


@dataclass(frozen=True)
class ProjectedClusteringResult:
    """Outcome of a projected clustering run.

    Attributes:
        labels: ``(n,)`` cluster assignment per point.
        medoid_indices: corpus row index of each cluster's medoid.
        cluster_dims: per cluster, the retained dimension indices (the
            cluster's subspace).
        n_iterations: assignment/update rounds until stabilization.
    """

    labels: np.ndarray
    medoid_indices: np.ndarray
    cluster_dims: tuple[np.ndarray, ...]
    n_iterations: int

    @property
    def n_clusters(self) -> int:
        return self.medoid_indices.size


class ProjectedClustering:
    """Cluster points into axis-parallel subspace clusters.

    Args:
        n_clusters: number of clusters.
        n_dims: subspace dimensionality per cluster.
        max_iterations: cap on assignment/update rounds.
        seed: RNG seed for medoid initialization.
    """

    def __init__(
        self,
        n_clusters: int,
        n_dims: int,
        max_iterations: int = 30,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        if n_dims < 1:
            raise ValueError(f"n_dims must be positive, got {n_dims}")
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.n_clusters = n_clusters
        self.n_dims = n_dims
        self.max_iterations = max_iterations
        self.seed = seed

    def fit(self, features) -> ProjectedClusteringResult:
        """Run the alternating assignment/subspace-update loop."""
        data = np.asarray(features, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"features must be 2-d, got shape {data.shape}")
        n, d = data.shape
        if n < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} points, got {n}"
            )
        if self.n_dims > d:
            raise ValueError(
                f"n_dims={self.n_dims} exceeds data dimensionality {d}"
            )

        rng = np.random.default_rng(self.seed)
        medoids = rng.choice(n, size=self.n_clusters, replace=False)
        dims = tuple(
            np.arange(self.n_dims, dtype=np.intp)
            for _ in range(self.n_clusters)
        )
        labels = np.full(n, -1, dtype=np.intp)

        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # Assignment: per-cluster subspace distance to the medoid,
            # normalized by subspace size so clusters compete fairly.
            costs = np.empty((n, self.n_clusters))
            for c in range(self.n_clusters):
                gaps = data[:, dims[c]] - data[medoids[c], dims[c]]
                costs[:, c] = np.mean(np.square(gaps), axis=1)
            new_labels = np.argmin(costs, axis=1).astype(np.intp)

            # Keep clusters non-empty: reseed an empty cluster's medoid
            # at the globally worst-assigned point.
            for c in range(self.n_clusters):
                if not np.any(new_labels == c):
                    worst = int(np.argmax(np.min(costs, axis=1)))
                    medoids[c] = worst
                    new_labels[worst] = c

            if np.array_equal(new_labels, labels):
                break
            labels = new_labels

            # Update: medoid = member closest to the member mean (full
            # space); subspace = dimensions with the smallest member
            # variance around the medoid (the PROCLUS criterion).
            new_dims = []
            for c in range(self.n_clusters):
                members = np.flatnonzero(labels == c)
                member_data = data[members]
                center = member_data.mean(axis=0)
                within = np.sum(np.square(member_data - center), axis=1)
                medoids[c] = members[int(np.argmin(within))]
                spread = np.mean(
                    np.square(member_data - data[medoids[c]]), axis=0
                )
                new_dims.append(
                    np.sort(np.argsort(spread, kind="stable")[: self.n_dims])
                )
            dims = tuple(new_dims)

        return ProjectedClusteringResult(
            labels=labels,
            medoid_indices=medoids.copy(),
            cluster_dims=dims,
            n_iterations=iterations,
        )


def per_cluster_reduction(
    features,
    clustering: ProjectedClusteringResult,
    n_components: int,
    ordering: str = "coherence",
    scale: bool = True,
) -> list[tuple[np.ndarray, CoherenceReducer]]:
    """Fit a :class:`CoherenceReducer` inside each projected cluster.

    The Section 3.1 recipe: after decomposing a high-implicit-
    dimensionality dataset into low-implicit-dimensionality subsets, the
    coherence machinery applies per subset.

    Returns:
        One ``(member_row_indices, fitted_reducer)`` pair per cluster.
        Clusters too small to fit PCA on (fewer than 2 members, or fewer
        members than requested components would allow) get a reducer
        fitted with as many components as the member count supports.
    """
    data = np.asarray(features, dtype=np.float64)
    results = []
    for c in range(clustering.n_clusters):
        members = np.flatnonzero(clustering.labels == c)
        if members.size < 2:
            raise ValueError(
                f"cluster {c} has {members.size} member(s); "
                "cannot fit a reducer — use fewer clusters"
            )
        subset = data[members]
        # Studentization drops constant columns, shrinking the component
        # budget a small cluster can support.
        usable = (
            int(np.sum(np.std(subset, axis=0) > 0.0))
            if scale
            else subset.shape[1]
        )
        if usable == 0:
            raise ValueError(
                f"cluster {c} is constant in every dimension; "
                "cannot fit a reducer"
            )
        budget = min(n_components, usable)
        reducer = CoherenceReducer(
            n_components=budget, ordering=ordering, scale=scale
        )
        reducer.fit(subset)
        results.append((members, reducer))
    return results
