"""ORCLUS-style generalized projected clustering.

Aggarwal & Yu (SIGMOD 2000) — "Finding Generalized Projected Clusters in
High Dimensional Spaces", the paper's reference [2] and the exact method
Section 3.1 points to when the global coherence spectrum is flat.  Where
PROCLUS restricts each cluster to axis-parallel dimensions,
ORCLUS gives each cluster an **arbitrarily oriented** subspace: the
eigenvectors of the cluster's own covariance with the *smallest*
eigenvalues (the directions along which the cluster is tightest).

This implementation follows the ORCLUS skeleton at reduced scale:

1. start with ``k0 > k`` seeds in full dimensionality;
2. assign points by projected distance to each seed in that seed's
   current subspace;
3. recompute each cluster's subspace from its members' covariance;
4. merge the closest pair of clusters and shrink the subspace
   dimensionality by a decay factor, until ``k`` clusters at ``l`` dims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.eigen import eigh_numpy


@dataclass(frozen=True)
class OrclusResult:
    """Outcome of an ORCLUS run.

    Attributes:
        labels: ``(n,)`` cluster assignment.
        centroids: ``(k, d)`` cluster centers in full space.
        subspaces: per cluster, a ``(d, l)`` orthonormal basis of the
            cluster's *tight* directions (smallest-eigenvalue
            eigenvectors of the member covariance).
        n_merges: how many cluster merges the schedule performed.
    """

    labels: np.ndarray
    centroids: np.ndarray
    subspaces: tuple[np.ndarray, ...]
    n_merges: int

    @property
    def n_clusters(self) -> int:
        return self.centroids.shape[0]


class OrclusClustering:
    """Arbitrarily-oriented projected clustering.

    Args:
        n_clusters: target cluster count ``k``.
        subspace_dims: target subspace dimensionality ``l``.
        initial_factor: the seed count starts at
            ``initial_factor * n_clusters`` and is merged down.
        max_iterations: assignment/update rounds per merge stage.
        seed: RNG seed for the initial seeds.
    """

    def __init__(
        self,
        n_clusters: int,
        subspace_dims: int,
        initial_factor: int = 3,
        max_iterations: int = 5,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        if subspace_dims < 1:
            raise ValueError(f"subspace_dims must be positive, got {subspace_dims}")
        if initial_factor < 1:
            raise ValueError("initial_factor must be at least 1")
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.n_clusters = n_clusters
        self.subspace_dims = subspace_dims
        self.initial_factor = initial_factor
        self.max_iterations = max_iterations
        self.seed = seed

    # -- internals -------------------------------------------------------

    @staticmethod
    def _tight_subspace(members: np.ndarray, l: int) -> np.ndarray:
        """The ``l`` smallest-eigenvalue directions of the member cloud."""
        if members.shape[0] < 2:
            # Degenerate cluster: any orthonormal basis will do.
            d = members.shape[1]
            return np.eye(d)[:, :l]
        centered = members - members.mean(axis=0)
        covariance = centered.T @ centered / members.shape[0]
        decomposition = eigh_numpy((covariance + covariance.T) / 2.0)
        # Eigenvalues are sorted descending; take the tail.
        return decomposition.eigenvectors[:, -l:]

    @staticmethod
    def _projected_energy(
        points: np.ndarray, centroid: np.ndarray, basis: np.ndarray
    ) -> np.ndarray:
        """Squared distance to the centroid *inside* the tight subspace."""
        gaps = (points - centroid) @ basis
        return np.sum(np.square(gaps), axis=1) / basis.shape[1]

    def fit(self, features) -> OrclusResult:
        """Run the merge schedule down to ``n_clusters`` clusters."""
        data = np.asarray(features, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"features must be 2-d, got shape {data.shape}")
        n, d = data.shape
        if self.subspace_dims > d:
            raise ValueError(
                f"subspace_dims={self.subspace_dims} exceeds dimensionality {d}"
            )
        k0 = min(self.initial_factor * self.n_clusters, n)
        if k0 < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} points, got {n}"
            )

        rng = np.random.default_rng(self.seed)
        centroids = data[rng.choice(n, size=k0, replace=False)].copy()
        # Subspace dimensionality decays from full to the target as the
        # cluster count decays from k0 to k (the ORCLUS schedule).
        current_l = d
        subspaces = [np.eye(d)[:, :current_l] for _ in range(k0)]
        labels = np.zeros(n, dtype=np.intp)
        n_merges = 0

        while True:
            for _ in range(self.max_iterations):
                costs = np.column_stack(
                    [
                        self._projected_energy(data, centroids[c], subspaces[c])
                        for c in range(len(centroids))
                    ]
                )
                new_labels = np.argmin(costs, axis=1).astype(np.intp)
                if np.array_equal(new_labels, labels):
                    labels = new_labels
                    break
                labels = new_labels
                for c in range(len(centroids)):
                    members = data[labels == c]
                    if members.shape[0] > 0:
                        centroids[c] = members.mean(axis=0)
                        subspaces[c] = self._tight_subspace(members, current_l)

            if len(centroids) <= self.n_clusters and current_l <= self.subspace_dims:
                break

            if len(centroids) > self.n_clusters:
                # Merge the pair whose union is tightest in its own subspace.
                best_pair, best_cost = None, np.inf
                for a in range(len(centroids)):
                    for b in range(a + 1, len(centroids)):
                        union = data[(labels == a) | (labels == b)]
                        if union.shape[0] == 0:
                            continue
                        basis = self._tight_subspace(union, current_l)
                        cost = float(
                            np.mean(
                                self._projected_energy(
                                    union, union.mean(axis=0), basis
                                )
                            )
                        )
                        if cost < best_cost:
                            best_pair, best_cost = (a, b), cost
                a, b = best_pair
                labels[labels == b] = a
                labels[labels > b] -= 1
                keep = [c for c in range(len(centroids)) if c != b]
                centroids = centroids[keep]
                subspaces = [subspaces[c] for c in keep]
                merged_members = data[labels == a]
                centroids[a] = merged_members.mean(axis=0)
                n_merges += 1

            # Shrink the subspace dimensionality geometrically toward l.
            if current_l > self.subspace_dims:
                current_l = max(self.subspace_dims, int(current_l * 0.7))
            subspaces = [
                self._tight_subspace(data[labels == c], current_l)
                if np.any(labels == c)
                else np.eye(d)[:, :current_l]
                for c in range(len(centroids))
            ]

        return OrclusResult(
            labels=labels,
            centroids=centroids,
            subspaces=tuple(subspaces),
            n_merges=n_merges,
        )
