"""The Section 3.1 extension: generalized projected clustering.

When every eigenvector's coherence probability sits near the uniform
baseline, the data as a whole has too many independent concepts for a
single global reduction.  The paper points to generalized projected
clustering (Aggarwal & Yu, SIGMOD 2000) as the way out: decompose the
data into subsets with low implicit dimensionality, then reduce each
subset on its own.  :class:`ProjectedClustering` is a compact
PROCLUS-style realization, and :func:`per_cluster_reduction` chains it
with :class:`repro.core.CoherenceReducer`.
"""

from repro.clustering.projected import (
    ProjectedClustering,
    ProjectedClusteringResult,
    per_cluster_reduction,
)
from repro.clustering.kmeans import KMeansResult, kmeans
from repro.clustering.orclus import OrclusClustering, OrclusResult

__all__ = [
    "KMeansResult",
    "OrclusClustering",
    "OrclusResult",
    "ProjectedClustering",
    "ProjectedClusteringResult",
    "kmeans",
    "per_cluster_reduction",
]
