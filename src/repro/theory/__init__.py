"""Theory: closed-form results and implicit-dimensionality estimators.

Section 3 of the paper derives the uniform-cube worst case in closed form
(:mod:`repro.theory.uniform`) and frames everything in terms of the
*implicit dimensionality* of the data — the number of independent
concepts — which :mod:`repro.theory.implicit_dim` estimates.
"""

from repro.theory.uniform import (
    empirical_uniform_coherence,
    uniform_coherence_factor,
    uniform_coherence_probability,
)
from repro.theory.implicit_dim import (
    correlation_dimension,
    dimension_at_energy,
    entropy_dimension,
    participation_ratio,
)

__all__ = [
    "correlation_dimension",
    "dimension_at_energy",
    "empirical_uniform_coherence",
    "entropy_dimension",
    "participation_ratio",
    "uniform_coherence_factor",
    "uniform_coherence_probability",
]
