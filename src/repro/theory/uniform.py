"""The uniform-cube worst case, in closed form (Section 3).

For data uniform in a cube centered at the origin, the raw axes are a
valid eigenbasis and each point's contribution vector along axis ``e_1``
is ``(x_1, 0, …, 0)``.  Then

    |X . e_1| / d    = |x_1| / d
    sigma(e_1, X)    = sqrt(x_1^2 / d) = |x_1| / sqrt(d)
    CF(X, e_1)       = (|x_1|/d) / (|x_1| / sqrt(d) / sqrt(d)) = 1

— Equation 4: the coherence factor is exactly 1 for every point and
every axis, independent of coordinates and dimensionality; hence
Equation 5: ``P(D(d), e_i) = 2 Phi(1) - 1 ≈ 0.6827`` for every vector.
At that level no vector can be called a concept and none can be dropped,
so perfectly noisy data admits no useful dimensionality reduction.

(The derivation needs each point to have a *nonzero* coordinate along
the axis; the measure-zero exceptions score CF = 0 by the library's
zero-evidence convention, so empirical estimates converge to the closed
form from below, at machine precision for continuous data.)
"""

from __future__ import annotations

import numpy as np

from repro.core.coherence import coherence_factors, dataset_coherence
from repro.stats.normal import symmetric_mass


def uniform_coherence_factor() -> float:
    """Equation 4: CF of any axis eigenvector on uniform data is 1."""
    return 1.0


def uniform_coherence_probability() -> float:
    """Equation 5: ``P(D(d), e_i) = 2 Phi(1) - 1 ≈ 0.6827``."""
    return float(symmetric_mass(uniform_coherence_factor()))


def empirical_uniform_coherence(
    n_samples: int = 1000,
    n_dims: int = 50,
    seed: int = 0,
) -> dict:
    """Measure the uniform-cube coherence empirically.

    Draws uniform data in ``[-1/2, 1/2]^d``, centers it, and evaluates
    the coherence model along the raw axes (a valid eigenbasis for this
    distribution).

    Returns:
        A dict with the per-axis ``coherence_probabilities``, their mean
        and spread, the per-point-per-axis ``coherence_factors``, and the
        closed-form prediction for comparison.
    """
    if n_samples < 2 or n_dims < 1:
        raise ValueError("need n_samples >= 2 and n_dims >= 1")
    rng = np.random.default_rng(seed)
    data = rng.uniform(-0.5, 0.5, size=(n_samples, n_dims))
    centered = data - data.mean(axis=0)
    axes = np.eye(n_dims)

    factors = coherence_factors(centered, axes)
    probabilities = dataset_coherence(centered, axes)
    return {
        "coherence_factors": factors,
        "coherence_probabilities": probabilities,
        "mean_probability": float(np.mean(probabilities)),
        "probability_spread": float(
            np.max(probabilities) - np.min(probabilities)
        ),
        "predicted_factor": uniform_coherence_factor(),
        "predicted_probability": uniform_coherence_probability(),
    }
