"""Implicit-dimensionality estimators.

"For a data set of fixed dimensionality, the implicit dimensionality
increases when the dimensions are relatively uncorrelated to one
another, because there are a larger number of independent concepts"
(Section 1).  These estimators quantify that number:

* :func:`participation_ratio` — ``(sum λ)^2 / sum λ^2`` of the
  eigenvalue spectrum; equals ``d`` for a flat spectrum (uniform data)
  and the concept count for a spectrum with that many dominant values.
* :func:`entropy_dimension` — ``exp`` of the Shannon entropy of the
  normalized spectrum; same limits, smoother in between.
* :func:`dimension_at_energy` — smallest eigenvalue prefix covering a
  target variance fraction (the classical "95 % energy" reading).
* :func:`correlation_dimension` — a Grassberger–Procaccia-style estimate
  from pairwise distances, independent of PCA entirely.
"""

from __future__ import annotations

import numpy as np

from repro.distances.metrics import squared_euclidean_matrix


def _validate_spectrum(eigenvalues) -> np.ndarray:
    values = np.asarray(eigenvalues, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("eigenvalues must be a non-empty 1-d array")
    if np.any(values < -1e-12 * max(1.0, float(np.abs(values).max()))):
        raise ValueError("eigenvalues must be non-negative")
    values = np.maximum(values, 0.0)
    if values.sum() == 0.0:
        raise ValueError("eigenvalue spectrum is identically zero")
    return values


def participation_ratio(eigenvalues) -> float:
    """``(sum λ_i)^2 / sum λ_i^2`` — effective number of active directions."""
    values = _validate_spectrum(eigenvalues)
    return float(values.sum() ** 2 / np.sum(np.square(values)))


def entropy_dimension(eigenvalues) -> float:
    """``exp(H)`` for ``H`` the entropy of the normalized spectrum."""
    values = _validate_spectrum(eigenvalues)
    weights = values / values.sum()
    positive = weights[weights > 0.0]
    return float(np.exp(-np.sum(positive * np.log(positive))))


def dimension_at_energy(eigenvalues, energy: float = 0.95) -> int:
    """Smallest number of leading eigenvalues covering ``energy`` variance.

    Eigenvalues need not be pre-sorted; they are sorted descending here.
    """
    if not 0.0 < energy <= 1.0:
        raise ValueError(f"energy must lie in (0, 1], got {energy}")
    values = np.sort(_validate_spectrum(eigenvalues))[::-1]
    cumulative = np.cumsum(values) / values.sum()
    return int(np.searchsorted(cumulative, energy - 1e-12) + 1)


def correlation_dimension(
    features,
    n_radii: int = 10,
    seed: int = 0,
    max_points: int = 500,
) -> float:
    """Grassberger–Procaccia correlation-dimension estimate.

    Counts point pairs within radius ``r`` for a geometric ladder of
    radii and fits the log–log slope of the correlation integral.  The
    slope approximates the intrinsic dimensionality of the support.

    Args:
        features: ``(n, d)`` data matrix.
        n_radii: radii on the ladder (between the 5th and 50th distance
            percentiles, where the scaling regime usually lives).
        seed: subsampling seed when the dataset exceeds ``max_points``.
        max_points: cap on points used (pair counting is quadratic).
    """
    data = np.asarray(features, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] < 10:
        raise ValueError("need a 2-d matrix with at least 10 rows")
    if n_radii < 2:
        raise ValueError("need at least two radii for a slope")

    if data.shape[0] > max_points:
        rng = np.random.default_rng(seed)
        data = data[rng.choice(data.shape[0], size=max_points, replace=False)]

    squared = squared_euclidean_matrix(data)
    n = squared.shape[0]
    upper = squared[np.triu_indices(n, k=1)]
    distances = np.sqrt(upper[upper > 0.0])
    if distances.size < n_radii:
        raise ValueError("too many duplicate points to estimate a dimension")

    low = float(np.percentile(distances, 5))
    high = float(np.percentile(distances, 50))
    if low <= 0.0 or high <= low:
        raise ValueError("degenerate distance distribution")
    radii = np.geomspace(low, high, n_radii)

    counts = np.asarray(
        [np.mean(distances <= r) for r in radii], dtype=np.float64
    )
    if np.any(counts == 0.0):
        keep = counts > 0.0
        radii, counts = radii[keep], counts[keep]
        if radii.size < 2:
            raise ValueError("correlation integral is empty at these radii")

    slope, _ = np.polyfit(np.log(radii), np.log(counts), deg=1)
    return float(slope)
