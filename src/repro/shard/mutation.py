"""Sharded mutable serving: per-shard memtables behind one coordinator.

:class:`MutableShardedServer` extends the scatter-gather story to a
mutating corpus.  The coordinator owns one
:class:`~repro.serve.mutation.MutableIndexServer` per shard and
forwards every mutation to the shard that owns the row:

* the coordinator allocates **global row ids** (monotonic, never
  reused) and routes by ``row_id % n_shards`` — the round-robin rule,
  applied uniformly to the seed corpus and to every later insert, so
  ownership is a pure function of the id and deletes need no routing
  table;
* each member keeps its own memtable, compacts its own generations
  (size- or drift-triggered, independently — one shard hot-swapping
  never blocks the others), and answers exactly for its subset;
* a query fans out with each member's ``k`` clamped to its live row
  count, and the per-shard answers — already in global ids — are
  pooled and re-selected by ``(distance, global id)``, the family's
  tie-break order.  The members partition the live rowset, so the
  merged top-k is bit-identical to one fresh index built over all live
  rows (see :mod:`repro.shard.merge` for the argument).

Only exact kinds are accepted, inherited from the per-shard servers'
own gate.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    combine_stats,
    validate_corpus,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.serve.mutation import MutableIndexServer, MutationError


class MutableShardedServer:
    """Mutation-capable scatter-gather over per-shard generation stores.

    Args:
        root: directory holding one generation store per shard
            (``shard-000/``, ``shard-001/``, ...).
        points: initial corpus for a fresh deployment (row ``i`` gets
            global id ``i`` and lands on shard ``i % n_shards``); pass
            ``None`` to resume existing stores.
        n_shards: member count; fixed for the deployment's lifetime.
        kind / index_kwargs / compact_threshold / drift_threshold /
        keep_generations / n_workers: forwarded to every member
            :class:`MutableIndexServer`.
        wal_sync / wal_group_ops / wal_group_interval_ms: write-ahead
            log fsync policy, forwarded to every member — each shard
            keeps its own log.  Under ``"always"`` an acknowledged op
            is durable on its owning shard, so resume (which recovers
            the global id counter as the max over member counters)
            never reuses an id even after a partial-shard crash; under
            ``"group"``/``"off"`` a crash can drop each shard's
            unsynced window independently.
    """

    def __init__(
        self,
        root: str,
        points=None,
        *,
        n_shards: int = 2,
        kind: str = "bruteforce",
        index_kwargs: dict | None = None,
        n_workers: int = 0,
        compact_threshold: int | None = None,
        drift_threshold: float | None = None,
        keep_generations: int = 2,
        wal_sync: str = "always",
        wal_group_ops: int = 64,
        wal_group_interval_ms: float = 50.0,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = int(n_shards)
        self._root = os.path.abspath(root)
        member_points: list = [None] * n_shards
        member_ids: list = [None] * n_shards
        if points is not None:
            corpus = validate_corpus(points)
            if corpus.shape[0] < n_shards:
                raise MutationError(
                    f"n_shards={n_shards} exceeds the corpus size "
                    f"{corpus.shape[0]}; every shard needs at least "
                    "one seed row"
                )
            for shard in range(n_shards):
                member_points[shard] = corpus[shard::n_shards]
                member_ids[shard] = np.arange(
                    shard, corpus.shape[0], n_shards, dtype=np.intp
                )
        self._members: list[MutableIndexServer] = []
        try:
            for shard in range(n_shards):
                self._members.append(
                    MutableIndexServer(
                        os.path.join(self._root, f"shard-{shard:03d}"),
                        member_points[shard],
                        row_ids=member_ids[shard],
                        kind=kind,
                        index_kwargs=index_kwargs,
                        n_workers=n_workers,
                        compact_threshold=compact_threshold,
                        drift_threshold=drift_threshold,
                        keep_generations=keep_generations,
                        wal_sync=wal_sync,
                        wal_group_ops=wal_group_ops,
                        wal_group_interval_ms=wal_group_interval_ms,
                    )
                )
        except BaseException:
            for member in self._members:
                member.close()
            raise
        self._kind = kind
        # Global id allocation: resume from the largest next-id any
        # member recorded.  With round-robin ownership an id is only
        # valid on shard id % S, so the coordinator hands each member
        # the exact id it must store the row under.  Each member's
        # counter reflects its generation manifest *plus* its replayed
        # write-ahead log, so under wal_sync="always" every id the
        # coordinator ever acknowledged is past the recovered max and
        # can never be reallocated after a partial-shard crash.
        self._lock = threading.Lock()
        self._next_row_id = max(
            member.next_row_id for member in self._members
        )
        self._closed = False

    # -- introspection -------------------------------------------------

    @property
    def kind(self) -> str:
        return self._kind

    @property
    def dimensionality(self) -> int:
        return self._members[0].dimensionality

    @property
    def n_live(self) -> int:
        return sum(member.n_live for member in self._members)

    @property
    def next_row_id(self) -> int:
        """The global id the next :meth:`insert` would be assigned."""
        with self._lock:
            return self._next_row_id

    @property
    def members(self) -> tuple[MutableIndexServer, ...]:
        return tuple(self._members)

    def owner_of(self, row_id: int) -> int:
        """The shard owning ``row_id`` (pure function of the id)."""
        return int(row_id) % self.n_shards

    # -- mutation ------------------------------------------------------

    def insert(self, vector) -> int:
        """Insert one row; the coordinator allocates its global id."""
        with self._lock:
            if self._closed:
                raise MutationError("sharded server is closed")
            row_id = self._next_row_id
            self._next_row_id += 1
        self._members[self.owner_of(row_id)].insert(vector, row_id=row_id)
        return row_id

    def delete(self, row_id: int) -> None:
        """Delete one live row, routed to its owning shard.

        Raises:
            KeyError: when ``row_id`` is not a live row.
        """
        self._members[self.owner_of(row_id)].delete(row_id)

    def compact_all(self, reason: str = "manual") -> None:
        """Compact every member (each publishes its own generation)."""
        for member in self._members:
            if member.memtable_ops > 0 or reason != "manual":
                member.compact(reason=reason)

    # -- queries -------------------------------------------------------

    def query(
        self, query, k: int = 1, *, deadline_ms: float | None = None
    ) -> KnnResult:
        """Exact global top-``k`` over the union of live shard rows.

        ``deadline_ms`` is forwarded to every member query; the fan-out
        is sequential, so it bounds each member's wait, not the sum.
        """
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_live)
        per_shard = []
        for member in self._members:
            # A member holding fewer than k live rows contributes them
            # all; one holding none contributes nothing.  Any global
            # top-k row ranks in the top-k of its own shard, so
            # clamping loses no candidate.
            k_member = min(k, member.n_live)
            if k_member > 0:
                per_shard.append(
                    member.query(vector, k_member, deadline_ms=deadline_ms)
                )
        return _merge_global(per_shard, k)

    def query_batch(
        self, queries, k: int = 1, *, deadline_ms: float | None = None
    ) -> BatchKnnResult:
        """Row-wise :meth:`query` through per-member explicit batches.

        ``deadline_ms`` is forwarded to every member batch.
        """
        array = validate_queries(queries, self.dimensionality)
        k = validate_k(k, self.n_live)
        per_shard = []
        for member in self._members:
            k_member = min(k, member.n_live)
            if k_member > 0 and array.shape[0] > 0:
                per_shard.append(
                    member.query_batch(
                        array, k_member, deadline_ms=deadline_ms
                    )
                )
        results = tuple(
            _merge_global(
                [batch.results[row] for batch in per_shard], k
            )
            for row in range(array.shape[0])
        )
        return BatchKnnResult(
            results=results,
            stats=combine_stats(r.stats for r in results),
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close every member server (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for member in self._members:
            member.close()

    def __enter__(self) -> "MutableShardedServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _merge_global(per_shard, k: int) -> KnnResult:
    """Pool per-shard answers (already global ids) into the top-``k``."""
    candidates = [
        (neighbor.distance, neighbor.index)
        for result in per_shard
        for neighbor in result.neighbors
    ]
    candidates.sort()
    return KnnResult(
        neighbors=tuple(
            Neighbor(index=gid, distance=distance)
            for distance, gid in candidates[:k]
        ),
        stats=combine_stats(result.stats for result in per_shard),
    )
