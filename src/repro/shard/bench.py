"""Unsharded vs scatter-gather serving comparison.

Shared by ``repro serve-bench --shards S`` (CLI) and
``benchmarks/bench_ablation_sharding.py`` so both measure the same way.
The measurement protocol is exactly :mod:`repro.serve.bench` — a
:class:`~repro.shard.server.ShardedIndexServer` speaks the same
``reset_stats`` / ``submit`` / ``stats`` surface as a single
:class:`~repro.serve.server.IndexServer`, so :func:`served_run` drives
it unchanged.  The baseline stays the *unsharded* closed loop (one
``index.query`` per query on the full corpus), which is also the
reference for the bit-identity check: a sharded deployment is not
allowed to answer differently from the single big index, down to tie
ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serve.bench import closed_loop_run, served_run
from repro.serve.stats import ServingReport
from repro.shard.partition import ShardManifest
from repro.shard.server import ShardedIndexServer


def identical_answers(expected, observed) -> bool:
    """True when every delivered *answer* matches bit-for-bit.

    Like :func:`repro.serve.bench.identical_results` but compares the
    answer surface only — neighbor indices and distances.  The sharded
    execution's summed ``QueryStats`` legitimately differ from the
    single index's for pruning structures (S small trees visit and
    prune different node counts than one big tree), so stats are not
    part of the sharded identity contract; stats identity for the
    scan-everything index is pinned by the sharding property suite.
    ``None`` entries in ``observed`` mark requests resolved with a
    typed serving error and are skipped — an undelivered answer is not
    a divergence, a *different* answer is.
    """
    expected = list(expected)
    observed = list(observed)
    if len(expected) != len(observed):
        return False
    return all(
        tuple(a.indices.tolist()) == tuple(b.indices.tolist())
        and tuple(a.distances.tolist()) == tuple(b.distances.tolist())
        for a, b in zip(expected, observed)
        if b is not None
    )


@dataclass(frozen=True)
class ShardedComparison:
    """Unsharded closed-loop vs sharded served, one configuration."""

    index_kind: str
    n_points: int
    dims: int
    n_queries: int
    k: int
    n_shards: int
    method: str
    replicas: int
    n_workers: int
    closed_loop_seconds: float
    closed_loop_qps: float
    served_seconds: float
    served_qps: float
    speedup: float
    identical: bool
    report: ServingReport


def compare_sharded_serving(
    index,
    manifest: ShardManifest | str,
    queries,
    k: int,
    *,
    n_workers: int = 1,
    replicas: int = 1,
    policy=None,
    cache_capacity: int = 0,
    start_method: str | None = None,
    deadline_ms: float | None = None,
    max_pending: int | None = None,
    shed_policy: str = "reject-new",
    heartbeat_timeout: float | None = 30.0,
    max_resubmits: int = 1,
) -> ShardedComparison:
    """Measure unsharded closed-loop vs sharded scatter-gather serving.

    ``index`` is the unsharded reference structure built over the full
    corpus; ``manifest`` locates the shard snapshots built from that
    same corpus with matching constructor arguments, so the identity
    check is meaningful.  Requests resolved with a typed serving error
    are excluded from the identity check (they appear in the report's
    ledger); a *different* answer fails it.
    """
    array = np.asarray(queries, dtype=np.float64)
    closed_seconds, closed_results = closed_loop_run(index, array, k)
    with ShardedIndexServer(
        manifest,
        n_workers=n_workers,
        replicas=replicas,
        policy=policy,
        max_pending=max_pending,
        shed_policy=shed_policy,
        cache_capacity=cache_capacity,
        start_method=start_method,
        heartbeat_timeout=heartbeat_timeout,
        max_resubmits=max_resubmits,
    ) as server:
        served_seconds, served_results, report = served_run(
            server, array, k, deadline_ms=deadline_ms
        )
        n_shards = server.n_shards
        method = server.manifest.method
    n_queries = array.shape[0]
    return ShardedComparison(
        index_kind=type(index).__name__,
        n_points=index.n_points,
        dims=index.dimensionality,
        n_queries=n_queries,
        k=k,
        n_shards=n_shards,
        method=method,
        replicas=replicas,
        n_workers=n_workers,
        closed_loop_seconds=closed_seconds,
        closed_loop_qps=n_queries / closed_seconds if closed_seconds else 0.0,
        served_seconds=served_seconds,
        served_qps=n_queries / served_seconds if served_seconds else 0.0,
        speedup=closed_seconds / served_seconds if served_seconds else 0.0,
        identical=identical_answers(closed_results, served_results),
        report=report,
    )
