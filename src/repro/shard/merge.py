"""Exact top-k merge of per-shard answers.

The correctness core of scatter-gather serving.  Each shard returns the
exact top-k of *its* candidate set with local row indices; the merge
maps local indices to global ids, pools the candidates, and re-selects
the global top-k ordered by ``(distance, global id)``.

Why this is bit-identical to the unsharded index:

* a point's distance to the query is a function of the point and the
  query alone, so the same corpus row produces the same distance bytes
  whether it lives in a shard or in the full corpus;
* the shards partition the corpus, so the union of per-shard candidate
  sets equals the unsharded candidate set (for the exact indexes that
  set is the whole corpus; for LSH it is the probed buckets, which
  shard-decompose because bucket keys depend only on the point and the
  shared hash functions);
* any global top-k member must rank within the top-k of its own shard,
  so keeping k per shard loses nothing;
* every index in the family breaks distance ties by *lower corpus
  index*, and sorting pooled candidates by ``(distance, global id)``
  reproduces exactly that order.

Per-query :class:`~repro.search.results.QueryStats` are **summed**
across the contributing shards — work accounting is additive.  For a
scan-everything index (bruteforce) the sum equals the unsharded count;
for pruning indexes the per-shard tree shapes differ from the single
big tree, so the summed stats describe the sharded execution honestly
rather than imitating the unsharded one.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    Neighbor,
    combine_stats,
)


def merge_results(
    per_shard: Sequence[KnnResult],
    shard_ids: Sequence[np.ndarray],
    k: int,
) -> KnnResult:
    """Merge one query's per-shard top-k lists into the global top-k.

    Args:
        per_shard: one :class:`KnnResult` per shard (*local* indices).
        shard_ids: per shard, the ``(n_s,)`` global row ids mapping its
            local row ``i`` to corpus row ``shard_ids[s][i]``.
        k: neighbors to keep after merging.  Fewer may be returned when
            the pooled candidates run short (an approximate index with
            sparse buckets), exactly like the unsharded index would.

    Returns:
        A :class:`KnnResult` with global indices, candidates ordered by
        ``(distance, global id)`` and truncated to ``k``, and the
        per-shard stats summed.
    """
    if len(per_shard) != len(shard_ids):
        raise ValueError(
            f"got {len(per_shard)} shard results but {len(shard_ids)} "
            "id arrays"
        )
    candidates: list[tuple[float, int]] = []
    for result, ids in zip(per_shard, shard_ids):
        for neighbor in result.neighbors:
            candidates.append(
                (neighbor.distance, int(ids[neighbor.index]))
            )
    candidates.sort()
    neighbors = tuple(
        Neighbor(index=gid, distance=distance)
        for distance, gid in candidates[:k]
    )
    return KnnResult(
        neighbors=neighbors,
        stats=combine_stats(result.stats for result in per_shard),
    )


def merge_batches(
    per_shard: Sequence[BatchKnnResult],
    shard_ids: Sequence[np.ndarray],
    k: int,
) -> BatchKnnResult:
    """Row-wise :func:`merge_results` over per-shard batch answers."""
    if len(per_shard) != len(shard_ids):
        raise ValueError(
            f"got {len(per_shard)} shard batches but {len(shard_ids)} "
            "id arrays"
        )
    lengths = {len(batch) for batch in per_shard}
    if len(lengths) > 1:
        raise ValueError(
            f"shard batches disagree on row count: {sorted(lengths)}"
        )
    n_rows = lengths.pop() if lengths else 0
    merged = tuple(
        merge_results(
            [batch.results[row] for batch in per_shard], shard_ids, k
        )
        for row in range(n_rows)
    )
    return BatchKnnResult(
        results=merged,
        stats=combine_stats(result.stats for result in merged),
    )
