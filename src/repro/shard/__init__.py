"""Sharded scatter-gather serving: one corpus, S snapshots, exact answers.

One index snapshot per corpus caps a deployment at one machine's memory
and one pool's throughput.  This package splits the corpus into S shard
snapshots and serves them behind a coordinator whose merged answers are
**bit-identical** to the unsharded index — same neighbors, same
distances, same tie ordering, per-shard
:class:`~repro.search.results.QueryStats` summed:

* :mod:`repro.shard.partition` — split a corpus into shard snapshots
  plus global-id sidecars and a validated ``shards.json`` manifest
  (:func:`build_shards`, :func:`partition_labels`,
  :func:`load_manifest`).  Assignment is ``"round-robin"`` or
  ``"projected"`` (PROCLUS-style projected clusters via
  :mod:`repro.clustering`).
* :mod:`repro.shard.merge` — the exact top-k merge by
  ``(distance, global id)`` (:func:`merge_results`,
  :func:`merge_batches`), with the bit-identity argument in its module
  docstring.
* :mod:`repro.shard.server` — :class:`ShardedIndexServer`, the
  coordinator owning one hardened
  :class:`~repro.serve.server.IndexServer` per shard replica: per-shard
  deadline budgets, typed :class:`~repro.serve.errors.ShardError`
  partial-failure policy (never a silent partial top-k), bounded
  admission at the coordinator, and least-loaded replica routing for
  hot shards.
* :mod:`repro.shard.bench` — :func:`compare_sharded_serving`, the
  unsharded-baseline measurement harness shared by the CLI and
  ``benchmarks/bench_ablation_sharding.py``.
* :mod:`repro.shard.mutation` — :class:`MutableShardedServer`, the
  mutation-capable coordinator: global row ids allocated centrally,
  routed to per-shard :class:`~repro.serve.mutation.MutableIndexServer`
  memtables by ``id % S``, with per-shard compaction/generations and
  the same exact global merge.
"""

from repro.shard.bench import ShardedComparison, compare_sharded_serving
from repro.shard.merge import merge_batches, merge_results
from repro.shard.mutation import MutableShardedServer
from repro.shard.partition import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    PARTITION_METHODS,
    ShardManifest,
    ShardManifestError,
    ShardSpec,
    build_shards,
    load_manifest,
    partition_labels,
)
from repro.shard.server import ShardedIndexServer

__all__ = [
    "build_shards",
    "compare_sharded_serving",
    "load_manifest",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "merge_batches",
    "merge_results",
    "MutableShardedServer",
    "PARTITION_METHODS",
    "partition_labels",
    "ShardedComparison",
    "ShardedIndexServer",
    "ShardManifest",
    "ShardManifestError",
    "ShardSpec",
]
