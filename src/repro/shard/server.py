"""Scatter-gather serving over sharded index snapshots.

:class:`ShardedIndexServer` is the coordinator that makes S shard
snapshots answer like one big index.  It owns one
:class:`~repro.serve.server.IndexServer` per shard *replica* (R >= 1
replicas per shard, each with its own worker pool and micro-batcher),
fans every request out to one replica of every shard, and merges the
per-shard top-k by ``(distance, global id)`` — bit-identical to the
unsharded index, including tie ordering, with per-shard
:class:`~repro.search.results.QueryStats` summed.

The coordinator composes with the PR 4-5 hardening rather than
re-implementing it:

* **Per-shard deadlines.**  A request deadline is fixed once at the
  coordinator; each shard sub-request carries the *remaining* budget,
  so every member micro-batcher/pool/reaper enforces the same absolute
  instant.  The coordinator runs its own deadline reaper as well, so a
  blocked caller is released at the deadline even while shards are
  mid-flight.
* **Partial-failure policy.**  A failed shard fails the whole request
  with a typed :class:`~repro.serve.errors.ShardError` (original
  failure chained as ``__cause__``).  A partial merge over the
  surviving shards could silently *drop true neighbors*, so it is never
  returned — the repo-wide contract is fail loudly, not approximately.
  Deadline and overload failures keep their own types
  (:class:`DeadlineExceeded`, :class:`ServerOverloaded`) so the caller's
  ledger stays meaningful.
* **Bounded admission at the coordinator.**  ``max_pending`` bounds the
  number of outstanding scatter-gather requests; overflow is shed per
  ``shed_policy`` (``reject-new`` raises in the caller, ``drop-oldest``
  fails the oldest outstanding request).  Member servers run unbounded
  by default — the coordinator is the single admission point, so a
  burst is shed once instead of S times.
* **Hot-shard replica routing.**  With ``replicas=R``, each shard's
  sub-request goes to the replica with the fewest outstanding
  sub-requests (ties rotate), so a slow or hot replica sheds load to
  its peers while both stay bit-identical sources.

The degradation ledger (:meth:`stats`) accounts every submitted request
exactly once: answered, failed, shed, deadline-exceeded, or cancelled.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace

from repro.search.results import (
    BatchKnnResult,
    KnnResult,
    QueryStats,
    combine_stats,
    validate_k,
    validate_queries,
    validate_query,
)
from repro.serve.errors import (
    DeadlineExceeded,
    ServerClosedError,
    ServerOverloaded,
    ShardError,
)
from repro.serve.server import (
    IndexServer,
    _complete,
    _DeadlineReaper,
    _fail,
)
from repro.serve.stats import ServingReport, ServingStats
from repro.shard.merge import merge_batches, merge_results
from repro.shard.partition import (
    ShardManifest,
    ShardManifestError,
    load_manifest,
)

_SHED_POLICIES = ("reject-new", "drop-oldest")


def _shard_error(position: int, error: BaseException) -> Exception:
    """Map one shard's failure onto the coordinator request's failure.

    Deadline and overload failures keep their types (they describe the
    *request*, not a broken shard); everything else becomes a
    :class:`ShardError` naming the shard, with the original chained.
    """
    if isinstance(error, (DeadlineExceeded, ServerOverloaded)):
        return error
    wrapped = ShardError(
        f"shard {position} failed: {type(error).__name__}: {error}"
    )
    wrapped.__cause__ = error if isinstance(error, Exception) else None
    return wrapped


class _ShardMember:
    """One shard: its global ids plus R replica servers and their load."""

    __slots__ = ("position", "ids", "replicas", "loads")

    def __init__(self, position, ids, replicas) -> None:
        self.position = position
        self.ids = ids
        self.replicas = replicas
        self.loads = [0] * len(replicas)

    @property
    def n_points(self) -> int:
        return int(self.ids.size)


class _Gather:
    """Per-request aggregator: merge when all shards answer, else fail."""

    __slots__ = ("_future", "_ids", "_k", "_results", "_remaining",
                 "_failed", "_lock")

    def __init__(self, future, shard_ids, k) -> None:
        self._future = future
        self._ids = shard_ids
        self._k = k
        self._results: list[KnnResult | None] = [None] * len(shard_ids)
        self._remaining = len(shard_ids)
        self._failed = False
        self._lock = threading.Lock()

    def shard_done(self, position: int, result: KnnResult) -> None:
        with self._lock:
            self._results[position] = result
            self._remaining -= 1
            ready = self._remaining == 0 and not self._failed
        if ready:
            _complete(
                self._future,
                merge_results(self._results, self._ids, self._k),
            )

    def shard_failed(self, position: int, error: BaseException) -> None:
        with self._lock:
            self._remaining -= 1
            already = self._failed
            self._failed = True
        if not already:
            _fail(self._future, _shard_error(position, error))


class ShardedIndexServer:
    """Serve one corpus from S shard snapshots, bit-identically.

    Args:
        manifest: a :class:`~repro.shard.partition.ShardManifest`, or a
            path to a ``shards.json`` manifest (or the directory holding
            one) written by :func:`~repro.shard.partition.build_shards`.
        n_workers: worker processes *per replica server* (``0`` serves
            each shard in-process, still micro-batched).
        replicas: replica servers per shard (>= 1); requests route to
            the least-loaded replica of each shard.
        policy: member micro-batching policy, forwarded to every replica
            server.  Admission is bounded at the *coordinator* via
            ``max_pending`` below, not through this policy.
        max_pending: bound on outstanding scatter-gather requests at the
            coordinator; ``None`` leaves admission unbounded.
        shed_policy: ``"reject-new"`` (raise in the caller) or
            ``"drop-oldest"`` (fail the oldest outstanding request).
        cache_capacity / mmap_points / start_method / restart_crashed /
        heartbeat_timeout / max_resubmits / index_loader: forwarded to
            every member :class:`IndexServer`.
        default_deadline_ms: deadline applied to every ``submit`` that
            does not pass its own; ``None`` means no deadline.
    """

    def __init__(
        self,
        manifest: ShardManifest | str,
        *,
        n_workers: int = 1,
        replicas: int = 1,
        policy=None,
        max_pending: int | None = None,
        shed_policy: str = "reject-new",
        cache_capacity: int = 0,
        mmap_points: bool = True,
        start_method: str | None = None,
        restart_crashed: bool = True,
        heartbeat_timeout: float | None = 30.0,
        max_resubmits: int = 1,
        default_deadline_ms: float | None = None,
        index_loader=None,
    ) -> None:
        if isinstance(manifest, str):
            manifest = load_manifest(manifest)
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be positive or None, got {max_pending}"
            )
        if shed_policy not in _SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {_SHED_POLICIES}, "
                f"got {shed_policy!r}"
            )
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                "default_deadline_ms must be positive or None, "
                f"got {default_deadline_ms}"
            )
        self.manifest = manifest
        self.kind = manifest.kind
        self.n_replicas = int(replicas)
        self.default_deadline_ms = default_deadline_ms
        self._max_pending = max_pending
        self._shed_policy = shed_policy
        self._lock = threading.Lock()
        self._outstanding: OrderedDict[int, Future] = OrderedDict()
        self._req_ids = itertools.count()
        self._rr = itertools.count()
        self._stats = ServingStats()
        self._closed = False
        self._shards: list[_ShardMember] = []
        try:
            for position, spec in enumerate(manifest.shards):
                ids = spec.load_ids()
                members = [
                    IndexServer(
                        spec.snapshot_path,
                        n_workers=n_workers,
                        policy=policy,
                        cache_capacity=cache_capacity,
                        mmap_points=mmap_points,
                        start_method=start_method,
                        restart_crashed=restart_crashed,
                        heartbeat_timeout=heartbeat_timeout,
                        max_resubmits=max_resubmits,
                        index_loader=index_loader,
                    )
                    for _ in range(self.n_replicas)
                ]
                for server in members:
                    if (
                        server.n_points != spec.n_points
                        or server.dimensionality != manifest.dimensionality
                    ):
                        raise ShardManifestError(
                            f"{spec.snapshot_path}: snapshot shape "
                            f"({server.n_points} x {server.dimensionality}) "
                            "disagrees with the manifest"
                        )
                self._shards.append(_ShardMember(position, ids, members))
        except BaseException:
            self._close_members()
            raise
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=max(1, len(self._shards)),
            thread_name_prefix="repro-shard-scatter",
        )
        self._reaper = _DeadlineReaper()

    # -- introspection -------------------------------------------------

    @property
    def n_points(self) -> int:
        return self.manifest.n_points

    @property
    def dimensionality(self) -> int:
        return self.manifest.dimensionality

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def n_pending(self) -> int:
        """Outstanding scatter-gather requests (admission accounting)."""
        with self._lock:
            return len(self._outstanding)

    def stats(self) -> ServingReport:
        """Whole-deployment ledger over the coordinator's metric clock.

        Request-level columns (``n_requests``, latency percentiles, the
        degradation ledger) are coordinator-level: one entry per merged
        scatter-gather request.  Execution-level columns (``n_batches``,
        the batch-size histogram, ``query_stats``, cache and pool
        counters) are summed across every member server, so they count
        downstream work — a request fanned out to S shards contributes
        S micro-batch rows and the sum of the per-shard scans.
        Per-replica detail lives in :meth:`shard_reports`.
        """
        cache = [0, 0, 0]
        pool = [0, 0, 0]
        n_batches = 0
        n_rows = 0
        histogram: dict[int, int] = {}
        work = [QueryStats()]
        for reports in self.shard_reports():
            for report in reports:
                cache[0] += report.cache_hits
                cache[1] += report.cache_misses
                cache[2] += report.cache_evictions
                pool[0] += report.n_restarts
                pool[1] += report.n_hung_kills
                pool[2] += report.n_resubmitted
                n_batches += report.n_batches
                for size, count in report.batch_size_histogram.items():
                    histogram[size] = histogram.get(size, 0) + count
                    n_rows += size * count
                work.append(report.query_stats)
        base = self._stats.report(
            cache_counters=tuple(cache), pool_counters=tuple(pool)
        )
        return replace(
            base,
            n_batches=n_batches,
            batch_size_histogram=histogram,
            mean_batch_size=n_rows / n_batches if n_batches else 0.0,
            query_stats=combine_stats(work),
        )

    def shard_reports(self) -> list[list[ServingReport]]:
        """Per shard, the report of each replica server."""
        return [
            [replica.stats() for replica in member.replicas]
            for member in self._shards
        ]

    def reset_stats(self) -> None:
        """Restart the coordinator and member metric clocks."""
        self._stats.reset()
        for member in self._shards:
            for replica in member.replicas:
                replica.reset_stats()

    # -- request paths -------------------------------------------------

    def submit(
        self, query, k: int = 1, *, deadline_ms: float | None = None
    ) -> Future:
        """Scatter one query to every shard; the future merges the top-k.

        Validation is synchronous and matches ``index.query`` on the
        unsharded corpus (``k`` ranges over the *total* corpus size).
        The future resolves to a global-id :class:`KnnResult`, or fails
        with :class:`DeadlineExceeded` / :class:`ServerOverloaded` /
        :class:`ShardError` — never with a partial answer.
        """
        self._require_open()
        vector = validate_query(query, self.dimensionality)
        k = validate_k(k, self.n_points)
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive or None, got {deadline_ms}"
            )
        started = time.perf_counter()
        deadline = (
            started + deadline_ms / 1e3 if deadline_ms is not None else None
        )
        future: Future = Future()
        victim = None
        with self._lock:
            bound = self._max_pending
            if bound is not None and len(self._outstanding) >= bound:
                if self._shed_policy == "reject-new":
                    self._stats.record_shed()
                    raise ServerOverloaded(
                        "coordinator admission queue is full "
                        f"({len(self._outstanding)} requests outstanding)"
                    )
                _, victim = self._outstanding.popitem(last=False)
            req_id = next(self._req_ids)
            self._outstanding[req_id] = future
        if victim is not None:
            _fail(
                victim,
                ServerOverloaded(
                    "shed by coordinator drop-oldest admission policy to "
                    "make room for a newer request"
                ),
            )
        future.add_done_callback(
            lambda f: self._finish(f, req_id, started)
        )
        if deadline is not None:
            self._reaper.watch(future, deadline)
        gather = _Gather(future, [m.ids for m in self._shards], k)
        for member in self._shards:
            if deadline is not None:
                remaining_ms = (deadline - time.perf_counter()) * 1e3
                if remaining_ms <= 0.0:
                    gather.shard_failed(
                        member.position,
                        DeadlineExceeded(
                            "request deadline passed before the fan-out "
                            "completed"
                        ),
                    )
                    break
            else:
                remaining_ms = None
            replica_index, server = self._pick_replica(member)
            try:
                sub = server.submit(
                    vector,
                    k=min(k, member.n_points),
                    deadline_ms=remaining_ms,
                )
            except BaseException as error:
                self._release_replica(member, replica_index)
                gather.shard_failed(member.position, error)
                break
            sub.add_done_callback(
                lambda f, m=member, r=replica_index: self._on_shard_done(
                    gather, m, r, f
                )
            )
        return future

    def query(
        self, query, k: int = 1, *, deadline_ms: float | None = None
    ) -> KnnResult:
        """Blocking single-query convenience around :meth:`submit`."""
        return self.submit(query, k=k, deadline_ms=deadline_ms).result()

    def query_batch(self, queries, k: int = 1) -> BatchKnnResult:
        """One explicit batch, scattered whole to every shard and merged.

        Like :meth:`IndexServer.query_batch`, explicit batches bypass
        the micro-batchers, coordinator admission, and deadlines; the
        per-shard calls run concurrently on the scatter pool.
        """
        self._require_open()
        array = validate_queries(queries, self.dimensionality)
        k = validate_k(k, self.n_points)
        picks = []
        futures = []
        for member in self._shards:
            replica_index, server = self._pick_replica(member)
            picks.append((member, replica_index))
            futures.append(
                self._scatter_pool.submit(
                    server.query_batch, array, min(k, member.n_points)
                )
            )
        batches = []
        failure: tuple[int, BaseException] | None = None
        for (member, replica_index), sub in zip(picks, futures):
            try:
                batches.append(sub.result())
            except BaseException as error:
                if failure is None:
                    failure = (member.position, error)
            finally:
                self._release_replica(member, replica_index)
        if failure is not None:
            raise _shard_error(*failure)
        # Batch-shape and scan accounting happens at the members (and is
        # summed back by stats()); recording the merged batch here too
        # would double-count the same work.
        return merge_batches(batches, [m.ids for m in self._shards], k)

    # -- internals -----------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ServerClosedError("sharded server is closed")

    def _pick_replica(self, member: _ShardMember):
        """Least-loaded replica of ``member`` (ties rotate); bumps load."""
        with self._lock:
            offset = next(self._rr) % len(member.replicas)
            order = [
                (i + offset) % len(member.replicas)
                for i in range(len(member.replicas))
            ]
            choice = min(order, key=lambda i: member.loads[i])
            member.loads[choice] += 1
        return choice, member.replicas[choice]

    def _release_replica(self, member: _ShardMember, index: int) -> None:
        with self._lock:
            member.loads[index] -= 1

    def _on_shard_done(self, gather, member, replica_index, sub) -> None:
        self._release_replica(member, replica_index)
        if sub.cancelled():
            gather.shard_failed(
                member.position,
                ShardError(
                    f"shard {member.position} sub-request was cancelled"
                ),
            )
            return
        error = sub.exception()
        if error is not None:
            gather.shard_failed(member.position, error)
        else:
            gather.shard_done(member.position, sub.result())

    def _finish(self, future: Future, req_id: int, started: float) -> None:
        """Coordinator done-callback: drop from outstanding, ledger it."""
        with self._lock:
            self._outstanding.pop(req_id, None)
        if future.cancelled():
            self._stats.record_cancelled()
            return
        error = future.exception()
        if error is None:
            self._stats.record_request(time.perf_counter() - started)
        elif isinstance(error, DeadlineExceeded):
            self._stats.record_deadline_exceeded()
        elif isinstance(error, ServerOverloaded):
            self._stats.record_shed()
        else:
            self._stats.record_failure()

    def _close_members(self) -> None:
        for member in self._shards:
            for replica in member.replicas:
                try:
                    replica.close()
                except Exception:
                    pass

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Flush and stop every member server, fail leftovers loudly."""
        if self._closed:
            return
        self._closed = True
        # Members first: their close() flushes pending micro-batches and
        # resolves (or fails) every sub-request, which resolves the
        # coordinator futures through the gathers.
        self._close_members()
        self._scatter_pool.shutdown(wait=True)
        with self._lock:
            leftovers = list(self._outstanding.values())
            self._outstanding.clear()
        for future in leftovers:
            _fail(future, ServerClosedError("sharded server is closed"))
        self._reaper.close()

    def __enter__(self) -> "ShardedIndexServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
