"""Corpus partitioning: split one corpus into S shard snapshots.

A shard is an ordinary index snapshot built over a *subset* of the
corpus rows plus a sidecar array of the global row ids those local rows
came from.  Everything downstream (scatter-gather merge, identity
checks) leans on one invariant established here: **the shards are an
exact partition of the corpus** — every global row appears in exactly
one shard — so the union of per-shard candidate sets equals the
unsharded candidate set and a merged top-k can be bit-identical to the
single-index answer.

Two assignment methods:

* ``"round-robin"`` — row ``i`` goes to shard ``i % S``.  The
  structure-free baseline: shards are interleaved slices of the corpus,
  perfectly balanced, and build cost is a single modulo.
* ``"projected"`` — :class:`repro.clustering.ProjectedClustering`
  (PROCLUS-style, per "Subspace clustering of dimensionality-reduced
  data") assigns each row to one of S projected clusters, so a shard
  holds points that are close *in that cluster's subspace*.  Shard
  assignment then exercises the paper's dimensionality-reduction
  machinery instead of a blind split; locality-correlated traffic
  concentrates page-cache warmth per shard.  Cluster reseeding keeps
  every shard non-empty, and correctness never depends on the
  clustering quality — the merge is exact for *any* partition.

The per-shard indexes are built with the same constructor arguments (in
particular the same seed for the randomized LSH hash functions), which
is what makes even the *approximate* LSH index shard-exact: a point's
bucket keys depend only on the point and the shared hash functions, so
the union of per-shard probe candidates equals the unsharded probe set.
The corpus-dependent structure parameters — IGrid's equi-depth range
boundaries and the projection-screened index's fitted subspace — are
computed once over the **full** corpus and passed to every shard, so all
shards score (or bound) by the same function the unsharded index uses.
For projscreen the rule is also what keeps the *lower-bound screen*
globally consistent: each shard re-fitting PCA on its own subset would
still be exact (any orthonormal projection is a sound bound), but the
shards would prune against different subspaces than the unsharded
reference, so stats and scanned-bytes accounting would diverge from the
single-index run the benchmarks compare against.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.search.results import validate_corpus
from repro.search.snapshot import snapshot_kind

MANIFEST_SCHEMA = "repro-shard-manifest/v1"
MANIFEST_NAME = "shards.json"
PARTITION_METHODS = ("round-robin", "projected")


def partition_labels(
    points: np.ndarray,
    n_shards: int,
    *,
    method: str = "round-robin",
    seed: int = 0,
) -> np.ndarray:
    """Assign every corpus row to a shard; returns ``(n,)`` labels.

    Every shard is guaranteed non-empty (``n_shards`` may not exceed the
    corpus size; projected clustering reseeds empty clusters).
    """
    array = np.asarray(points, dtype=np.float64)
    n = array.shape[0]
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if n_shards > n:
        raise ValueError(
            f"n_shards={n_shards} exceeds the corpus size {n}; "
            "every shard must hold at least one point"
        )
    if method not in PARTITION_METHODS:
        raise ValueError(
            f"method must be one of {PARTITION_METHODS}, got {method!r}"
        )
    if method == "round-robin":
        return (np.arange(n, dtype=np.intp) % n_shards).astype(np.intp)
    from repro.clustering import ProjectedClustering

    if n_shards == 1:
        return np.zeros(n, dtype=np.intp)
    d = array.shape[1]
    clustering = ProjectedClustering(
        n_clusters=n_shards,
        n_dims=max(1, min(d, (d + 1) // 2)),
        seed=seed,
    )
    return clustering.fit(array).labels.astype(np.intp)


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a manifest: snapshot path, ids path, row count."""

    snapshot_path: str
    ids_path: str
    n_points: int

    def load_ids(self) -> np.ndarray:
        """The shard's global row ids, local row order (``(n_s,)`` intp)."""
        ids = np.load(self.ids_path)
        return np.asarray(ids, dtype=np.intp)


@dataclass(frozen=True)
class ShardManifest:
    """A validated description of one sharded corpus on disk.

    Attributes:
        path: the manifest file itself (anchor for relative paths).
        kind: index kind shared by every shard snapshot.
        method: partition method that produced the assignment.
        seed: partition seed (provenance; round-robin ignores it).
        n_points: total corpus rows across all shards.
        dimensionality: corpus dimensionality.
        shards: per-shard snapshot/ids locations.
    """

    path: str
    kind: str
    method: str
    seed: int
    n_points: int
    dimensionality: int
    shards: tuple[ShardSpec, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)


class ShardManifestError(ValueError):
    """A manifest file is missing, malformed, or inconsistent."""


def _check_partition(manifest: ShardManifest) -> None:
    """Verify the shards exactly partition ``range(n_points)``.

    A duplicate or missing global id silently corrupts every merged
    answer (a doubled candidate or a lost true neighbor), so coverage
    is re-checked whenever a manifest is loaded, not only at build time.
    """
    all_ids = np.concatenate(
        [spec.load_ids() for spec in manifest.shards]
    ) if manifest.shards else np.empty(0, dtype=np.intp)
    if all_ids.size != manifest.n_points or not np.array_equal(
        np.sort(all_ids), np.arange(manifest.n_points, dtype=np.intp)
    ):
        raise ShardManifestError(
            f"{manifest.path}: shard ids do not partition "
            f"range({manifest.n_points}) — every corpus row must appear "
            "in exactly one shard"
        )


def load_manifest(path: str, *, check_partition: bool = True) -> ShardManifest:
    """Read and validate a ``shards.json`` manifest.

    ``path`` may be the manifest file or the directory holding one.
    """
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(path) as handle:
            raw = json.load(handle)
    except (OSError, ValueError) as error:
        raise ShardManifestError(
            f"{path}: not a readable shard manifest ({error})"
        ) from error
    if raw.get("schema") != MANIFEST_SCHEMA:
        raise ShardManifestError(
            f"{path}: unexpected manifest schema {raw.get('schema')!r} "
            f"(this build reads {MANIFEST_SCHEMA!r})"
        )
    base = os.path.dirname(os.path.abspath(path))
    try:
        shards = tuple(
            ShardSpec(
                snapshot_path=os.path.join(base, entry["snapshot"]),
                ids_path=os.path.join(base, entry["ids"]),
                n_points=int(entry["n_points"]),
            )
            for entry in raw["shards"]
        )
        manifest = ShardManifest(
            path=path,
            kind=str(raw["kind"]),
            method=str(raw["method"]),
            seed=int(raw["seed"]),
            n_points=int(raw["n_points"]),
            dimensionality=int(raw["dimensionality"]),
            shards=shards,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ShardManifestError(
            f"{path}: malformed shard manifest ({error})"
        ) from error
    if not manifest.shards:
        raise ShardManifestError(f"{path}: manifest lists no shards")
    for spec in manifest.shards:
        found = snapshot_kind(spec.snapshot_path)  # raises SnapshotError
        if found != manifest.kind:
            raise ShardManifestError(
                f"{spec.snapshot_path}: shard holds a {found!r} index, "
                f"manifest says {manifest.kind!r}"
            )
    if check_partition:
        _check_partition(manifest)
    return manifest


def build_shards(
    points,
    out_dir: str,
    n_shards: int,
    *,
    kind: str = "bruteforce",
    method: str = "round-robin",
    seed: int = 0,
    index_factory=None,
    index_kwargs: dict | None = None,
) -> ShardManifest:
    """Partition ``points`` and write S shard snapshots plus a manifest.

    Args:
        points: ``(n, d)`` corpus (validated like an index constructor).
        out_dir: directory for ``shard-XXX.npz``, ``shard-XXX.ids.npy``
            and ``shards.json`` (created if absent).
        n_shards: number of shards (1 <= S <= n).
        kind: index kind to build per shard (one of the nine snapshot
            kinds) — ignored when ``index_factory`` is given.
        method: ``"round-robin"`` or ``"projected"`` (see module doc).
        seed: partition seed (projected clustering) — the per-shard
            *indexes* use their own constructor defaults so they match
            the unsharded reference index.
        index_factory: optional ``factory(sub_corpus) -> index`` override
            for custom index construction; must produce objects with
            ``save(path)``.
        index_kwargs: extra constructor keywords for the registry class
            (e.g. LSH table counts); must match the unsharded reference
            for bit-identity.

    Returns:
        The written (and re-validated) :class:`ShardManifest`.
    """
    corpus = validate_corpus(points)
    labels = partition_labels(
        corpus, n_shards, method=method, seed=seed
    )
    if index_factory is None:
        from repro.search.registry import index_class, shared_build_kwargs

        cls = index_class(kind)  # raises ValueError on unknown kinds
        # Corpus-derived structure (IGrid's equi-depth boundaries,
        # projscreen's screening basis) is declared per-kind in the
        # registry and fitted once over the FULL corpus here: each shard
        # re-deriving it from its own subset would score or bound by a
        # different function than the unsharded reference index.
        kwargs = shared_build_kwargs(kind, corpus, index_kwargs)
        factory = lambda rows: cls(rows, **kwargs)  # noqa: E731
    else:
        factory = index_factory
    os.makedirs(out_dir, exist_ok=True)
    entries = []
    written_kind = None
    for s in range(n_shards):
        ids = np.flatnonzero(labels == s).astype(np.intp)
        snapshot_name = f"shard-{s:03d}.npz"
        ids_name = f"shard-{s:03d}.ids.npy"
        snapshot_path = os.path.join(out_dir, snapshot_name)
        factory(corpus[ids]).save(snapshot_path)
        np.save(os.path.join(out_dir, ids_name), ids)
        written_kind = snapshot_kind(snapshot_path)
        entries.append(
            {
                "snapshot": snapshot_name,
                "ids": ids_name,
                "n_points": int(ids.size),
            }
        )
    manifest_path = os.path.join(out_dir, MANIFEST_NAME)
    payload = {
        "schema": MANIFEST_SCHEMA,
        "kind": written_kind,
        "method": method,
        "seed": int(seed),
        "n_shards": int(n_shards),
        "n_points": int(corpus.shape[0]),
        "dimensionality": int(corpus.shape[1]),
        "shards": entries,
    }
    with open(manifest_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return load_manifest(manifest_path)
