"""The dynamic coherence reducer: insert, query, refit when drifted.

Ties the streaming moments, the lazy incremental PCA, the coherence
ranking, and the drift monitor into the workflow a dynamic similarity
index needs:

* ``insert(rows)`` — O(d^2) per batch; the serving basis stays frozen.
* ``transform(rows)`` — project through the frozen basis.
* automatic refit: when the drift monitor reports that the frozen basis
  no longer captures the live variance, the basis and its coherence
  ranking are recomputed from a reservoir sample of the stream (the
  coherence statistic needs actual points, not just moments).
"""

from __future__ import annotations

import numpy as np

from repro.core.coherence import dataset_coherence
from repro.core.selection import select_by_coherence, select_by_eigenvalue
from repro.dynamic.drift import DriftMonitor
from repro.dynamic.incremental_pca import IncrementalPCA


class DynamicReducer:
    """Coherence-guided reduction over a growing corpus.

    Args:
        n_dims: stream dimensionality.
        n_components: components served per query.
        ordering: ``"coherence"`` or ``"eigenvalue"``.
        drift_threshold: relative captured-energy level below which the
            frozen basis is recomputed (see :class:`DriftMonitor`).
        reservoir_size: how many streamed rows to retain (uniform
            reservoir sample) for coherence scoring at refit time.
        seed: reservoir RNG seed.

    Attributes (after the first refit):
        components_: the frozen ``(d, k)`` serving basis.
        refit_count: how many times the basis has been recomputed.
    """

    def __init__(
        self,
        n_dims: int,
        n_components: int,
        ordering: str = "coherence",
        drift_threshold: float = 0.9,
        reservoir_size: int = 512,
        seed: int = 0,
    ) -> None:
        if n_components < 1 or n_components > n_dims:
            raise ValueError(
                f"n_components must lie in [1, {n_dims}], got {n_components}"
            )
        if ordering not in ("coherence", "eigenvalue"):
            raise ValueError(f"unknown ordering {ordering!r}")
        if reservoir_size < 2:
            raise ValueError("reservoir_size must be at least 2")
        self.n_components = n_components
        self.ordering = ordering
        self.drift_threshold = drift_threshold
        self.reservoir_size = reservoir_size

        self._pca = IncrementalPCA(n_dims)
        self._rng = np.random.default_rng(seed)
        self._reservoir = np.empty((0, n_dims))
        self._rows_seen = 0

        self.components_: np.ndarray | None = None
        self.selected_: np.ndarray | None = None
        self._monitor: DriftMonitor | None = None
        self.refit_count = 0

    @property
    def n_dims(self) -> int:
        return self._pca.n_dims

    @property
    def n_seen(self) -> int:
        return self._pca.n_seen

    # -- streaming ------------------------------------------------------

    def _reservoir_update(self, batch: np.ndarray) -> None:
        """Classic uniform reservoir sampling, batched."""
        for row in batch:
            self._rows_seen += 1
            if self._reservoir.shape[0] < self.reservoir_size:
                self._reservoir = np.vstack([self._reservoir, row])
            else:
                slot = int(self._rng.integers(0, self._rows_seen))
                if slot < self.reservoir_size:
                    self._reservoir[slot] = row

    def insert(self, rows) -> "DynamicReducer":
        """Stream rows in; refit the frozen basis if drift demands it."""
        batch = np.asarray(rows, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch.reshape(1, -1)
        self._pca.partial_fit(batch)
        self._reservoir_update(batch)

        if self.components_ is None:
            if self.n_seen >= max(2, self.n_components):
                self._refit()
        elif self._monitor is not None and self._monitor.should_refit(
            self._pca.covariance()
        ):
            self._refit()
        return self

    def _refit(self) -> None:
        decomposition = self._pca.decomposition
        eigenvalues = decomposition.eigenvalues
        k = min(self.n_components, eigenvalues.size)
        if self.ordering == "eigenvalue":
            selected = select_by_eigenvalue(eigenvalues, k)
        else:
            centered = self._reservoir - self._pca.mean
            probabilities = dataset_coherence(
                centered, decomposition.eigenvectors
            )
            selected = select_by_coherence(
                probabilities, k, tie_break=eigenvalues
            )
        self.selected_ = selected
        self.components_ = decomposition.basis(selected)
        self._monitor = DriftMonitor(
            self.components_,
            self._pca.covariance(),
            threshold=self.drift_threshold,
        )
        self.refit_count += 1

    # -- serving --------------------------------------------------------

    def transform(self, rows) -> np.ndarray:
        """Project rows through the frozen serving basis."""
        if self.components_ is None:
            raise RuntimeError(
                "no basis yet; insert at least n_components rows first"
            )
        array = np.asarray(rows, dtype=np.float64)
        single = array.ndim == 1
        if single:
            array = array.reshape(1, -1)
        if array.shape[1] != self.n_dims:
            raise ValueError(
                f"expected {self.n_dims} columns, got {array.shape[1]}"
            )
        projected = (array - self._pca.mean) @ self.components_
        return projected[0] if single else projected

    def drift_level(self) -> float:
        """Current relative captured-energy ratio (1.0 = no drift)."""
        if self._monitor is None:
            raise RuntimeError("no basis yet; nothing to measure drift against")
        return self._monitor.relative_capture(self._pca.covariance())
