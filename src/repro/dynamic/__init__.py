"""Dynamic-database support.

The paper positions itself against Ravi Kanth, Agrawal & Singh (SIGMOD
1998), "Dimensionality Reduction for Similarity Search in Dynamic
Databases": a production similarity index cannot refit PCA from scratch
on every insert.  This package provides the machinery that scenario
needs —

* :class:`IncrementalMoments` — exact streaming mean/covariance
  (Welford/Chan parallel updates), insert one row or a batch;
* :class:`IncrementalPCA` — an updatable PCA view over those moments,
  re-diagonalizing lazily;
* :class:`DriftMonitor` — detects when the incoming distribution has
  rotated away from the fitted subspace enough that the retained basis
  (and its coherence ranking) should be recomputed;
* :class:`DynamicReducer` — glues the three behind the familiar
  fit/transform interface with an automatic refit policy.
"""

from repro.dynamic.moments import IncrementalMoments
from repro.dynamic.incremental_pca import IncrementalPCA
from repro.dynamic.drift import DriftMonitor
from repro.dynamic.reducer import DynamicReducer
from repro.dynamic.pipeline import DynamicSimilarityPipeline

__all__ = [
    "DriftMonitor",
    "DynamicReducer",
    "DynamicSimilarityPipeline",
    "IncrementalMoments",
    "IncrementalPCA",
]
