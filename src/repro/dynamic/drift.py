"""Subspace drift detection for dynamic reduction.

A dynamic index keeps serving queries through a *frozen* reduced basis
while inserts stream in.  The monitor quantifies how far the live
distribution has rotated away from that basis: the **captured-energy
ratio** — the fraction of the current total variance that still lies
inside the frozen subspace, relative to the fraction it captured when it
was frozen.  When the ratio decays below a threshold, the basis (and its
coherence ranking) should be recomputed.
"""

from __future__ import annotations

import numpy as np


class DriftMonitor:
    """Tracks how well a frozen basis captures the evolving covariance.

    Args:
        basis: ``(d, k)`` orthonormal basis frozen at fit time.
        reference_covariance: covariance matrix at freeze time.
        threshold: refit is signaled when the captured-energy ratio
            falls below this fraction of the freeze-time ratio.
    """

    def __init__(self, basis, reference_covariance, threshold: float = 0.9) -> None:
        self.basis = np.asarray(basis, dtype=np.float64)
        if self.basis.ndim != 2:
            raise ValueError("basis must be 2-d (d, k)")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must lie in (0, 1], got {threshold}")
        self.threshold = threshold
        self._reference_ratio = self.captured_energy_ratio(reference_covariance)
        if self._reference_ratio <= 0.0:
            raise ValueError(
                "the frozen basis captures no energy of the reference "
                "covariance; refusing to monitor a dead subspace"
            )

    @property
    def reference_ratio(self) -> float:
        return self._reference_ratio

    def captured_energy_ratio(self, covariance) -> float:
        """Fraction of ``trace(C)`` lying inside the frozen subspace."""
        matrix = np.asarray(covariance, dtype=np.float64)
        d = self.basis.shape[0]
        if matrix.shape != (d, d):
            raise ValueError(
                f"covariance must have shape ({d}, {d}), got {matrix.shape}"
            )
        total = float(np.trace(matrix))
        if total <= 0.0:
            return 0.0
        captured = float(np.trace(self.basis.T @ matrix @ self.basis))
        return captured / total

    def relative_capture(self, covariance) -> float:
        """Current captured ratio relative to the freeze-time ratio."""
        return self.captured_energy_ratio(covariance) / self._reference_ratio

    def should_refit(self, covariance) -> bool:
        """True when the basis has drifted past the threshold."""
        return self.relative_capture(covariance) < self.threshold
