"""Exact streaming first and second moments.

Chan et al.'s parallel/pairwise update of the mean vector and the
centered sum-of-squares matrix: numerically stable, exact up to float
rounding, O(d^2) per batch regardless of batch size.  This is the state
a dynamic similarity index must maintain so PCA can be refreshed without
ever rescanning the corpus.
"""

from __future__ import annotations

import numpy as np


class IncrementalMoments:
    """Streaming mean and covariance of row vectors.

    Args:
        n_dims: dimensionality of the stream.

    The covariance returned is the population covariance (ddof=0),
    matching :func:`repro.linalg.covariance_matrix`.
    """

    def __init__(self, n_dims: int) -> None:
        if n_dims < 1:
            raise ValueError(f"n_dims must be positive, got {n_dims}")
        self.n_dims = n_dims
        self._count = 0
        self._mean = np.zeros(n_dims)
        # Centered sum of squares: sum_i (x_i - mean)(x_i - mean)^T.
        self._m2 = np.zeros((n_dims, n_dims))

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> np.ndarray:
        return self._mean.copy()

    def update(self, rows) -> "IncrementalMoments":
        """Fold one row or a batch of rows into the moments."""
        batch = np.asarray(rows, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch.reshape(1, -1)
        if batch.ndim != 2 or batch.shape[1] != self.n_dims:
            raise ValueError(
                f"rows must have {self.n_dims} columns, got shape {batch.shape}"
            )
        if not np.all(np.isfinite(batch)):
            raise ValueError("rows must be finite")
        if batch.shape[0] == 0:
            return self

        m = batch.shape[0]
        batch_mean = batch.mean(axis=0)
        centered = batch - batch_mean
        batch_m2 = centered.T @ centered

        if self._count == 0:
            self._count = m
            self._mean = batch_mean
            self._m2 = batch_m2
            return self

        n = self._count
        delta = batch_mean - self._mean
        total = n + m
        self._mean = self._mean + delta * (m / total)
        self._m2 = self._m2 + batch_m2 + np.outer(delta, delta) * (n * m / total)
        self._count = total
        return self

    def covariance(self, ddof: int = 0) -> np.ndarray:
        """Current covariance matrix of everything seen so far."""
        if self._count <= ddof:
            raise ValueError(
                f"need more than ddof={ddof} rows, got {self._count}"
            )
        matrix = self._m2 / (self._count - ddof)
        return (matrix + matrix.T) / 2.0

    def variances(self, ddof: int = 0) -> np.ndarray:
        """Per-dimension variances (the covariance diagonal)."""
        return np.diag(self.covariance(ddof=ddof)).copy()

    def merge(self, other: "IncrementalMoments") -> "IncrementalMoments":
        """Fold another accumulator into this one (for sharded streams)."""
        if other.n_dims != self.n_dims:
            raise ValueError(
                f"dimensionality mismatch: {self.n_dims} vs {other.n_dims}"
            )
        if other._count == 0:
            return self
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean.copy()
            self._m2 = other._m2.copy()
            return self
        n, m = self._count, other._count
        delta = other._mean - self._mean
        total = n + m
        self._mean = self._mean + delta * (m / total)
        self._m2 = self._m2 + other._m2 + np.outer(delta, delta) * (n * m / total)
        self._count = total
        return self

    def downdate(self, rows) -> "IncrementalMoments":
        """Remove previously-folded rows from the moments (deletion).

        The exact inverse of :meth:`update` — a dynamic database deletes
        as well as inserts.  Numerically this is a *subtraction* of
        sums-of-squares, so after removing almost everything the
        remaining covariance carries the cancellation error of what was
        removed; refit from scratch when the corpus turns over many
        times.  Removing rows that were never inserted is undetectable
        by construction and will corrupt the state — callers own that
        invariant.

        Raises:
            ValueError: when removing more rows than were inserted.
        """
        batch = np.asarray(rows, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch.reshape(1, -1)
        if batch.ndim != 2 or batch.shape[1] != self.n_dims:
            raise ValueError(
                f"rows must have {self.n_dims} columns, got shape {batch.shape}"
            )
        if not np.all(np.isfinite(batch)):
            raise ValueError("rows must be finite")
        m = batch.shape[0]
        if m == 0:
            return self
        if m > self._count:
            raise ValueError(
                f"cannot remove {m} rows from {self._count} accumulated"
            )
        if m == self._count:
            self._count = 0
            self._mean = np.zeros(self.n_dims)
            self._m2 = np.zeros((self.n_dims, self.n_dims))
            return self

        batch_mean = batch.mean(axis=0)
        centered = batch - batch_mean
        batch_m2 = centered.T @ centered

        remaining = self._count - m
        # Invert the pairwise-merge identities: with T = current total,
        # B = batch, R = remaining:  mean_R = (T*mean_T - m*mean_B) / n_R
        # and M2_R = M2_T - M2_B - (n_R*m/T) * delta delta^T where
        # delta = mean_B - mean_R.
        new_mean = (self._count * self._mean - m * batch_mean) / remaining
        delta = batch_mean - new_mean
        self._m2 = (
            self._m2
            - batch_m2
            - np.outer(delta, delta) * (remaining * m / self._count)
        )
        # Cancellation can leave tiny negative diagonal entries; clamp
        # toward symmetry and PSD at the float-noise level.
        self._m2 = (self._m2 + self._m2.T) / 2.0
        self._mean = new_mean
        self._count = remaining
        return self
