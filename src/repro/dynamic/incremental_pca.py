"""Updatable PCA over streaming moments.

Maintains :class:`IncrementalMoments` and re-diagonalizes lazily: the
eigendecomposition is recomputed only when someone asks for it *and* new
rows have arrived since the last computation.  Inserting rows is O(d^2);
refreshing the basis is O(d^3), paid only on demand.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.moments import IncrementalMoments
from repro.linalg.eigen import EigenDecomposition, decompose


class IncrementalPCA:
    """PCA whose training set grows over time.

    Args:
        n_dims: stream dimensionality.
        scale: diagonalize the correlation matrix instead of the
            covariance matrix (the paper's recommended normalization).
            Zero-variance dimensions get correlation 0 with everything
            (they carry no information yet) rather than being dropped —
            a streaming index cannot re-shape its vectors mid-flight.
        eigen_method: ``"numpy"`` or ``"jacobi"``.
    """

    def __init__(
        self, n_dims: int, scale: bool = False, eigen_method: str = "numpy"
    ) -> None:
        self.scale = scale
        self.eigen_method = eigen_method
        self._moments = IncrementalMoments(n_dims)
        self._decomposition: EigenDecomposition | None = None
        self._stale = True

    @property
    def n_dims(self) -> int:
        return self._moments.n_dims

    @property
    def n_seen(self) -> int:
        return self._moments.count

    @property
    def mean(self) -> np.ndarray:
        """Mean of everything seen so far."""
        return self._moments.mean

    def covariance(self) -> np.ndarray:
        """Covariance of everything seen so far."""
        return self._moments.covariance()

    def partial_fit(self, rows) -> "IncrementalPCA":
        """Fold new rows into the model; the basis refreshes lazily."""
        self._moments.update(rows)
        self._stale = True
        return self

    def _working_matrix(self) -> np.ndarray:
        covariance = self._moments.covariance()
        if not self.scale:
            return covariance
        stds = np.sqrt(np.diag(covariance))
        safe = np.where(stds > 0.0, stds, 1.0)
        correlation = covariance / np.outer(safe, safe)
        # Zero-variance dimensions: no correlation with anything.
        dead = stds == 0.0
        if dead.any():
            correlation[dead, :] = 0.0
            correlation[:, dead] = 0.0
        return (correlation + correlation.T) / 2.0

    @property
    def decomposition(self) -> EigenDecomposition:
        """Current eigenpairs (recomputed if rows arrived since last call)."""
        if self.n_seen < 2:
            raise RuntimeError(
                "need at least two rows before a decomposition exists"
            )
        if self._stale or self._decomposition is None:
            self._decomposition = decompose(
                self._working_matrix(), method=self.eigen_method
            )
            self._stale = False
        return self._decomposition

    def transform(self, rows, component_indices=None) -> np.ndarray:
        """Project rows onto the current eigenbasis."""
        array = np.asarray(rows, dtype=np.float64)
        single = array.ndim == 1
        if single:
            array = array.reshape(1, -1)
        if array.shape[1] != self.n_dims:
            raise ValueError(
                f"expected {self.n_dims} columns, got {array.shape[1]}"
            )
        centered = array - self._moments.mean
        if self.scale:
            stds = np.sqrt(self._moments.variances())
            centered = centered / np.where(stds > 0.0, stds, 1.0)
        vectors = self.decomposition.eigenvectors
        if component_indices is not None:
            vectors = self.decomposition.basis(component_indices)
        projected = centered @ vectors
        return projected[0] if single else projected
