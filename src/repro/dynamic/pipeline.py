"""The dynamic similarity service: insert, delete, query — continuously.

Combines the pieces this package and :mod:`repro.search` provide into
the thing a dynamic database actually runs:

* inserts stream through :class:`DynamicReducer` (O(d²) moment updates,
  coherence-ranked basis, drift detection) and into a
  :class:`DynamicRTree` in the reduced space;
* when drift triggers a basis refit, every live point is re-projected
  and the index is rebuilt — queries before and after always search the
  basis that indexed them;
* deletions remove points from the index immediately (their statistical
  contribution stays in the moments until the next refit — exact
  moment downdating is available via
  :meth:`repro.dynamic.IncrementalMoments.downdate` for callers who keep
  their own moments, but a serving pipeline tolerates slightly stale
  statistics in exchange for O(log n) deletes).

Row handles returned by :meth:`insert` are stable across refits.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.reducer import DynamicReducer
from repro.search.dynamic_rtree import DynamicRTree
from repro.search.results import KnnResult, Neighbor


class DynamicSimilarityPipeline:
    """A continuously updatable reduced-space similarity index.

    Args:
        n_dims: dimensionality of the raw stream.
        n_components: reduced dimensionality served to queries.
        ordering: component selection rule for the reducer.
        drift_threshold: relative captured-energy level that triggers a
            basis refit (see :class:`repro.dynamic.DriftMonitor`).
        page_size: index node capacity.
        seed: reducer reservoir seed.
    """

    def __init__(
        self,
        n_dims: int,
        n_components: int,
        ordering: str = "coherence",
        drift_threshold: float = 0.9,
        page_size: int = 16,
        seed: int = 0,
    ) -> None:
        self._reducer = DynamicReducer(
            n_dims=n_dims,
            n_components=n_components,
            ordering=ordering,
            drift_threshold=drift_threshold,
            seed=seed,
        )
        self._page_size = page_size
        self._rows: list[np.ndarray | None] = []
        self._tree: DynamicRTree | None = None
        self._tree_handles: list[int] = []  # pipeline handle per tree index
        self._indexed_refit = -1

    @property
    def n_dims(self) -> int:
        return self._reducer.n_dims

    @property
    def n_live(self) -> int:
        """Points currently queryable."""
        return sum(1 for row in self._rows if row is not None)

    @property
    def refit_count(self) -> int:
        """How many times the serving basis has been recomputed."""
        return self._reducer.refit_count

    # -- mutation ---------------------------------------------------------

    def insert(self, rows) -> list[int]:
        """Insert raw rows; returns their stable handles."""
        batch = np.asarray(rows, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch.reshape(1, -1)
        if batch.shape[1] != self.n_dims:
            raise ValueError(
                f"expected {self.n_dims} columns, got {batch.shape[1]}"
            )
        handles = []
        for row in batch:
            handles.append(len(self._rows))
            self._rows.append(row.copy())
        self._reducer.insert(batch)

        if self._reducer.components_ is None:
            return handles  # not enough data for a basis yet
        if self._reducer.refit_count != self._indexed_refit:
            self._rebuild_index()
        else:
            reduced = self._reducer.transform(batch)
            for handle, vector in zip(handles, reduced):
                self._tree.insert(vector)
                self._tree_handles.append(handle)
        return handles

    def delete(self, handle: int) -> None:
        """Delete a previously inserted row by handle.

        Raises:
            KeyError: for unknown or already-deleted handles.
        """
        if not 0 <= handle < len(self._rows) or self._rows[handle] is None:
            raise KeyError(f"no live row with handle {handle}")
        self._rows[handle] = None
        if self._tree is not None:
            tree_index = self._tree_handles.index(handle)
            self._tree.delete(tree_index)

    def _rebuild_index(self) -> None:
        self._tree = DynamicRTree(
            self._reducer.n_components, page_size=self._page_size
        )
        self._tree_handles = []
        for handle, row in enumerate(self._rows):
            if row is None:
                continue
            self._tree.insert(self._reducer.transform(row))
            self._tree_handles.append(handle)
        self._indexed_refit = self._reducer.refit_count

    # -- queries ----------------------------------------------------------

    def query(self, query, k: int = 1) -> KnnResult:
        """Exact k-NN (in the current reduced space) over live rows.

        Neighbor indices are pipeline handles.
        """
        if self._tree is None or self.n_live == 0:
            raise RuntimeError(
                "pipeline has no queryable index yet; insert more rows"
            )
        # The reducer may have refit since the last insert batch; keep
        # the index aligned with the serving basis.
        if self._reducer.refit_count != self._indexed_refit:
            self._rebuild_index()
        vector = self._reducer.transform(np.atleast_2d(query))[0]
        result = self._tree.query(vector, k=min(k, self.n_live))
        neighbors = tuple(
            Neighbor(
                index=self._tree_handles[neighbor.index],
                distance=neighbor.distance,
            )
            for neighbor in result.neighbors
        )
        return KnnResult(neighbors=neighbors, stats=result.stats)

    def drift_level(self) -> float:
        """Current relative captured-energy of the serving basis."""
        return self._reducer.drift_level()
