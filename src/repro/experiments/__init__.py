"""First-class access to every experiment of the paper.

The benchmark harness, the CLI (``repro experiment …``), and library
users all reproduce the paper's tables and figures through this package:

* :func:`list_experiments` — every registered experiment with its paper
  artifact and description;
* :func:`run_experiment` — run one by id (``"fig03"`` … ``"fig15"``,
  ``"table1"``, ``"sec3"``), returning an :class:`ExperimentResult` with
  the formatted report and the structured numbers behind it.

Heavy intermediates (datasets, PCA fits, coherence analyses, sweeps) are
cached per ``(name, seed)`` in :mod:`repro.experiments.data`, so running
several experiments in one process shares the work.
"""

from repro.experiments.registry import (
    Experiment,
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
