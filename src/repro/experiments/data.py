"""Cached intermediates shared by the paper experiments.

Everything is keyed by ``(dataset name, seed)`` (plus the relevant
options), so the fifteen experiments that all need, say, the studentized
musk PCA compute it once per process.  Caches are unbounded but the key
space is tiny in practice (five datasets, two scalings, two orderings).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.coherence import CoherenceAnalysis, analyze_coherence
from repro.datasets.types import Dataset
from repro.datasets.uci_like import (
    arrhythmia_like,
    ionosphere_like,
    musk_like,
    noisy_dataset_a,
    noisy_dataset_b,
)
from repro.evaluation.summary import ReductionSummary, reduction_summary
from repro.evaluation.sweeps import SweepResult, accuracy_sweep
from repro.linalg.pca import PrincipalComponents, fit_pca

_DATASETS = {
    "musk": musk_like,
    "ionosphere": ionosphere_like,
    "arrhythmia": arrhythmia_like,
    "noisy-A": noisy_dataset_a,
    "noisy-B": noisy_dataset_b,
}


def dataset_names() -> tuple[str, ...]:
    """The evaluation datasets of the paper, by registry name."""
    return tuple(_DATASETS)


@lru_cache(maxsize=None)
def dataset(name: str, seed: int = 0) -> Dataset:
    """One of the paper's five evaluation datasets."""
    try:
        factory = _DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(_DATASETS)}"
        ) from None
    return factory(seed=seed)


@lru_cache(maxsize=None)
def pca(name: str, scale: bool, seed: int = 0) -> PrincipalComponents:
    """Fitted PCA for a named dataset."""
    return fit_pca(dataset(name, seed).features, scale=scale)


@lru_cache(maxsize=None)
def coherence(name: str, scale: bool, seed: int = 0) -> CoherenceAnalysis:
    """Coherence analysis of a named dataset under its PCA eigenbasis."""
    return analyze_coherence(
        pca(name, scale, seed), dataset(name, seed).features
    )


@lru_cache(maxsize=None)
def sweep(
    name: str, ordering: str, scale: bool, seed: int = 0
) -> SweepResult:
    """Accuracy-vs-dimensionality sweep for a named dataset."""
    return accuracy_sweep(dataset(name, seed), ordering=ordering, scale=scale)


@lru_cache(maxsize=None)
def table1_row(name: str, seed: int = 0) -> ReductionSummary:
    """One Table-1 summary row for a named dataset."""
    return reduction_summary(dataset(name, seed))
