"""Runners for the paper's tables and figures.

Each runner reproduces one artifact of the evaluation section on the
seeded stand-in datasets and returns an
:class:`repro.experiments.registry.ExperimentResult`: a formatted text
report (the same rows/series the paper plots) plus the structured
numbers the benchmark assertions and downstream callers use.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import (
    format_series,
    format_table,
    render_ascii_chart,
)
from repro.experiments import data
from repro.experiments.registry import ExperimentResult

_CONCEPT_COUNTS = {"musk": 13, "ionosphere": 10, "arrhythmia": 10}


def _subsample(values: np.ndarray, max_points: int = 24) -> np.ndarray:
    if values.size <= max_points:
        return values
    picks = np.unique(
        np.round(np.linspace(0, values.size - 1, max_points)).astype(int)
    )
    return values[picks]


def scatter_experiment(
    name: str, seed: int = 0, top: int | None = 20
) -> ExperimentResult:
    """Eigenvalue-magnitude vs coherence-probability scatter (Figs. 3/6/9)."""
    analysis = data.coherence(name, True, seed)
    count = analysis.n_components if top is None else min(top, analysis.n_components)
    rows = [
        (
            i,
            float(analysis.eigenvalues[i]),
            float(analysis.coherence_probabilities[i]),
        )
        for i in range(count)
    ]
    report = format_table(
        ["component", "eigenvalue", "coherence probability"],
        rows,
        title=(
            f"{name}-like (studentized): eigenvalue vs coherence scatter "
            f"— top {count} of {analysis.n_components} components"
        ),
    )
    tail = analysis.coherence_probabilities[count:]
    if tail.size:
        report += (
            f"\ncomponents {count}..{analysis.n_components - 1}: coherence "
            f"in [{tail.min():.4f}, {tail.max():.4f}] (noise tail)"
        )
    correlation = analysis.rank_correlation()
    report += f"\nSpearman rank correlation (eigenvalue vs coherence): {correlation:.4f}"
    return ExperimentResult(
        report=report,
        data={
            "analysis": analysis,
            "rank_correlation": correlation,
            "n_concepts": _CONCEPT_COUNTS.get(name),
        },
    )


def scaling_experiment(name: str, seed: int = 0) -> ExperimentResult:
    """Coherence probability per eigenvector, raw vs scaled (Figs. 4/7/10)."""
    raw = data.coherence(name, False, seed)
    scaled = data.coherence(name, True, seed)
    raw_curve = raw.coherence_probabilities[::-1]
    scaled_curve = scaled.coherence_probabilities[::-1]
    n = min(raw_curve.size, scaled_curve.size)
    grid = _subsample(np.arange(n))
    report = format_series(
        grid.tolist(),
        {
            "raw CP": [float(raw_curve[i]) for i in grid],
            "scaled CP": [float(scaled_curve[i]) for i in grid],
        },
        x_label="eigenvalue rank (increasing)",
        title=f"{name}-like: coherence probability per eigenvector, raw vs scaled",
    )
    k = _CONCEPT_COUNTS.get(name, 10)
    raw_top = float(raw.coherence_probabilities[:k].mean())
    scaled_top = float(scaled.coherence_probabilities[:k].mean())
    report += (
        f"\nmean CP of top-{k} components: raw {raw_top:.4f}, scaled "
        f"{scaled_top:.4f} (lift {scaled_top - raw_top:+.4f})"
    )
    return ExperimentResult(
        report=report,
        data={
            "raw": raw,
            "scaled": scaled,
            "raw_top_cp": raw_top,
            "scaled_top_cp": scaled_top,
            "lift": scaled_top - raw_top,
        },
    )


def quality_experiment(name: str, seed: int = 0) -> ExperimentResult:
    """Accuracy vs dimensions retained, scaled vs unscaled (Figs. 5/8/11)."""
    scaled = data.sweep(name, "eigenvalue", True, seed)
    raw = data.sweep(name, "eigenvalue", False, seed)
    limit = int(min(scaled.dims[-1], raw.dims[-1]))
    grid = _subsample(scaled.dims[scaled.dims <= limit])
    report = format_series(
        grid.tolist(),
        {
            "scaled accuracy": [scaled.accuracy_at(int(m)) for m in grid],
            "unscaled accuracy": [raw.accuracy_at(int(m)) for m in grid],
        },
        x_label="dimensions retained",
        title=f"{name}-like: prediction accuracy vs dimensionality",
    )
    chart_grid = [int(m) for m in scaled.dims if m <= limit]
    report += "\n" + render_ascii_chart(
        chart_grid,
        {
            "scaled": [scaled.accuracy_at(m) for m in chart_grid],
            "unscaled": [raw.accuracy_at(m) for m in chart_grid],
        },
        title="curve shapes",
    )
    s_dims, s_best = scaled.optimal()
    u_dims, u_best = raw.optimal()
    report += (
        f"\nscaled: optimum {s_best:.4f} at {s_dims} dims "
        f"(full-dim {scaled.full_dimensional_accuracy:.4f})"
        f"\nunscaled: optimum {u_best:.4f} at {u_dims} dims "
        f"(full-dim {raw.full_dimensional_accuracy:.4f})"
    )
    return ExperimentResult(
        report=report,
        data={
            "scaled": scaled,
            "raw": raw,
            "scaled_optimum": (s_dims, s_best),
            "raw_optimum": (u_dims, u_best),
        },
    )


def table1_experiment(seed: int = 0) -> ExperimentResult:
    """Table 1: full vs optimal vs 1%-thresholding, all three datasets."""
    summaries = [
        data.table1_row(name, seed)
        for name in ("musk", "ionosphere", "arrhythmia")
    ]
    rows = [
        (
            s.dataset_name,
            s.full_dimensionality,
            s.full_accuracy,
            s.optimal_accuracy,
            s.optimal_dimensionality,
            s.threshold_accuracy,
            s.threshold_dimensionality,
        )
        for s in summaries
    ]
    report = format_table(
        [
            "data set",
            "full dims",
            "full acc",
            "optimal acc",
            "optimal dims",
            "1%-thr acc",
            "1%-thr dims",
        ],
        rows,
        title="Table 1: advantages of aggressive dimensionality reduction",
    )
    report += "\n\n" + format_table(
        ["data set", "variance kept @opt", "precision vs full-dim NN @opt"],
        [
            (s.dataset_name, s.variance_retained_at_optimum, s.precision_at_optimum)
            for s in summaries
        ],
        title="supporting diagnostics (Section 4 narrative)",
    )
    return ExperimentResult(report=report, data={"summaries": summaries})


def noisy_scatter_experiment(
    name: str, seed: int = 0, top: int = 30
) -> ExperimentResult:
    """The poor-matching scatter on corrupted data (Figs. 12/14)."""
    analysis = data.coherence(name, False, seed)
    noisy = data.dataset(name, seed)
    n_noise = len(noisy.metadata["corrupted_dims"])
    count = min(top, analysis.n_components)
    rows = [
        (
            i,
            float(analysis.eigenvalues[i]),
            float(analysis.coherence_probabilities[i]),
        )
        for i in range(count)
    ]
    report = format_table(
        ["component", "eigenvalue", "coherence probability"],
        rows,
        title=(
            f"{noisy.name} (unscaled): eigenvalue vs coherence scatter "
            f"— top {count} of {analysis.n_components} components"
        ),
    )
    cp = analysis.coherence_probabilities
    best = np.argsort(cp)[::-1][:5]
    report += (
        f"\ntop-{n_noise} eigenvalue components (the planted noise): CP in "
        f"[{cp[:n_noise].min():.4f}, {cp[:n_noise].max():.4f}]"
        f"\nhighest-CP components: {best.tolist()} with CP "
        f"{np.round(cp[best], 4).tolist()}"
        f"\nSpearman rank correlation: {analysis.rank_correlation():.4f}"
    )
    return ExperimentResult(
        report=report,
        data={
            "analysis": analysis,
            "n_corrupted": n_noise,
            "best_cp_indices": best,
        },
    )


def noisy_ordering_experiment(name: str, seed: int = 0) -> ExperimentResult:
    """Eigenvalue vs coherence ordering on corrupted data (Figs. 13/15)."""
    coherent = data.sweep(name, "coherence", False, seed)
    classical = data.sweep(name, "eigenvalue", False, seed)
    noisy = data.dataset(name, seed)
    grid = _subsample(coherent.dims, max_points=30)
    report = format_series(
        grid.tolist(),
        {
            "coherence ordering": [coherent.accuracy_at(int(m)) for m in grid],
            "eigenvalue ordering": [classical.accuracy_at(int(m)) for m in grid],
        },
        x_label="dimensions retained",
        title=f"{noisy.name}: accuracy under the two orderings",
    )
    report += "\n" + render_ascii_chart(
        coherent.dims.tolist(),
        {
            "coherence": coherent.accuracies.tolist(),
            "eigenvalue": classical.accuracies.tolist(),
        },
        title="curve shapes",
    )
    c_dims, c_best = coherent.optimal()
    e_dims, e_best = classical.optimal()
    variance_kept = data.pca(name, False, seed).decomposition.energy_fraction(
        coherent.component_order[:c_dims]
    )
    retained = set(coherent.component_order[:c_dims].tolist())
    n_noise = len(noisy.metadata["corrupted_dims"])
    report += (
        f"\ncoherence ordering: optimum {c_best:.4f} at {c_dims} dims, "
        f"variance kept {variance_kept:.4f}, planted-noise components "
        f"excluded: {not retained & set(range(n_noise))}"
        f"\neigenvalue ordering: optimum {e_best:.4f} at {e_dims} dims "
        f"(full-dim {classical.full_dimensional_accuracy:.4f})"
    )
    return ExperimentResult(
        report=report,
        data={
            "coherent": coherent,
            "classical": classical,
            "coherent_optimum": (c_dims, c_best),
            "classical_optimum": (e_dims, e_best),
            "variance_kept_at_optimum": float(variance_kept),
            "retained_indices": retained,
            "n_corrupted": n_noise,
        },
    )


def uniform_experiment(seed: int = 0) -> ExperimentResult:
    """Section 3 / Equations 4-5: coherence of uniform data."""
    from repro.theory.uniform import (
        empirical_uniform_coherence,
        uniform_coherence_probability,
    )

    predicted = uniform_coherence_probability()
    measurements = []
    for d in (10, 50, 100):
        measured = empirical_uniform_coherence(
            n_samples=1000, n_dims=d, seed=seed
        )
        measurements.append((d, measured))
    rows = [
        (d, m["mean_probability"], predicted, m["probability_spread"])
        for d, m in measurements
    ]
    report = format_table(
        ["dimensionality", "measured P(D, e_i)", "Eq. 5 prediction", "spread"],
        rows,
        title="Section 3: coherence probability of uniform data (Eq. 4-5)",
    )
    return ExperimentResult(
        report=report,
        data={"measurements": measurements, "predicted": predicted},
    )
