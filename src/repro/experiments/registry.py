"""The experiment registry: one entry per paper table/figure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes:
        report: the formatted text the paper's artifact corresponds to
            (the same rows/series, printed).
        data: the structured objects and key numbers behind the report —
            benchmark assertions and programmatic callers consume these.
    """

    report: str
    data: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable paper experiment.

    Attributes:
        experiment_id: stable identifier (``"fig03"``, ``"table1"``, …).
        paper_artifact: which table/figure of the paper it regenerates.
        description: one-line summary of what it shows.
        runner: callable taking a ``seed`` and returning an
            :class:`ExperimentResult`.
    """

    experiment_id: str
    paper_artifact: str
    description: str
    runner: Callable[[int], ExperimentResult]

    def run(self, seed: int = 0) -> ExperimentResult:
        """Execute the experiment at the given seed."""
        return self.runner(seed)


def _build_registry() -> dict[str, Experiment]:
    # Imported here to avoid a circular import (paper.py imports
    # ExperimentResult from this module).
    from repro.experiments import paper

    entries = [
        Experiment(
            "fig03", "Figure 3",
            "eigenvalue vs coherence scatter, musk (studentized)",
            lambda seed: paper.scatter_experiment("musk", seed),
        ),
        Experiment(
            "fig04", "Figure 4",
            "coherence probability raw vs scaled, musk",
            lambda seed: paper.scaling_experiment("musk", seed),
        ),
        Experiment(
            "fig05", "Figure 5",
            "accuracy vs dimensionality, scaled vs unscaled, musk",
            lambda seed: paper.quality_experiment("musk", seed),
        ),
        Experiment(
            "fig06", "Figure 6",
            "eigenvalue vs coherence scatter, ionosphere (studentized)",
            lambda seed: paper.scatter_experiment("ionosphere", seed, top=None),
        ),
        Experiment(
            "fig07", "Figure 7",
            "coherence probability raw vs scaled, ionosphere",
            lambda seed: paper.scaling_experiment("ionosphere", seed),
        ),
        Experiment(
            "fig08", "Figure 8",
            "accuracy vs dimensionality, scaled vs unscaled, ionosphere",
            lambda seed: paper.quality_experiment("ionosphere", seed),
        ),
        Experiment(
            "fig09", "Figure 9",
            "eigenvalue vs coherence scatter, arrhythmia (studentized)",
            lambda seed: paper.scatter_experiment("arrhythmia", seed, top=25),
        ),
        Experiment(
            "fig10", "Figure 10",
            "coherence probability raw vs scaled, arrhythmia",
            lambda seed: paper.scaling_experiment("arrhythmia", seed),
        ),
        Experiment(
            "fig11", "Figure 11",
            "accuracy vs dimensionality, scaled vs unscaled, arrhythmia",
            lambda seed: paper.quality_experiment("arrhythmia", seed),
        ),
        Experiment(
            "table1", "Table 1",
            "full vs optimal vs 1%-thresholding accuracy, all datasets",
            paper.table1_experiment,
        ),
        Experiment(
            "fig12", "Figure 12",
            "poor eigenvalue/coherence matching, noisy data set A",
            lambda seed: paper.noisy_scatter_experiment("noisy-A", seed, top=34),
        ),
        Experiment(
            "fig13", "Figure 13",
            "eigenvalue vs coherence ordering, noisy data set A",
            lambda seed: paper.noisy_ordering_experiment("noisy-A", seed),
        ),
        Experiment(
            "fig14", "Figure 14",
            "poor eigenvalue/coherence matching, noisy data set B",
            lambda seed: paper.noisy_scatter_experiment("noisy-B", seed),
        ),
        Experiment(
            "fig15", "Figure 15",
            "eigenvalue vs coherence ordering, noisy data set B",
            lambda seed: paper.noisy_ordering_experiment("noisy-B", seed),
        ),
        Experiment(
            "sec3", "Equations 4-5",
            "uniform data: coherence factor 1, probability 0.6827 everywhere",
            paper.uniform_experiment,
        ),
    ]

    from repro.experiments import ablations

    entries += [
        Experiment(
            "abl-contrast", "Section 1.1 (Beyer et al.)",
            "relative contrast collapses with d; reduction restores it",
            ablations.contrast_experiment,
        ),
        Experiment(
            "abl-index-pruning", "Section 1.1",
            "index pruning vs dimensionality, before/after reduction",
            ablations.index_pruning_experiment,
        ),
        Experiment(
            "abl-stability", "Section 1.1",
            "adversarial query perturbation flips nearest into farthest",
            ablations.stability_experiment,
        ),
        Experiment(
            "abl-scaling", "Section 2.2",
            "covariance vs correlation PCA across per-dimension scale spreads",
            ablations.scaling_experiment,
        ),
        Experiment(
            "abl-k", "Section 4 protocol",
            "sensitivity of the feature-stripping protocol to k",
            ablations.k_sensitivity_experiment,
        ),
        Experiment(
            "abl-amplitude", "Section 4.1",
            "corruption amplitude sweep: where eigenvalue ordering loses",
            ablations.noise_amplitude_experiment,
        ),
        Experiment(
            "abl-eigensolver", "implementation",
            "from-scratch Jacobi vs LAPACK: agreement and cost",
            ablations.eigensolver_experiment,
        ),
        Experiment(
            "abl-projected", "Section 3.1",
            "projected clustering then per-cluster reduction",
            ablations.projected_clustering_experiment,
        ),
        Experiment(
            "abl-baselines", "comparators",
            "coherence vs eigenvalue PCA vs SVD vs random projection",
            ablations.baselines_experiment,
        ),
        Experiment(
            "abl-dynamic", "reference [17]",
            "streaming inserts + drift: frozen basis vs automatic refit",
            ablations.dynamic_experiment,
        ),
        Experiment(
            "abl-lsh", "approximation",
            "LSH in full dimensionality vs reduce-then-exact",
            ablations.lsh_experiment,
        ),
        Experiment(
            "abl-igrid", "reference [3]",
            "IGrid metric vs reduction on noisy data",
            ablations.igrid_experiment,
        ),
        Experiment(
            "abl-fractional", "reference [1]",
            "relative contrast by Minkowski exponent",
            ablations.fractional_metrics_experiment,
        ),
        Experiment(
            "abl-text", "motivation (LSI)",
            "raw TF-IDF vs latent semantic concepts on a topical corpus",
            ablations.text_lsi_experiment,
        ),
        Experiment(
            "abl-whitening", "distance correction",
            "whitening the retained concepts: a measured negative",
            ablations.whitening_experiment,
        ),
    ]
    return {entry.experiment_id: entry for entry in entries}


_REGISTRY: dict[str, Experiment] | None = None


def _registry() -> dict[str, Experiment]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def list_experiments() -> list[Experiment]:
    """Every registered experiment, in paper order."""
    return list(_registry().values())


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id.

    Raises:
        KeyError: with the list of valid ids, for unknown ids.
    """
    registry = _registry()
    if experiment_id not in registry:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(registry)}"
        )
    return registry[experiment_id]


def run_experiment(experiment_id: str, seed: int = 0) -> ExperimentResult:
    """Run one experiment by id and return its result."""
    return get_experiment(experiment_id).run(seed)
