"""Runners for the ablation experiments.

The paper's tables and figures live in :mod:`repro.experiments.paper`;
these runners cover the ablations DESIGN.md calls out — the design
choices behind the reproduction, the paper's Section 1.1 motivation, and
the sibling papers it cites ([1] fractional metrics, [2] ORCLUS, [3]
IGrid, [17] dynamic databases).  Each returns an
:class:`~repro.experiments.registry.ExperimentResult` with the same
report text the benchmark harness prints.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.random_projection import RandomProjectionReducer
from repro.baselines.svd_reduction import SVDReducer
from repro.clustering.projected import ProjectedClustering, per_cluster_reduction
from repro.core.coherence import UNIFORM_BASELINE_CP, analyze_coherence
from repro.core.reducer import CoherenceReducer
from repro.datasets.corruption import corrupt_with_uniform
from repro.datasets.synthetic import latent_concept_dataset
from repro.datasets.uci_like import _studentized_copy, ionosphere_like
from repro.distances.contrast import relative_contrast, relative_contrast_profile
from repro.dynamic.reducer import DynamicReducer
from repro.evaluation.feature_stripping import feature_stripping_accuracy
from repro.evaluation.reporting import format_table
from repro.evaluation.stability import nearest_neighbor_churn, rank_displacement
from repro.evaluation.sweeps import accuracy_sweep
from repro.experiments import data
from repro.experiments.registry import ExperimentResult
from repro.linalg.covariance import correlation_matrix
from repro.linalg.eigen import eigh_jacobi, eigh_numpy
from repro.linalg.pca import fit_pca
from repro.search.igrid import IGridIndex
from repro.search.kdtree import KdTreeIndex
from repro.search.lsh import LshIndex
from repro.search.rtree import RTreeIndex

# Batch fan-out for the evaluation helpers that answer query batches
# through an index (e.g. recall-vs-exact): os.cpu_count()-bounded via
# the shared executor, explicit here so the width is set end to end
# rather than implied by a helper's internals.
_BATCH_WORKERS = 4
from repro.search.vafile import VAFileIndex

_INDEX_FAMILIES = [
    ("kd-tree", KdTreeIndex),
    ("R-tree", RTreeIndex),
    ("VA-file", VAFileIndex),
]


def contrast_experiment(seed: int = 0) -> ExperimentResult:
    """§1.1 — relative contrast collapses with d; reduction restores it."""
    profile = relative_contrast_profile(
        [2, 5, 10, 20, 50, 100, 200], n_points=400, n_queries=15, seed=seed
    )

    dataset = data.dataset("musk", seed)
    rng = np.random.default_rng(seed)
    query_rows = rng.choice(dataset.n_samples, size=15, replace=False)

    def mean_contrast(features):
        values = []
        for row in query_rows:
            corpus = np.delete(features, row, axis=0)
            values.append(
                relative_contrast(corpus, features[row]).relative_contrast
            )
        return float(np.mean(values))

    full = mean_contrast(data.pca("musk", True, seed).transform(dataset.features))
    reducer = CoherenceReducer(n_components=13, ordering="coherence", scale=True)
    reduced = mean_contrast(reducer.fit_transform(dataset.features))

    report = format_table(
        ["dimensionality", "mean relative contrast"],
        profile,
        title="Relative contrast of uniform data vs dimensionality (Beyer et al.)",
    )
    report += (
        f"\n\nmusk-like, mean relative contrast over 15 queries:"
        f"\n  full dimensionality (166): {full:.4f}"
        f"\n  coherence-reduced (13):    {reduced:.4f}"
    )
    return ExperimentResult(
        report=report,
        data={"profile": profile, "musk_full": full, "musk_reduced": reduced},
    )


def _mean_pruning(index_cls, corpus, queries, k=3):
    index = index_cls(corpus)
    fractions = [
        index.query(q, k=k).stats.pruning_fraction(corpus.shape[0])
        for q in queries
    ]
    return float(np.mean(fractions))


def index_pruning_experiment(seed: int = 0) -> ExperimentResult:
    """§1.1 — index pruning vs dimensionality, and its restoration."""
    rng = np.random.default_rng(seed)
    uniform_rows = []
    for d in (2, 8, 32, 128):
        corpus = rng.uniform(size=(2000, d))
        queries = rng.uniform(size=(10, d))
        uniform_rows.append(
            tuple(
                [d]
                + [_mean_pruning(cls, corpus, queries) for _, cls in _INDEX_FAMILIES]
            )
        )

    dataset = data.dataset("musk", seed)
    query_rows = rng.choice(dataset.n_samples, size=10, replace=False)
    full = data.pca("musk", True, seed).transform(dataset.features)
    reduced = CoherenceReducer(
        n_components=13, ordering="coherence", scale=True
    ).fit_transform(dataset.features)
    musk_rows = []
    for label, features in (("full (166d)", full), ("reduced (13d)", reduced)):
        queries = features[query_rows]
        musk_rows.append(
            tuple(
                [label]
                + [_mean_pruning(cls, features, queries) for _, cls in _INDEX_FAMILIES]
            )
        )

    names = [name for name, _ in _INDEX_FAMILIES]
    report = format_table(
        ["dimensionality"] + [f"{n} pruned" for n in names],
        uniform_rows,
        title="Pruning fraction on uniform data (2000 points, k=3)",
    )
    report += "\n\n" + format_table(
        ["representation"] + [f"{n} pruned" for n in names],
        musk_rows,
        title="Pruning fraction on musk-like data, before/after reduction",
    )
    return ExperimentResult(
        report=report, data={"uniform_rows": uniform_rows, "musk_rows": musk_rows}
    )


def scaling_experiment(seed: int = 0) -> ExperimentResult:
    """§2.2 — covariance vs correlation PCA across scale spreads."""
    rows = []
    for spread in (0.0, 0.5, 1.0, 2.0, 3.0):
        dataset = latent_concept_dataset(
            n_samples=300, n_dims=30, n_concepts=6, clusters_per_class=4,
            class_separation=7.0, concept_std=1.2, noise_std=1.5,
            scale_spread=spread, seed=seed,
        )
        raw_cp = analyze_coherence(
            fit_pca(dataset.features), dataset.features
        ).coherence_probabilities[:6].mean()
        scaled_cp = analyze_coherence(
            fit_pca(dataset.features, scale=True), dataset.features
        ).coherence_probabilities[:6].mean()
        raw_acc = accuracy_sweep(dataset, ordering="eigenvalue", scale=False).optimal()[1]
        scaled_acc = accuracy_sweep(dataset, ordering="eigenvalue", scale=True).optimal()[1]
        rows.append((spread, float(raw_cp), float(scaled_cp), raw_acc, scaled_acc))
    report = format_table(
        [
            "scale spread (decades)", "raw concept CP", "scaled concept CP",
            "raw optimal acc", "scaled optimal acc",
        ],
        rows,
        title="Scaling ablation: covariance vs correlation PCA by scale spread",
    )
    return ExperimentResult(report=report, data={"rows": rows})


def k_sensitivity_experiment(seed: int = 0) -> ExperimentResult:
    """Is the protocol's k = 3 load-bearing?"""
    clean = data.dataset("ionosphere", seed)
    noisy = data.dataset("noisy-A", seed)
    rows = []
    for k in (1, 3, 5, 10):
        clean_sweep = accuracy_sweep(clean, ordering="eigenvalue", scale=True, k=k)
        opt_dims, opt_acc = clean_sweep.optimal()
        noisy_coherent = accuracy_sweep(noisy, ordering="coherence", scale=False, k=k)
        noisy_classical = accuracy_sweep(noisy, ordering="eigenvalue", scale=False, k=k)
        rows.append(
            (
                k, opt_dims, opt_acc, clean_sweep.full_dimensional_accuracy,
                noisy_coherent.optimal()[1], noisy_classical.optimal()[1],
            )
        )
    report = format_table(
        [
            "k", "iono optimal dims", "iono optimal acc", "iono full acc",
            "noisy-A coherence opt", "noisy-A eigenvalue opt",
        ],
        rows,
        title="k-sensitivity of the feature-stripping protocol",
    )
    return ExperimentResult(report=report, data={"rows": rows})


def noise_amplitude_experiment(seed: int = 0) -> ExperimentResult:
    """Where does the eigenvalue ordering start losing?"""
    base = _studentized_copy(ionosphere_like(seed=seed))
    rows = []
    for amplitude in (1.0, 4.0, 10.0, 30.0, 60.0):
        noisy = corrupt_with_uniform(base, n_dims=10, amplitude=amplitude, seed=seed)
        coherent = accuracy_sweep(noisy, ordering="coherence", scale=False)
        classical = accuracy_sweep(noisy, ordering="eigenvalue", scale=False)
        rows.append(
            (
                amplitude, amplitude**2 / 12.0,
                coherent.accuracy_at(10), classical.accuracy_at(10),
                coherent.optimal()[1], classical.optimal()[1],
            )
        )
    report = format_table(
        [
            "amplitude", "noise variance", "coherence acc@10",
            "eigenvalue acc@10", "coherence best", "eigenvalue best",
        ],
        rows,
        title="Corruption-amplitude ablation (ionosphere base, 10 of 34 dims)",
    )
    return ExperimentResult(report=report, data={"rows": rows})


def eigensolver_experiment(seed: int = 0) -> ExperimentResult:
    """Cyclic Jacobi vs LAPACK: agreement and cost."""
    matrix = correlation_matrix(data.dataset("ionosphere", seed).features)

    start = time.perf_counter()
    numpy_result = eigh_numpy(matrix)
    numpy_seconds = time.perf_counter() - start
    start = time.perf_counter()
    jacobi_result = eigh_jacobi(matrix)
    jacobi_seconds = time.perf_counter() - start

    spectrum_gap = float(
        np.max(np.abs(numpy_result.eigenvalues - jacobi_result.eigenvalues))
    )
    trace_gap = abs(numpy_result.total_variance - jacobi_result.total_variance)
    report = format_table(
        ["solver", "seconds", "max |eigenvalue gap|", "trace gap"],
        [
            ("numpy (LAPACK)", numpy_seconds, 0.0, 0.0),
            ("jacobi (from scratch)", jacobi_seconds, spectrum_gap, trace_gap),
        ],
        title="Eigensolver ablation on the ionosphere correlation matrix (34x34)",
    )
    return ExperimentResult(
        report=report,
        data={"spectrum_gap": spectrum_gap, "trace_gap": trace_gap},
    )


def projected_clustering_experiment(seed: int = 0) -> ExperimentResult:
    """§3.1 — decompose into projected clusters, then reduce per cluster."""
    first = latent_concept_dataset(
        220, 40, 4, clusters_per_class=3, class_separation=7.0,
        concept_std=1.2, noise_std=1.0, seed=seed, name="pop-1",
    )
    second = latent_concept_dataset(
        220, 40, 4, clusters_per_class=3, class_separation=7.0,
        concept_std=1.2, noise_std=1.0, seed=seed + 1, name="pop-2",
    )
    features = np.zeros((440, 80))
    features[:220, :40] = first.features
    features[:220, 40:] = np.random.default_rng(seed).normal(size=(220, 40))
    features[220:, 40:] = second.features
    features[220:, :40] = np.random.default_rng(seed + 1).normal(size=(220, 40))
    labels = np.concatenate([first.labels, second.labels])

    global_reduced = CoherenceReducer(
        n_components=4, ordering="coherence", scale=True
    ).fit_transform(features)
    global_accuracy = feature_stripping_accuracy(global_reduced, labels)

    clustering = ProjectedClustering(n_clusters=2, n_dims=20, seed=seed).fit(features)
    per_cluster = per_cluster_reduction(
        features, clustering, n_components=4, ordering="coherence", scale=True
    )
    accuracies, sizes = [], []
    for members, reducer in per_cluster:
        reduced = reducer.transform(features[members])
        accuracies.append(feature_stripping_accuracy(reduced, labels[members]))
        sizes.append(members.size)
    local_accuracy = float(np.average(accuracies, weights=sizes))

    report = format_table(
        ["strategy", "accuracy (k=3)"],
        [
            ("global coherence reduction (4 comps)", global_accuracy),
            ("projected clusters, then per-cluster reduction", local_accuracy),
        ],
        title="Section 3.1 extension: decompose before reducing",
    )
    report += f"\ncluster sizes found: {sizes}"
    return ExperimentResult(
        report=report,
        data={"global": global_accuracy, "local": local_accuracy, "sizes": sizes},
    )


def baselines_experiment(seed: int = 0) -> ExperimentResult:
    """Coherence vs eigenvalue PCA vs SVD vs random projection."""

    def score(reducer, dataset):
        return feature_stripping_accuracy(
            reducer.fit_transform(dataset.features), dataset.labels
        )

    rows = []
    for name, budget in (("ionosphere", 10), ("noisy-A", 4)):
        dataset = data.dataset(name, seed)
        scale = name == "ionosphere"
        rows.append(
            (
                name, budget,
                score(CoherenceReducer(n_components=budget, ordering="coherence", scale=scale), dataset),
                score(CoherenceReducer(n_components=budget, ordering="eigenvalue", scale=scale), dataset),
                score(SVDReducer(n_components=budget), dataset),
                score(RandomProjectionReducer(n_components=budget, seed=seed), dataset),
                feature_stripping_accuracy(dataset.features, dataset.labels),
            )
        )
    report = format_table(
        [
            "dataset", "budget", "coherence PCA", "eigenvalue PCA",
            "truncated SVD", "random proj", "full dim",
        ],
        rows,
        title="Baseline comparison at matched component budgets (k=3 accuracy)",
    )
    return ExperimentResult(report=report, data={"rows": rows})


def dynamic_experiment(seed: int = 0) -> ExperimentResult:
    """Ref [17] — streaming inserts, drift, automatic refit."""
    first = latent_concept_dataset(
        400, 24, 3, noise_std=0.8, seed=seed, name="segment-1"
    )
    second = latent_concept_dataset(
        400, 24, 3, noise_std=0.8, seed=seed + 100, name="segment-2"
    )
    permutation = np.random.default_rng(seed).permutation(24)
    second = second.with_features(second.features[:, permutation])

    static = CoherenceReducer(n_components=3, ordering="coherence")
    static.fit(first.features)
    static_quality = feature_stripping_accuracy(
        static.transform(second.features), second.labels
    )

    dynamic = DynamicReducer(
        n_dims=24, n_components=3, drift_threshold=0.9,
        reservoir_size=400, seed=seed,
    )
    for start in range(0, 400, 50):
        dynamic.insert(first.features[start : start + 50])
    refits_before = dynamic.refit_count
    for start in range(0, 400, 50):
        dynamic.insert(second.features[start : start + 50])
    dynamic_quality = feature_stripping_accuracy(
        dynamic.transform(second.features), second.labels
    )

    report = format_table(
        ["strategy", "post-drift accuracy"],
        [
            ("static basis (frozen on segment 1)", static_quality),
            ("dynamic reducer (drift-triggered refit)", dynamic_quality),
        ],
        title="Dynamic reduction under a mid-stream subspace change",
    )
    report += (
        f"\nrefits: {refits_before} during the stationary segment, "
        f"{dynamic.refit_count - refits_before} more after the drift "
        f"(total {dynamic.refit_count}); final drift level "
        f"{dynamic.drift_level():.3f}"
    )
    return ExperimentResult(
        report=report,
        data={
            "static": static_quality,
            "dynamic": dynamic_quality,
            "refits_before_drift": refits_before,
            "refits_total": dynamic.refit_count,
        },
    )


def lsh_experiment(seed: int = 0) -> ExperimentResult:
    """Approximate LSH in full d vs reduce-then-exact."""
    dataset = data.dataset("musk", seed)
    labels = dataset.labels
    rng = np.random.default_rng(seed)
    query_rows = rng.choice(dataset.n_samples, size=40, replace=False)
    full = data.pca("musk", True, seed).transform(dataset.features)

    def label_match(results):
        matches = total = 0
        for row, result in zip(query_rows, results):
            for neighbor in result.neighbors:
                if neighbor.index == row:
                    continue
                total += 1
                matches += int(labels[neighbor.index] == labels[row])
        return matches / max(1, total)

    scale = float(np.median(np.linalg.norm(full - full.mean(axis=0), axis=1)))
    lsh = LshIndex(full, n_tables=12, n_hashes=3, bucket_width=scale, seed=seed)
    lsh_results = [lsh.query(full[row], k=4) for row in query_rows]
    rows = [
        (
            "LSH on full 166d",
            float(np.mean([r.stats.points_scanned for r in lsh_results])),
            label_match(lsh_results),
            float(
                lsh.recall_against_exact(
                    full[query_rows], k=3, n_workers=_BATCH_WORKERS
                )
            ),
        )
    ]

    reduced = CoherenceReducer(
        n_components=13, ordering="coherence", scale=True
    ).fit_transform(dataset.features)
    tree = KdTreeIndex(reduced)
    tree_results = [tree.query(reduced[row], k=4) for row in query_rows]
    rows.append(
        (
            "exact kd-tree on coherence-reduced 13d",
            float(np.mean([r.stats.points_scanned for r in tree_results])),
            label_match(tree_results),
            1.0,
        )
    )
    report = format_table(
        [
            "strategy", "points scanned / query",
            "neighbor label match", "recall vs exact (own space)",
        ],
        rows,
        title="Approximate LSH vs aggressive reduction + exact search (musk)",
    )
    return ExperimentResult(report=report, data={"rows": rows})


def igrid_experiment(seed: int = 0) -> ExperimentResult:
    """Ref [3] — change the metric (IGrid) vs change the data (reduction)."""
    noisy = data.dataset("noisy-A", seed)

    index = IGridIndex(noisy.features, ranges_per_dim=4)
    rng = np.random.default_rng(seed)
    query_rows = rng.choice(noisy.n_samples, size=100, replace=False)
    matches = total = 0
    for row in query_rows:
        result = index.query(noisy.features[row], k=4)
        for neighbor in result.neighbors:
            if neighbor.index == row:
                continue
            total += 1
            matches += int(noisy.labels[neighbor.index] == noisy.labels[row])
    igrid_accuracy = matches / max(1, total)

    reduced = CoherenceReducer(
        n_components=4, ordering="coherence", scale=False
    ).fit_transform(noisy.features)
    rows = [
        (
            "Euclidean, raw 34d (10 noise dims)",
            feature_stripping_accuracy(noisy.features, noisy.labels),
        ),
        ("IGrid similarity, raw 34d", igrid_accuracy),
        (
            "Euclidean, coherence-reduced 4d",
            feature_stripping_accuracy(reduced, noisy.labels),
        ),
    ]
    report = format_table(
        ["method", "neighbor label accuracy (k=3)"],
        rows,
        title="Changing the metric (IGrid) vs changing the data (reduction), noisy A",
    )
    return ExperimentResult(report=report, data={"rows": rows})


def fractional_metrics_experiment(seed: int = 0) -> ExperimentResult:
    """Ref [1] — relative contrast by Minkowski exponent."""
    metrics = [
        ("L_0.5 (fractional)", "minkowski", 0.5),
        ("L_1 (manhattan)", "manhattan", None),
        ("L_2 (euclidean)", "euclidean", None),
        ("L_inf (chebyshev)", "chebyshev", None),
    ]
    rng = np.random.default_rng(seed)
    rows = []
    for d in (2, 10, 50, 200):
        corpus = rng.uniform(size=(300, d))
        queries = rng.uniform(size=(10, d))
        contrasts = []
        for _, metric, p in metrics:
            values = [
                relative_contrast(corpus, q, metric=metric, p=p).relative_contrast
                for q in queries
            ]
            contrasts.append(float(np.mean(values)))
        rows.append(tuple([d] + contrasts))
    report = format_table(
        ["dimensionality"] + [name for name, _, _ in metrics],
        rows,
        title="Relative contrast by Minkowski exponent (uniform data)",
    )
    return ExperimentResult(report=report, data={"rows": rows})


def text_lsi_experiment(seed: int = 0) -> ExperimentResult:
    """The motivating LSI observation on a synthetic topical corpus."""
    from repro.text.corpus import synthetic_topic_corpus
    from repro.text.lsi import LatentSemanticIndex
    from repro.text.vectorize import CountVectorizer, tfidf_weight

    corpus = synthetic_topic_corpus(n_documents=300, n_topics=5, seed=seed)
    vectorizer = CountVectorizer().fit(corpus.documents)
    tfidf, _ = tfidf_weight(vectorizer.transform(corpus.documents))
    rows = [
        (
            "raw TF-IDF",
            tfidf.shape[1],
            feature_stripping_accuracy(tfidf, corpus.labels, k=3),
        )
    ]
    coherence = None
    for k in (3, 5, 10, 25):
        lsi = LatentSemanticIndex(n_concepts=k).fit(corpus.documents)
        rows.append(
            (
                f"LSI (k={k})",
                k,
                feature_stripping_accuracy(lsi.document_vectors_, corpus.labels, k=3),
            )
        )
        if k == 5:
            coherence = lsi.concept_coherence()
    report = format_table(
        ["representation", "dimensionality", "topic prediction accuracy"],
        rows,
        title="Text retrieval: raw terms vs latent semantic concepts (5 topics)",
    )
    report += (
        f"\ncoherence probability of the 5 kept singular directions: "
        f"{np.round(coherence, 4).tolist()} "
        f"(uniform baseline {UNIFORM_BASELINE_CP:.4f})"
    )
    return ExperimentResult(
        report=report, data={"rows": rows, "coherence": coherence}
    )


def stability_experiment(seed: int = 0) -> ExperimentResult:
    """§1.1 — adversarial query instability and its repair."""
    rng = np.random.default_rng(seed)
    uniform_rows = []
    for d in (2, 10, 50, 200):
        cloud = rng.uniform(size=(500, d))
        uniform_rows.append(
            (
                d,
                rank_displacement(cloud, 0.5, direction="away", seed=seed),
                rank_displacement(cloud, 0.5, direction="random", seed=seed),
                nearest_neighbor_churn(cloud, 0.5, direction="away", seed=seed),
            )
        )

    dataset = data.dataset("musk", seed)
    full = data.pca("musk", True, seed).transform(dataset.features)
    reduced = CoherenceReducer(
        n_components=13, ordering="coherence", scale=True
    ).fit_transform(dataset.features)
    musk_rows = [
        (
            "full 166d",
            rank_displacement(full, 0.5, direction="away", seed=seed),
            nearest_neighbor_churn(full, 0.5, direction="away", seed=seed),
        ),
        (
            "coherence-reduced 13d",
            rank_displacement(reduced, 0.5, direction="away", seed=seed),
            nearest_neighbor_churn(reduced, 0.5, direction="away", seed=seed),
        ),
    ]
    report = format_table(
        [
            "dimensionality", "old-NN rank (away)",
            "old-NN rank (random)", "NN churn (away)",
        ],
        uniform_rows,
        title=(
            "Query instability on uniform data (perturbation = 0.5 x NN "
            "distance), Section 1.1"
        ),
    )
    report += "\n\n" + format_table(
        ["representation", "old-NN rank (away)", "NN churn (away)"],
        musk_rows,
        title="Query instability on musk-like data, before/after reduction",
    )
    return ExperimentResult(
        report=report,
        data={"uniform_rows": uniform_rows, "musk_rows": musk_rows},
    )


def whitening_experiment(seed: int = 0) -> ExperimentResult:
    """Should the retained concepts be whitened?  A measured negative."""
    cases = [
        ("musk", 13, True),
        ("ionosphere", 10, True),
        ("arrhythmia", 10, True),
        ("noisy-A", 4, False),
    ]
    rows = []
    for name, budget, scale in cases:
        dataset = data.dataset(name, seed)
        plain = feature_stripping_accuracy(
            CoherenceReducer(
                n_components=budget, ordering="coherence", scale=scale
            ).fit_transform(dataset.features),
            dataset.labels,
        )
        whitened = feature_stripping_accuracy(
            CoherenceReducer(
                n_components=budget, ordering="coherence", scale=scale,
                whiten=True,
            ).fit_transform(dataset.features),
            dataset.labels,
        )
        rows.append((name, budget, plain, whitened, whitened - plain))
    report = format_table(
        ["dataset", "budget", "plain accuracy", "whitened accuracy", "delta"],
        rows,
        title="Whitening the retained concepts: does equal weighting help?",
    )
    return ExperimentResult(report=report, data={"rows": rows})
