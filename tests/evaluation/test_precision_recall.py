"""Tests for precision/recall against full-dimensional neighbors."""

import numpy as np
import pytest

from repro.evaluation.precision_recall import (
    neighbor_overlap,
    neighbor_precision_recall,
)


class TestNeighborOverlap:
    def test_identical_representations_full_overlap(self, rng):
        features = rng.normal(size=(30, 4))
        overlaps = neighbor_overlap(features, features.copy(), k=5)
        assert np.all(overlaps == 5)

    def test_rotation_preserves_neighbors(self, rng):
        features = rng.normal(size=(30, 4))
        q, _ = np.linalg.qr(rng.normal(size=(4, 4)))
        overlaps = neighbor_overlap(features, features @ q, k=5)
        assert np.all(overlaps == 5)

    def test_unrelated_representations_low_overlap(self, rng):
        a = rng.normal(size=(100, 5))
        b = rng.normal(size=(100, 5))
        overlaps = neighbor_overlap(a, b, k=3)
        assert overlaps.mean() < 1.0

    def test_overlap_bounds(self, rng):
        a = rng.normal(size=(20, 3))
        b = a + 0.5 * rng.normal(size=(20, 3))
        overlaps = neighbor_overlap(a, b, k=4)
        assert np.all(overlaps >= 0)
        assert np.all(overlaps <= 4)

    def test_rejects_row_mismatch(self, rng):
        with pytest.raises(ValueError, match="same points"):
            neighbor_overlap(rng.normal(size=(5, 2)), rng.normal(size=(6, 2)), k=1)

    def test_rejects_bad_k(self, rng):
        features = rng.normal(size=(5, 2))
        with pytest.raises(ValueError, match="k must"):
            neighbor_overlap(features, features, k=5)

    def test_different_widths_allowed(self, rng):
        # The whole point: compare full-dim vs reduced representations.
        full = rng.normal(size=(25, 8))
        reduced = full[:, :2]
        overlaps = neighbor_overlap(full, reduced, k=3)
        assert overlaps.shape == (25,)


class TestNeighborPrecisionRecall:
    def test_equal_precision_and_recall(self, rng):
        a = rng.normal(size=(40, 4))
        b = a + 0.1 * rng.normal(size=(40, 4))
        precision, recall = neighbor_precision_recall(a, b, k=3)
        assert precision == recall

    def test_perfect_score(self, rng):
        features = rng.normal(size=(20, 3))
        precision, _ = neighbor_precision_recall(features, features, k=2)
        assert precision == 1.0

    def test_in_unit_interval(self, rng):
        a, b = rng.normal(size=(30, 4)), rng.normal(size=(30, 4))
        precision, _ = neighbor_precision_recall(a, b, k=3)
        assert 0.0 <= precision <= 1.0

    def test_aggressive_reduction_low_precision_better_quality(self):
        # The paper's headline contrast: the coherence-optimal reduction
        # keeps few of the original neighbors yet predicts labels better.
        from repro.core.reducer import CoherenceReducer
        from repro.datasets.uci_like import noisy_dataset_a
        from repro.evaluation.feature_stripping import feature_stripping_accuracy

        noisy = noisy_dataset_a(seed=0)
        reducer = CoherenceReducer(n_components=4, ordering="coherence")
        reduced = reducer.fit_transform(noisy.features)
        precision, _ = neighbor_precision_recall(noisy.features, reduced, k=3)
        assert precision < 0.5  # far from mirroring the original neighbors
        reduced_accuracy = feature_stripping_accuracy(reduced, noisy.labels)
        full_accuracy = feature_stripping_accuracy(noisy.features, noisy.labels)
        assert reduced_accuracy > full_accuracy + 0.1
