"""Tests for the feature-stripping quality protocol."""

import numpy as np
import pytest

from repro.distances.metrics import squared_euclidean_matrix
from repro.evaluation.feature_stripping import (
    feature_stripping_accuracy,
    knn_label_matches,
)


class TestKnnLabelMatches:
    def test_hand_worked_example(self):
        # Four points on a line: 0, 1, 10, 11 with labels a, a, b, b.
        features = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        squared = squared_euclidean_matrix(features)
        # k=1: every point's nearest neighbor shares its label.
        assert knn_label_matches(squared, labels, k=1) == 4
        # k=2: each point picks its partner plus one wrong-label point.
        assert knn_label_matches(squared, labels, k=2) == 4

    def test_self_excluded(self):
        features = np.array([[0.0], [100.0]])
        labels = np.array([0, 1])
        squared = squared_euclidean_matrix(features)
        # Each point's only neighbor is the other point: no matches.
        assert knn_label_matches(squared, labels, k=1) == 0

    def test_rejects_k_too_large(self):
        squared = squared_euclidean_matrix(np.zeros((3, 1)))
        with pytest.raises(ValueError, match="k must"):
            knn_label_matches(squared, np.zeros(3), k=3)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            knn_label_matches(np.zeros((2, 3)), np.zeros(2), k=1)

    def test_does_not_mutate_input(self):
        squared = squared_euclidean_matrix(np.arange(4.0).reshape(4, 1))
        before = squared.copy()
        knn_label_matches(squared, np.zeros(4, dtype=int), k=1)
        assert np.array_equal(squared, before)


class TestFeatureStrippingAccuracy:
    def test_perfectly_separated_classes(self):
        rng = np.random.default_rng(0)
        features = np.vstack(
            [rng.normal(0, 0.1, size=(30, 3)), rng.normal(100, 0.1, size=(30, 3))]
        )
        labels = np.array([0] * 30 + [1] * 30)
        assert feature_stripping_accuracy(features, labels, k=3) == 1.0

    def test_label_shuffled_data_near_chance(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(200, 5))
        labels = rng.integers(0, 2, size=200)
        accuracy = feature_stripping_accuracy(features, labels, k=3)
        assert 0.35 < accuracy < 0.65

    def test_value_is_pair_fraction(self):
        # 3 points: two of class 0 close together, one of class 1 nearby.
        features = np.array([[0.0], [0.5], [0.6]])
        labels = np.array([0, 0, 1])
        # k=1: matches are (0<-1), (1<-2 is closer: 0.1 < 0.5 so 1's NN
        # is 2, mismatch), (2's NN is 1, mismatch) -> 1 match of 3.
        accuracy = feature_stripping_accuracy(features, labels, k=1)
        assert accuracy == pytest.approx(1.0 / 3.0)

    def test_k_default_is_three(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(20, 2))
        labels = rng.integers(0, 2, size=20)
        assert feature_stripping_accuracy(features, labels) == pytest.approx(
            feature_stripping_accuracy(features, labels, k=3)
        )

    def test_accuracy_in_unit_interval(self, small_dataset):
        accuracy = feature_stripping_accuracy(
            small_dataset.features, small_dataset.labels
        )
        assert 0.0 <= accuracy <= 1.0

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError, match="labels"):
            feature_stripping_accuracy(np.zeros((4, 2)), np.zeros(3))

    def test_rejects_k_too_large(self):
        with pytest.raises(ValueError, match="k must"):
            feature_stripping_accuracy(np.zeros((4, 2)), np.zeros(4), k=4)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError, match="two points"):
            feature_stripping_accuracy(np.zeros((1, 2)), np.zeros(1), k=1)

    def test_invariant_to_rotation(self, rng, small_dataset):
        # Euclidean k-NN is rotation-invariant; so is the accuracy.
        d = small_dataset.n_dims
        q, _ = np.linalg.qr(rng.normal(size=(d, d)))
        a = feature_stripping_accuracy(
            small_dataset.features, small_dataset.labels
        )
        b = feature_stripping_accuracy(
            small_dataset.features @ q, small_dataset.labels
        )
        assert a == pytest.approx(b)

    def test_higher_on_concept_space_than_noise(self, small_dataset):
        # Reducing to the planted concepts must beat adding pure noise.
        from repro.core.reducer import CoherenceReducer

        concepts = CoherenceReducer(n_components=4, scale=True).fit_transform(
            small_dataset.features
        )
        rng = np.random.default_rng(3)
        noisy = np.hstack(
            [concepts, rng.normal(size=(small_dataset.n_samples, 40)) * 3.0]
        )
        assert feature_stripping_accuracy(
            concepts, small_dataset.labels
        ) > feature_stripping_accuracy(noisy, small_dataset.labels)
