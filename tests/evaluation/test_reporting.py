"""Tests for the plain-text reporting helpers."""

import pytest

from repro.evaluation.reporting import (
    format_series,
    format_table,
    render_ascii_chart,
)


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert "1.2346" in lines[2]
        assert "bb" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["xxxxx", "y"], ["z", "wwwww"]])
        lines = text.splitlines()
        # All rows share the same width.
        assert len(lines[0]) == len(lines[2]) == len(lines[3])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="headers"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_multiple_series(self):
        text = format_series(
            [1, 2, 3],
            {"scaled": [0.1, 0.2, 0.3], "raw": [0.0, 0.1, 0.2]},
            x_label="dims",
        )
        lines = text.splitlines()
        assert "dims" in lines[0]
        assert "scaled" in lines[0]
        assert "raw" in lines[0]
        assert len(lines) == 2 + 3

    def test_rejects_misaligned_series(self):
        with pytest.raises(ValueError, match="values for"):
            format_series([1, 2], {"a": [0.1]})


class TestRenderAsciiChart:
    def test_contains_markers_and_legend(self):
        text = render_ascii_chart(
            [1, 2, 3, 4], {"accuracy": [0.1, 0.5, 0.9, 0.7]}, height=6, width=30
        )
        assert "*" in text
        assert "accuracy" in text

    def test_two_series_get_distinct_markers(self):
        text = render_ascii_chart(
            [1, 2], {"a": [0.0, 1.0], "b": [1.0, 0.0]}, height=5, width=20
        )
        assert "* = a" in text
        assert "o = b" in text

    def test_constant_series_does_not_crash(self):
        text = render_ascii_chart([1, 2, 3], {"flat": [0.5, 0.5, 0.5]})
        assert "flat" in text

    def test_single_point(self):
        text = render_ascii_chart([1], {"p": [0.3]})
        assert "p" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_ascii_chart([], {"a": []})
        with pytest.raises(ValueError):
            render_ascii_chart([1], {})

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError, match="aligned"):
            render_ascii_chart([1, 2], {"a": [1.0]})

    def test_title_line(self):
        text = render_ascii_chart([1, 2], {"a": [0.0, 1.0]}, title="Figure 5")
        assert text.splitlines()[0] == "Figure 5"
