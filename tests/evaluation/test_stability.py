"""Tests for the nearest-neighbor stability diagnostics."""

import numpy as np
import pytest

from repro.evaluation.stability import (
    nearest_neighbor_churn,
    rank_displacement,
)


class TestNearestNeighborChurn:
    def test_zero_epsilon_zero_churn(self, rng):
        corpus = rng.normal(size=(80, 5))
        assert nearest_neighbor_churn(corpus, epsilon=0.0, seed=0) == 0.0

    def test_churn_in_unit_interval(self, rng):
        corpus = rng.uniform(size=(100, 20))
        churn = nearest_neighbor_churn(corpus, epsilon=0.5, seed=0)
        assert 0.0 <= churn <= 1.0

    def test_adversarial_churn_grows_with_dimensionality(self, rng):
        low = nearest_neighbor_churn(
            rng.uniform(size=(300, 2)), epsilon=0.3, direction="away", seed=0
        )
        high = nearest_neighbor_churn(
            rng.uniform(size=(300, 100)), epsilon=0.3, direction="away", seed=0
        )
        assert high >= low

    def test_clusters_bound_the_damage(self, rng):
        # Tight, far-apart clusters: the exact top-k set may churn
        # (within a tight blob all members are near-equidistant), but
        # the old nearest neighbor stays *nearby in rank* — the query
        # cannot leave its cluster, unlike the uniform high-d case
        # where the old NN ends up near the far end of the ranking.
        centers = rng.normal(size=(5, 4)) * 100.0
        labels = rng.integers(0, 5, size=150)
        corpus = centers[labels] + rng.normal(size=(150, 4)) * 0.01
        displaced = rank_displacement(
            corpus, epsilon=0.5, direction="away", seed=0
        )
        # Bounded by (roughly) the cluster size fraction, not ~0.9.
        assert displaced < 0.25

    def test_direction_validated(self, rng):
        with pytest.raises(ValueError, match="direction"):
            nearest_neighbor_churn(
                rng.normal(size=(10, 2)), direction="toward"
            )

    def test_rejects_bad_epsilon(self, rng):
        with pytest.raises(ValueError, match="epsilon"):
            nearest_neighbor_churn(rng.normal(size=(10, 2)), epsilon=-1.0)

    def test_rejects_tiny_corpus(self):
        with pytest.raises(ValueError, match="3 corpus"):
            nearest_neighbor_churn(np.zeros((2, 2)))

    def test_deterministic(self, rng):
        corpus = rng.normal(size=(60, 6))
        assert nearest_neighbor_churn(corpus, seed=4) == nearest_neighbor_churn(
            corpus, seed=4
        )


class TestRankDisplacement:
    def test_zero_epsilon_zero_displacement(self, rng):
        corpus = rng.normal(size=(80, 5))
        assert rank_displacement(corpus, epsilon=0.0, seed=0) == 0.0

    def test_paper_claim_nearest_becomes_farthest(self, rng):
        # Section 1.1, verbatim: in high dimensionality the adversarial
        # perturbation pushes the old nearest neighbor toward the far
        # end of the ranking.
        corpus = rng.uniform(size=(400, 150))
        displaced = rank_displacement(
            corpus, epsilon=0.5, direction="away", seed=0
        )
        assert displaced > 0.4

    def test_random_direction_is_benign_in_high_d(self, rng):
        corpus = rng.uniform(size=(400, 150))
        displaced = rank_displacement(
            corpus, epsilon=0.5, direction="random", seed=0
        )
        assert displaced < 0.1

    def test_low_dimensionality_is_stable(self, rng):
        corpus = rng.uniform(size=(400, 2))
        displaced = rank_displacement(
            corpus, epsilon=0.5, direction="away", seed=0
        )
        assert displaced < 0.05

    def test_value_range(self, rng):
        corpus = rng.normal(size=(50, 10))
        value = rank_displacement(corpus, epsilon=1.0, seed=0)
        assert 0.0 <= value < 1.0

    def test_reduction_restores_stability(self):
        # The operational consequence: the coherence-reduced musk space
        # is far more stable than the full space.
        from repro.core.reducer import CoherenceReducer
        from repro.datasets.uci_like import musk_like
        from repro.linalg.pca import fit_pca

        data = musk_like(seed=0)
        full = fit_pca(data.features, scale=True).transform(data.features)
        reduced = CoherenceReducer(
            n_components=13, ordering="coherence", scale=True
        ).fit_transform(data.features)
        assert rank_displacement(reduced, 0.5, seed=0) < rank_displacement(
            full, 0.5, seed=0
        )
