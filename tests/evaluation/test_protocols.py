"""Tests for the extended evaluation protocols."""

import numpy as np
import pytest

from repro.core.reducer import CoherenceReducer
from repro.evaluation.feature_stripping import feature_stripping_accuracy
from repro.evaluation.protocols import (
    bootstrap_confidence_interval,
    holdout_accuracy,
    per_class_accuracy,
    train_query_split,
)


class TestTrainQuerySplit:
    def test_disjoint_and_complete(self):
        train, query = train_query_split(100, query_fraction=0.3, seed=0)
        assert not set(train.tolist()) & set(query.tolist())
        assert sorted(train.tolist() + query.tolist()) == list(range(100))

    def test_fraction_respected(self):
        train, query = train_query_split(200, query_fraction=0.25, seed=1)
        assert query.size == 50
        assert train.size == 150

    def test_deterministic(self):
        a = train_query_split(50, seed=3)
        b = train_query_split(50, seed=3)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_tiny_dataset_keeps_one_each(self):
        train, query = train_query_split(2, query_fraction=0.9, seed=0)
        assert train.size == 1
        assert query.size == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            train_query_split(1)
        with pytest.raises(ValueError):
            train_query_split(10, query_fraction=0.0)
        with pytest.raises(ValueError):
            train_query_split(10, query_fraction=1.0)


class TestHoldoutAccuracy:
    def test_separable_data_scores_high(self, small_dataset):
        reducer = CoherenceReducer(n_components=4, scale=True)
        accuracy = holdout_accuracy(reducer, small_dataset, seed=0)
        assert accuracy > 0.8

    def test_tracks_leave_one_out_roughly(self, ionosphere):
        reducer = CoherenceReducer(n_components=8, scale=True)
        held_out = holdout_accuracy(reducer, ionosphere, seed=0)
        loo = feature_stripping_accuracy(
            CoherenceReducer(n_components=8, scale=True).fit_transform(
                ionosphere.features
            ),
            ionosphere.labels,
        )
        assert abs(held_out - loo) < 0.12

    def test_works_with_baseline_reducers(self, small_dataset):
        from repro.baselines.random_projection import RandomProjectionReducer

        accuracy = holdout_accuracy(
            RandomProjectionReducer(n_components=4, seed=0), small_dataset
        )
        assert 0.0 <= accuracy <= 1.0

    def test_deterministic_given_seed(self, small_dataset):
        a = holdout_accuracy(
            CoherenceReducer(n_components=3), small_dataset, seed=5
        )
        b = holdout_accuracy(
            CoherenceReducer(n_components=3), small_dataset, seed=5
        )
        assert a == b


class TestPerClassAccuracy:
    def test_keys_are_the_classes(self, small_dataset):
        breakdown = per_class_accuracy(
            small_dataset.features, small_dataset.labels
        )
        assert set(breakdown) == set(
            np.unique(small_dataset.labels).tolist()
        )

    def test_values_in_unit_interval(self, small_dataset):
        breakdown = per_class_accuracy(
            small_dataset.features, small_dataset.labels
        )
        for value in breakdown.values():
            assert 0.0 <= value <= 1.0

    def test_weighted_mean_recovers_aggregate(self, small_dataset):
        breakdown = per_class_accuracy(
            small_dataset.features, small_dataset.labels, k=3
        )
        counts = small_dataset.class_counts()
        weighted = sum(
            breakdown[c] * counts[c] for c in breakdown
        ) / small_dataset.n_samples
        aggregate = feature_stripping_accuracy(
            small_dataset.features, small_dataset.labels, k=3
        )
        assert weighted == pytest.approx(aggregate, abs=1e-12)

    def test_detects_a_destroyed_minority_class(self, rng):
        # Majority class separable, minority buried inside it.
        majority = rng.normal(size=(90, 4))
        minority = rng.normal(size=(10, 4)) * 0.9  # overlapping
        features = np.vstack([majority, minority])
        labels = np.array([0] * 90 + [1] * 10)
        breakdown = per_class_accuracy(features, labels, k=3)
        assert breakdown[0] > breakdown[1]

    def test_rejects_bad_k(self, small_dataset):
        with pytest.raises(ValueError, match="k must"):
            per_class_accuracy(
                small_dataset.features,
                small_dataset.labels,
                k=small_dataset.n_samples,
            )


class TestBootstrapConfidenceInterval:
    def test_interval_contains_estimate(self, small_dataset):
        estimate, lower, upper = bootstrap_confidence_interval(
            small_dataset.features, small_dataset.labels, seed=0
        )
        assert lower <= estimate <= upper

    def test_estimate_matches_direct_accuracy(self, small_dataset):
        estimate, _, _ = bootstrap_confidence_interval(
            small_dataset.features, small_dataset.labels, k=3, seed=0
        )
        direct = feature_stripping_accuracy(
            small_dataset.features, small_dataset.labels, k=3
        )
        assert estimate == pytest.approx(direct, abs=1e-12)

    def test_higher_confidence_wider_interval(self, small_dataset):
        _, lo90, hi90 = bootstrap_confidence_interval(
            small_dataset.features, small_dataset.labels, confidence=0.9, seed=0
        )
        _, lo99, hi99 = bootstrap_confidence_interval(
            small_dataset.features, small_dataset.labels, confidence=0.99, seed=0
        )
        assert (hi99 - lo99) >= (hi90 - lo90)

    def test_deterministic_given_seed(self, small_dataset):
        a = bootstrap_confidence_interval(
            small_dataset.features, small_dataset.labels, seed=2
        )
        b = bootstrap_confidence_interval(
            small_dataset.features, small_dataset.labels, seed=2
        )
        assert a == b

    def test_rejects_bad_parameters(self, small_dataset):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(
                small_dataset.features, small_dataset.labels, confidence=1.0
            )
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(
                small_dataset.features, small_dataset.labels, n_resamples=0
            )
