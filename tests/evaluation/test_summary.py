"""Tests for the Table-1 reduction summary."""

import pytest

from repro.evaluation.summary import reduction_summary


class TestReductionSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        from repro.datasets.uci_like import ionosphere_like

        return reduction_summary(ionosphere_like(seed=0))

    def test_full_dimensionality(self, summary):
        assert summary.full_dimensionality == 34

    def test_optimal_beats_full(self, summary):
        assert summary.optimal_accuracy >= summary.full_accuracy

    def test_optimal_dimensionality_is_low(self, summary):
        # The headline of Table 1: the optimum sits far below full rank.
        assert summary.optimal_dimensionality < summary.full_dimensionality / 2

    def test_threshold_keeps_nearly_everything(self, summary):
        # 1%-thresholding is conservative: dimensionality close to full.
        assert summary.threshold_dimensionality > summary.optimal_dimensionality
        assert summary.threshold_accuracy <= summary.optimal_accuracy

    def test_threshold_accuracy_close_to_full(self, summary):
        assert summary.threshold_accuracy == pytest.approx(
            summary.full_accuracy, abs=0.05
        )

    def test_variance_discarded_at_optimum(self, summary):
        # Aggressive reduction throws away much of the variance.
        assert summary.variance_retained_at_optimum < 0.9

    def test_precision_at_optimum_is_low(self, summary):
        # ... and does not try to mirror the original neighbors.
        assert summary.precision_at_optimum < 0.8

    def test_sweep_attached(self, summary):
        assert summary.sweep.dataset_name == summary.dataset_name
        assert summary.sweep.accuracy_at(
            summary.optimal_dimensionality
        ) == pytest.approx(summary.optimal_accuracy)

    def test_coherence_ordering_variant(self):
        from repro.datasets.uci_like import ionosphere_like

        summary = reduction_summary(
            ionosphere_like(seed=0), ordering="coherence"
        )
        assert summary.optimal_accuracy >= summary.full_accuracy
        assert 0.0 <= summary.threshold_accuracy <= 1.0

    def test_small_dataset_runs(self, small_dataset):
        summary = reduction_summary(small_dataset, scale=False)
        assert summary.full_dimensionality == small_dataset.n_dims
        assert 1 <= summary.optimal_dimensionality <= small_dataset.n_dims
