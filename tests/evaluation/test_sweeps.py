"""Tests for the accuracy-vs-dimensionality sweeps."""

import numpy as np
import pytest

from repro.evaluation.feature_stripping import feature_stripping_accuracy
from repro.evaluation.sweeps import accuracy_sweep
from repro.linalg.pca import fit_pca


class TestAccuracySweep:
    def test_grid_defaults_to_every_dimensionality(self, small_dataset):
        sweep = accuracy_sweep(small_dataset)
        assert list(sweep.dims) == list(range(1, small_dataset.n_dims + 1))
        assert sweep.accuracies.shape == sweep.dims.shape

    def test_custom_grid(self, small_dataset):
        sweep = accuracy_sweep(small_dataset, dims=[1, 5, 20])
        assert list(sweep.dims) == [1, 5, 20]

    def test_grid_deduplicated_and_sorted(self, small_dataset):
        sweep = accuracy_sweep(small_dataset, dims=[5, 1, 5])
        assert list(sweep.dims) == [1, 5]

    def test_rejects_out_of_range_grid(self, small_dataset):
        with pytest.raises(ValueError, match="dims"):
            accuracy_sweep(small_dataset, dims=[0, 3])
        with pytest.raises(ValueError, match="dims"):
            accuracy_sweep(small_dataset, dims=[small_dataset.n_dims + 1])

    def test_rejects_unknown_ordering(self, small_dataset):
        with pytest.raises(ValueError, match="ordering"):
            accuracy_sweep(small_dataset, ordering="best")

    def test_incremental_accuracy_matches_direct_measurement(self, small_dataset):
        # The rank-1-update trick must give exactly the same numbers as
        # projecting to m components and measuring from scratch.
        sweep = accuracy_sweep(small_dataset, ordering="eigenvalue", scale=True)
        pca = fit_pca(small_dataset.features, scale=True)
        for m in (1, 4, 11, small_dataset.n_dims):
            reduced = pca.transform(
                small_dataset.features,
                component_indices=sweep.component_order[:m],
            )
            direct = feature_stripping_accuracy(reduced, small_dataset.labels)
            assert sweep.accuracy_at(m) == pytest.approx(direct, abs=1e-12)

    def test_coherence_order_matches_direct_measurement(self, small_dataset):
        sweep = accuracy_sweep(small_dataset, ordering="coherence", scale=False)
        pca = fit_pca(small_dataset.features, scale=False)
        m = 3
        reduced = pca.transform(
            small_dataset.features, component_indices=sweep.component_order[:m]
        )
        direct = feature_stripping_accuracy(reduced, small_dataset.labels)
        assert sweep.accuracy_at(m) == pytest.approx(direct, abs=1e-12)

    def test_full_dimensional_accuracy_equals_raw_accuracy(self, small_dataset):
        # Keeping every component is a rotation; accuracy must equal the
        # (centered) original data's accuracy.
        sweep = accuracy_sweep(small_dataset, scale=False)
        raw = feature_stripping_accuracy(
            small_dataset.features, small_dataset.labels
        )
        assert sweep.full_dimensional_accuracy == pytest.approx(raw, abs=1e-12)

    def test_optimal_returns_first_maximum(self):
        from dataclasses import replace

        sweep = accuracy_sweep(
            _tiny_dataset(), dims=[1, 2, 3], ordering="eigenvalue"
        )
        # Construct a plateau by hand to pin the first-maximum rule.
        rigged = replace(
            sweep,
            dims=np.array([1, 2, 3]),
            accuracies=np.array([0.5, 0.9, 0.9]),
        )
        assert rigged.optimal() == (2, 0.9)

    def test_accuracy_at_unmeasured_raises(self, small_dataset):
        sweep = accuracy_sweep(small_dataset, dims=[1, 5])
        with pytest.raises(ValueError, match="not measured"):
            sweep.accuracy_at(3)

    def test_metadata_fields(self, small_dataset):
        sweep = accuracy_sweep(small_dataset, ordering="coherence", scale=True)
        assert sweep.ordering == "coherence"
        assert sweep.scaled is True
        assert sweep.dataset_name == small_dataset.name
        assert sweep.component_order.size == small_dataset.n_dims

    def test_component_order_is_permutation(self, small_dataset):
        sweep = accuracy_sweep(small_dataset, ordering="coherence")
        assert sorted(sweep.component_order.tolist()) == list(
            range(small_dataset.n_dims)
        )

    def test_concept_count_suffices_on_planted_data(self, small_dataset):
        # With 4 planted concepts, retaining 4 scaled components should
        # already be within a whisker of the best the curve reaches.
        sweep = accuracy_sweep(small_dataset, ordering="eigenvalue", scale=True)
        _, best = sweep.optimal()
        assert sweep.accuracy_at(4) >= best - 0.05


def _tiny_dataset():
    from repro.datasets.synthetic import latent_concept_dataset

    return latent_concept_dataset(40, 3, 2, seed=0)
