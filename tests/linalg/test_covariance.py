"""Tests for repro.linalg.covariance."""

import numpy as np
import pytest

from repro.linalg.covariance import (
    center_columns,
    correlation_matrix,
    covariance_matrix,
    studentize,
)


class TestCenterColumns:
    def test_centered_has_zero_means(self, rng):
        data = rng.normal(loc=5.0, size=(50, 4))
        centered, means = center_columns(data)
        assert np.allclose(centered.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(means, data.mean(axis=0))

    def test_roundtrip(self, rng):
        data = rng.normal(size=(10, 3))
        centered, means = center_columns(data)
        assert np.allclose(centered + means, data)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            center_columns([1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            center_columns([[1.0, float("nan")]])


class TestStudentize:
    def test_unit_variance(self, rng):
        data = rng.normal(size=(100, 5)) * np.array([1, 10, 100, 0.1, 3])
        result = studentize(data)
        assert np.allclose(result.features.std(axis=0), 1.0)
        assert np.allclose(result.features.mean(axis=0), 0.0, atol=1e-12)

    def test_drops_constant_columns(self, rng):
        data = rng.normal(size=(30, 3))
        data[:, 1] = 7.0
        result = studentize(data)
        assert result.features.shape == (30, 2)
        assert list(result.kept_columns) == [0, 2]

    def test_all_constant_raises(self):
        with pytest.raises(ValueError, match="constant"):
            studentize(np.ones((10, 3)))

    def test_idempotent(self, rng):
        data = rng.normal(size=(40, 4)) * 100
        once = studentize(data).features
        twice = studentize(once).features
        assert np.allclose(once, twice, atol=1e-12)

    def test_apply_reproduces_training_transform(self, rng):
        data = rng.normal(loc=3.0, size=(25, 4)) * 5
        result = studentize(data)
        assert np.allclose(result.apply(data), result.features)

    def test_apply_single_row(self, rng):
        data = rng.normal(size=(25, 4))
        result = studentize(data)
        row = result.apply(data[3])
        assert row.shape == (1, 4)
        assert np.allclose(row[0], result.features[3])

    def test_apply_rejects_wrong_width(self, rng):
        result = studentize(rng.normal(size=(25, 4)))
        with pytest.raises(ValueError, match="columns"):
            result.apply(np.zeros((2, 3)))

    def test_needs_two_rows(self):
        with pytest.raises(ValueError, match="rows"):
            studentize(np.ones((1, 3)))

    def test_scale_invariance_of_output(self, rng):
        # Studentizing X and studentizing 1000*X give the same features.
        data = rng.normal(size=(60, 3))
        a = studentize(data).features
        b = studentize(data * 1000.0).features
        assert np.allclose(a, b, atol=1e-10)


class TestCovarianceMatrix:
    def test_known_two_dim(self):
        data = np.array([[0.0, 0.0], [2.0, 2.0]])
        cov = covariance_matrix(data)
        assert np.allclose(cov, [[1.0, 1.0], [1.0, 1.0]])

    def test_symmetry(self, rng):
        cov = covariance_matrix(rng.normal(size=(80, 6)))
        assert np.array_equal(cov, cov.T)

    def test_positive_semidefinite(self, rng):
        cov = covariance_matrix(rng.normal(size=(40, 8)))
        eigenvalues = np.linalg.eigvalsh(cov)
        assert np.all(eigenvalues > -1e-10)

    def test_trace_equals_mean_square_deviation(self, rng):
        # The paper's identity: trace(C) = mean squared distance from the
        # centroid (rotation-invariant).
        data = rng.normal(size=(70, 5))
        cov = covariance_matrix(data)
        centered = data - data.mean(axis=0)
        msd = np.mean(np.sum(np.square(centered), axis=1))
        assert np.trace(cov) == pytest.approx(msd)

    def test_trace_invariant_under_rotation(self, rng):
        data = rng.normal(size=(50, 4))
        q, _ = np.linalg.qr(rng.normal(size=(4, 4)))
        before = np.trace(covariance_matrix(data))
        after = np.trace(covariance_matrix(data @ q))
        assert before == pytest.approx(after)

    def test_ddof_one(self):
        data = np.array([[0.0], [2.0]])
        assert covariance_matrix(data, ddof=1)[0, 0] == pytest.approx(2.0)

    def test_matches_numpy_cov(self, rng):
        data = rng.normal(size=(30, 3))
        ours = covariance_matrix(data, ddof=1)
        theirs = np.cov(data, rowvar=False)
        assert np.allclose(ours, theirs)

    def test_rejects_single_row(self):
        with pytest.raises(ValueError):
            covariance_matrix([[1.0, 2.0]])


class TestCorrelationMatrix:
    def test_unit_diagonal(self, rng):
        corr = correlation_matrix(rng.normal(size=(60, 4)) * [1, 5, 50, 500])
        assert np.allclose(np.diag(corr), 1.0)

    def test_entries_in_range(self, rng):
        corr = correlation_matrix(rng.normal(size=(60, 4)))
        assert np.all(corr <= 1.0 + 1e-12)
        assert np.all(corr >= -1.0 - 1e-12)

    def test_perfectly_correlated_columns(self, rng):
        base = rng.normal(size=50)
        data = np.column_stack([base, 3.0 * base + 1.0])
        corr = correlation_matrix(data)
        assert corr[0, 1] == pytest.approx(1.0)

    def test_scale_invariance(self, rng):
        data = rng.normal(size=(50, 3))
        scaled = data * np.array([1.0, 100.0, 0.01])
        assert np.allclose(
            correlation_matrix(data), correlation_matrix(scaled), atol=1e-10
        )

    def test_drops_constant_columns(self, rng):
        data = rng.normal(size=(50, 3))
        data[:, 1] = 2.0
        corr = correlation_matrix(data)
        assert corr.shape == (2, 2)
