"""Tests for repro.linalg.projection."""

import numpy as np
import pytest

from repro.linalg.covariance import covariance_matrix
from repro.linalg.eigen import eigh_numpy
from repro.linalg.projection import (
    project,
    reconstruct,
    reconstruction_error,
    retained_energy_fraction,
)


class TestProject:
    def test_identity_basis(self, rng):
        data = rng.normal(size=(10, 4))
        assert np.allclose(project(data, np.eye(4)), data)

    def test_single_vector(self):
        basis = np.array([[1.0], [0.0]])
        assert project(np.array([3.0, 5.0]), basis) == pytest.approx([3.0])

    def test_matches_dot_products(self, rng):
        data = rng.normal(size=(6, 5))
        basis = np.linalg.qr(rng.normal(size=(5, 3)))[0]
        coordinates = project(data, basis)
        for i in range(6):
            for j in range(3):
                assert coordinates[i, j] == pytest.approx(
                    float(data[i] @ basis[:, j])
                )

    def test_rejects_dimension_mismatch(self, rng):
        with pytest.raises(ValueError, match="columns"):
            project(np.zeros((3, 4)), np.eye(5))

    def test_rejects_wide_basis(self):
        with pytest.raises(ValueError, match="more columns"):
            project(np.zeros((3, 2)), np.ones((2, 3)))


class TestReconstruct:
    def test_roundtrip_full_basis(self, rng):
        data = rng.normal(size=(8, 4))
        basis = np.linalg.qr(rng.normal(size=(4, 4)))[0]
        assert np.allclose(reconstruct(project(data, basis), basis), data)

    def test_partial_basis_is_orthogonal_projection(self, rng):
        data = rng.normal(size=(20, 5))
        basis = np.linalg.qr(rng.normal(size=(5, 2)))[0]
        approximation = reconstruct(project(data, basis), basis)
        residual = data - approximation
        # Residual orthogonal to the basis.
        assert np.allclose(residual @ basis, 0.0, atol=1e-10)

    def test_single_vector(self):
        basis = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        rebuilt = reconstruct(np.array([2.0, 3.0]), basis)
        assert np.allclose(rebuilt, [2.0, 3.0, 0.0])

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            reconstruct(np.zeros((2, 3)), np.eye(4)[:, :2])


class TestReconstructionError:
    def test_zero_for_full_basis(self, rng):
        data = rng.normal(size=(15, 4))
        basis = np.linalg.qr(rng.normal(size=(4, 4)))[0]
        assert reconstruction_error(data, basis) == pytest.approx(0.0, abs=1e-18)

    def test_equals_discarded_eigenvalues(self, rng):
        # The paper's identity: variance lost = sum of dropped eigenvalues.
        data = rng.normal(size=(200, 6)) @ np.diag([5, 4, 3, 2, 1, 0.5])
        centered = data - data.mean(axis=0)
        decomposition = eigh_numpy(covariance_matrix(data))
        k = 3
        basis = decomposition.eigenvectors[:, :k]
        error = reconstruction_error(centered, basis)
        assert error == pytest.approx(
            float(np.sum(decomposition.eigenvalues[k:])), rel=1e-9
        )


class TestRetainedEnergyFraction:
    def test_full_basis_keeps_everything(self, rng):
        data = rng.normal(size=(30, 4))
        data = data - data.mean(axis=0)
        basis = np.linalg.qr(rng.normal(size=(4, 4)))[0]
        assert retained_energy_fraction(data, basis) == pytest.approx(1.0)

    def test_eigenbasis_fraction_matches_eigenvalues(self, rng):
        data = rng.normal(size=(300, 5)) @ np.diag([4, 3, 2, 1, 0.5])
        centered = data - data.mean(axis=0)
        decomposition = eigh_numpy(covariance_matrix(data))
        basis = decomposition.eigenvectors[:, :2]
        expected = decomposition.energy_fraction([0, 1])
        assert retained_energy_fraction(centered, basis) == pytest.approx(
            expected, rel=1e-9
        )

    def test_zero_data(self):
        assert retained_energy_fraction(np.zeros((5, 3)), np.eye(3)[:, :1]) == 0.0

    def test_fraction_in_unit_interval(self, rng):
        data = rng.normal(size=(40, 6))
        data = data - data.mean(axis=0)
        basis = np.linalg.qr(rng.normal(size=(6, 3)))[0]
        fraction = retained_energy_fraction(data, basis)
        assert 0.0 <= fraction <= 1.0 + 1e-12
