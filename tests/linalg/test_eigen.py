"""Tests for repro.linalg.eigen — both eigensolvers."""

import numpy as np
import pytest

from repro.linalg.covariance import covariance_matrix
from repro.linalg.eigen import (
    EigenDecomposition,
    decompose,
    eigh_jacobi,
    eigh_numpy,
)


def _random_symmetric(rng, d):
    a = rng.normal(size=(d, d))
    return (a + a.T) / 2.0


@pytest.fixture(params=["numpy", "jacobi"])
def solver(request):
    return request.param


class TestSolvers:
    def test_identity(self, solver):
        result = decompose(np.eye(4), method=solver)
        assert np.allclose(result.eigenvalues, 1.0)

    def test_diagonal_matrix(self, solver):
        result = decompose(np.diag([3.0, 1.0, 2.0]), method=solver)
        assert np.allclose(result.eigenvalues, [3.0, 2.0, 1.0])

    def test_known_2x2(self, solver):
        # Eigenvalues of [[2, 1], [1, 2]] are 3 and 1.
        result = decompose([[2.0, 1.0], [1.0, 2.0]], method=solver)
        assert np.allclose(result.eigenvalues, [3.0, 1.0])
        # Leading eigenvector is (1, 1)/sqrt(2) up to sign.
        leading = result.eigenvectors[:, 0]
        assert abs(leading[0]) == pytest.approx(abs(leading[1]))

    def test_descending_order(self, solver, rng):
        result = decompose(_random_symmetric(rng, 8), method=solver)
        assert np.all(np.diff(result.eigenvalues) <= 1e-12)

    def test_eigen_equation(self, solver, rng):
        matrix = _random_symmetric(rng, 7)
        result = decompose(matrix, method=solver)
        for i in range(7):
            v = result.eigenvectors[:, i]
            assert np.allclose(
                matrix @ v, result.eigenvalues[i] * v, atol=1e-9
            )

    def test_orthonormal_eigenvectors(self, solver, rng):
        result = decompose(_random_symmetric(rng, 9), method=solver)
        gram = result.eigenvectors.T @ result.eigenvectors
        assert np.allclose(gram, np.eye(9), atol=1e-10)

    def test_trace_preserved(self, solver, rng):
        matrix = _random_symmetric(rng, 6)
        result = decompose(matrix, method=solver)
        assert np.trace(matrix) == pytest.approx(result.total_variance)

    def test_reconstruction(self, solver, rng):
        matrix = _random_symmetric(rng, 5)
        result = decompose(matrix, method=solver)
        rebuilt = (
            result.eigenvectors
            @ np.diag(result.eigenvalues)
            @ result.eigenvectors.T
        )
        assert np.allclose(rebuilt, matrix, atol=1e-9)

    def test_one_by_one(self, solver):
        result = decompose([[4.0]], method=solver)
        assert result.eigenvalues[0] == pytest.approx(4.0)

    def test_rejects_asymmetric(self, solver):
        with pytest.raises(ValueError, match="symmetric"):
            decompose([[1.0, 2.0], [0.0, 1.0]], method=solver)

    def test_rejects_nonsquare(self, solver):
        with pytest.raises(ValueError, match="square"):
            decompose(np.ones((2, 3)), method=solver)

    def test_rejects_nan(self, solver):
        with pytest.raises(ValueError, match="finite"):
            decompose([[float("nan"), 0.0], [0.0, 1.0]], method=solver)


class TestJacobiVsNumpy:
    def test_eigenvalues_agree(self, rng):
        for d in (2, 5, 12, 25):
            matrix = _random_symmetric(rng, d)
            ours = eigh_jacobi(matrix)
            reference = eigh_numpy(matrix)
            assert np.allclose(
                ours.eigenvalues, reference.eigenvalues, atol=1e-9
            )

    def test_eigenvalues_agree_on_covariance(self, rng):
        cov = covariance_matrix(rng.normal(size=(100, 15)))
        assert np.allclose(
            eigh_jacobi(cov).eigenvalues,
            eigh_numpy(cov).eigenvalues,
            atol=1e-10,
        )

    def test_subspaces_agree(self, rng):
        # Eigenvectors can differ by sign (or rotation within degenerate
        # blocks); compare the projectors onto the top-3 subspace of a
        # matrix with well-separated eigenvalues.
        basis, _ = np.linalg.qr(rng.normal(size=(6, 6)))
        matrix = basis @ np.diag([10.0, 7.0, 5.0, 1.0, 0.5, 0.1]) @ basis.T
        matrix = (matrix + matrix.T) / 2.0
        ours = eigh_jacobi(matrix).eigenvectors[:, :3]
        reference = eigh_numpy(matrix).eigenvectors[:, :3]
        assert np.allclose(ours @ ours.T, reference @ reference.T, atol=1e-8)

    def test_jacobi_unconverged_raises(self):
        with pytest.raises(RuntimeError, match="converge"):
            eigh_jacobi(np.eye(3) + 0.5, max_sweeps=0)


class TestEigenDecomposition:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="descending"):
            EigenDecomposition(
                eigenvalues=np.array([1.0, 2.0]), eigenvectors=np.eye(2)
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="square"):
            EigenDecomposition(
                eigenvalues=np.array([2.0, 1.0]), eigenvectors=np.eye(3)
            )

    def test_energy_fraction(self):
        decomposition = EigenDecomposition(
            eigenvalues=np.array([3.0, 2.0, 1.0]), eigenvectors=np.eye(3)
        )
        assert decomposition.energy_fraction([0]) == pytest.approx(0.5)
        assert decomposition.energy_fraction([0, 1, 2]) == pytest.approx(1.0)
        assert decomposition.energy_fraction([2]) == pytest.approx(1.0 / 6.0)

    def test_energy_fraction_zero_matrix(self):
        decomposition = EigenDecomposition(
            eigenvalues=np.zeros(2), eigenvectors=np.eye(2)
        )
        assert decomposition.energy_fraction([0]) == 0.0

    def test_basis_selects_columns(self):
        decomposition = EigenDecomposition(
            eigenvalues=np.array([2.0, 1.0]), eigenvectors=np.eye(2)
        )
        basis = decomposition.basis([1])
        assert basis.shape == (2, 1)
        assert basis[1, 0] == 1.0

    def test_basis_rejects_out_of_range(self):
        decomposition = EigenDecomposition(
            eigenvalues=np.array([2.0, 1.0]), eigenvectors=np.eye(2)
        )
        with pytest.raises(ValueError):
            decomposition.basis([2])
        with pytest.raises(ValueError):
            decomposition.basis([])

    def test_dimensionality(self):
        decomposition = EigenDecomposition(
            eigenvalues=np.array([2.0, 1.0]), eigenvectors=np.eye(2)
        )
        assert decomposition.dimensionality == 2


def test_decompose_unknown_method():
    with pytest.raises(ValueError, match="unknown eigensolver"):
        decompose(np.eye(2), method="magic")
