"""Tests for repro.linalg.pca."""

import numpy as np
import pytest

from repro.linalg.pca import fit_pca


class TestFitPca:
    def test_eigenvalues_descending(self, rng):
        pca = fit_pca(rng.normal(size=(60, 5)))
        assert np.all(np.diff(pca.decomposition.eigenvalues) <= 1e-12)

    def test_eigenvalue_is_projected_variance(self, rng):
        # The paper: the eigenvalue of e_i equals the variance of the data
        # projected onto e_i.
        data = rng.normal(size=(150, 4)) @ np.diag([3, 2, 1, 0.5])
        pca = fit_pca(data)
        projections = pca.transform(data)
        for i in range(4):
            assert np.var(projections[:, i]) == pytest.approx(
                pca.decomposition.eigenvalues[i], rel=1e-9
            )

    def test_transformed_components_uncorrelated(self, rng):
        # "The concepts show no correlations of the second order."
        data = rng.normal(size=(100, 4)) @ rng.normal(size=(4, 4))
        projections = fit_pca(data).transform(data)
        cov = np.cov(projections, rowvar=False)
        off_diagonal = cov - np.diag(np.diag(cov))
        assert np.max(np.abs(off_diagonal)) < 1e-9

    def test_transform_centers_new_points(self, rng):
        data = rng.normal(loc=10.0, size=(50, 3))
        pca = fit_pca(data)
        # The training mean maps to the origin.
        assert np.allclose(pca.transform(data.mean(axis=0)), 0.0, atol=1e-9)

    def test_component_indices_subset(self, rng):
        data = rng.normal(size=(40, 5))
        pca = fit_pca(data)
        full = pca.transform(data)
        subset = pca.transform(data, component_indices=[2, 0])
        assert np.allclose(subset[:, 0], full[:, 2])
        assert np.allclose(subset[:, 1], full[:, 0])

    def test_distances_preserved_by_full_rotation(self, rng):
        data = rng.normal(size=(30, 6))
        projections = fit_pca(data).transform(data)
        original_gaps = np.linalg.norm(data[0] - data[1])
        projected_gaps = np.linalg.norm(projections[0] - projections[1])
        assert original_gaps == pytest.approx(projected_gaps, rel=1e-10)

    def test_scaled_drops_constant_columns(self, rng):
        data = rng.normal(size=(40, 4))
        data[:, 2] = 5.0
        pca = fit_pca(data, scale=True)
        assert pca.working_dimensionality == 3
        assert pca.input_dimensionality == 4
        assert 2 not in set(pca.kept_columns.tolist())

    def test_scaled_transform_accepts_original_width(self, rng):
        data = rng.normal(size=(40, 4))
        data[:, 2] = 5.0
        pca = fit_pca(data, scale=True)
        projections = pca.transform(data)
        assert projections.shape == (40, 3)

    def test_scaled_equals_correlation_pca(self, rng):
        # Scaled PCA eigenvalues = eigenvalues of the correlation matrix.
        data = rng.normal(size=(100, 4)) * np.array([1, 10, 100, 1000])
        pca = fit_pca(data, scale=True)
        from repro.linalg.covariance import correlation_matrix
        from repro.linalg.eigen import eigh_numpy

        reference = eigh_numpy(correlation_matrix(data))
        assert np.allclose(
            pca.decomposition.eigenvalues, reference.eigenvalues, atol=1e-10
        )

    def test_scaled_eigenvalues_sum_to_dimensionality(self, rng):
        data = rng.normal(size=(80, 6)) * np.array([1, 2, 3, 4, 5, 6])
        pca = fit_pca(data, scale=True)
        assert pca.decomposition.total_variance == pytest.approx(6.0)

    def test_scale_invariance_when_scaled(self, rng):
        data = rng.normal(size=(50, 3))
        scaled_data = data * np.array([1.0, 50.0, 0.02])
        a = fit_pca(data, scale=True).decomposition.eigenvalues
        b = fit_pca(scaled_data, scale=True).decomposition.eigenvalues
        assert np.allclose(a, b, atol=1e-10)

    def test_jacobi_method_agrees(self, rng):
        data = rng.normal(size=(60, 6))
        numpy_values = fit_pca(data, eigen_method="numpy").decomposition.eigenvalues
        jacobi_values = fit_pca(data, eigen_method="jacobi").decomposition.eigenvalues
        assert np.allclose(numpy_values, jacobi_values, atol=1e-10)

    def test_preprocess_single_row(self, rng):
        data = rng.normal(size=(20, 3))
        pca = fit_pca(data)
        row = pca.preprocess(data[0])
        assert row.shape == (3,)
        assert np.allclose(row, data[0] - data.mean(axis=0))

    def test_rejects_single_point(self):
        with pytest.raises(ValueError, match="two"):
            fit_pca(np.ones((1, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            fit_pca(np.ones(5))

    def test_transform_rejects_wrong_width(self, rng):
        pca = fit_pca(rng.normal(size=(20, 3)))
        with pytest.raises(ValueError, match="columns"):
            pca.transform(np.zeros((2, 4)))
