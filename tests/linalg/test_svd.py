"""Tests for the from-scratch SVD."""

import numpy as np
import pytest

from repro.linalg.covariance import covariance_matrix
from repro.linalg.eigen import eigh_numpy
from repro.linalg.svd import svd_via_eigen, truncated_svd_power


class TestSvdViaEigen:
    def test_reconstructs_full_rank(self, rng):
        a = rng.normal(size=(12, 7))
        result = svd_via_eigen(a)
        assert np.allclose(result.reconstruct(), a, atol=1e-9)

    def test_tall_and_wide_orientations(self, rng):
        tall = rng.normal(size=(20, 5))
        wide = tall.T
        assert np.allclose(
            svd_via_eigen(tall).singular_values,
            svd_via_eigen(wide).singular_values,
            atol=1e-9,
        )
        assert np.allclose(svd_via_eigen(wide).reconstruct(), wide, atol=1e-9)

    def test_matches_numpy_singular_values(self, rng):
        a = rng.normal(size=(15, 9))
        ours = svd_via_eigen(a).singular_values
        reference = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(ours, reference, atol=1e-9)

    def test_singular_values_descending_nonnegative(self, rng):
        result = svd_via_eigen(rng.normal(size=(10, 6)))
        assert np.all(result.singular_values >= 0.0)
        assert np.all(np.diff(result.singular_values) <= 1e-12)

    def test_orthonormal_factors(self, rng):
        result = svd_via_eigen(rng.normal(size=(14, 6)))
        k = result.rank
        assert np.allclose(result.left.T @ result.left, np.eye(k), atol=1e-9)
        assert np.allclose(result.right.T @ result.right, np.eye(k), atol=1e-9)

    def test_rank_deficient_matrix(self, rng):
        base = rng.normal(size=(10, 2))
        a = base @ rng.normal(size=(2, 8))  # rank 2
        result = svd_via_eigen(a)
        assert result.rank == 2
        assert np.allclose(result.reconstruct(), a, atol=1e-8)

    def test_pca_identity(self, rng):
        # singular_value^2 / n == covariance eigenvalue, for centered data.
        data = rng.normal(size=(100, 5)) @ np.diag([3, 2, 1.5, 1, 0.5])
        centered = data - data.mean(axis=0)
        svd = svd_via_eigen(centered)
        eig = eigh_numpy(covariance_matrix(data))
        assert np.allclose(
            np.square(svd.singular_values) / data.shape[0],
            eig.eigenvalues[: svd.rank],
            atol=1e-9,
        )

    def test_jacobi_backend(self, rng):
        a = rng.normal(size=(8, 5))
        assert np.allclose(
            svd_via_eigen(a, eigen_method="jacobi").singular_values,
            svd_via_eigen(a, eigen_method="numpy").singular_values,
            atol=1e-8,
        )

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            svd_via_eigen(np.ones(3))
        with pytest.raises(ValueError):
            svd_via_eigen(np.empty((0, 3)))
        with pytest.raises(ValueError):
            svd_via_eigen([[np.nan, 1.0]])


class TestTruncatedSvdPower:
    def test_matches_exact_leading_directions(self, rng):
        a = rng.normal(size=(40, 12)) @ np.diag(np.linspace(5, 0.1, 12))
        exact = svd_via_eigen(a)
        power = truncated_svd_power(a, k=3, seed=1)
        assert np.allclose(
            power.singular_values, exact.singular_values[:3], rtol=1e-5
        )
        # Subspaces agree (vectors up to sign/rotation).
        p_exact = exact.right[:, :3] @ exact.right[:, :3].T
        p_power = power.right @ power.right.T
        assert np.allclose(p_exact, p_power, atol=1e-5)

    def test_projection_consistency(self, rng):
        a = rng.normal(size=(30, 8))
        result = truncated_svd_power(a, k=2, seed=0)
        projected = result.project_rows(a)
        assert projected.shape == (30, 2)

    def test_k_equals_full_rank(self, rng):
        a = rng.normal(size=(10, 4))
        result = truncated_svd_power(a, k=4, seed=0)
        assert np.allclose(
            result.singular_values,
            np.linalg.svd(a, compute_uv=False),
            rtol=1e-6,
        )

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError, match="k must"):
            truncated_svd_power(rng.normal(size=(5, 3)), k=4)
        with pytest.raises(ValueError, match="k must"):
            truncated_svd_power(rng.normal(size=(5, 3)), k=0)

    def test_deterministic_given_seed(self, rng):
        a = rng.normal(size=(20, 6))
        first = truncated_svd_power(a, k=2, seed=5)
        second = truncated_svd_power(a, k=2, seed=5)
        assert np.allclose(first.right, second.right)


class TestSingularValueDecompositionType:
    def test_project_rows_single_vector(self, rng):
        a = rng.normal(size=(10, 4))
        result = svd_via_eigen(a)
        row = result.project_rows(a[0])
        assert row.shape == (1, result.rank)

    def test_project_rejects_wrong_width(self, rng):
        result = svd_via_eigen(rng.normal(size=(10, 4)))
        with pytest.raises(ValueError, match="columns"):
            result.project_rows(np.zeros((2, 5)))
