"""Integration tests pinning the paper's experimental claims.

Each test asserts a *shape* from the evaluation section — who wins, in
which regime, roughly where the crossovers fall — on the seeded synthetic
stand-ins.  These are the claims EXPERIMENTS.md records; if a generator
or algorithm change breaks one of them, the reproduction has drifted.
"""

import numpy as np
import pytest

from repro.core.coherence import UNIFORM_BASELINE_CP, analyze_coherence
from repro.core.diagnosis import diagnose_reducibility
from repro.datasets.uci_like import (
    arrhythmia_like,
    ionosphere_like,
    musk_like,
    noisy_dataset_a,
    noisy_dataset_b,
)
from repro.evaluation.summary import reduction_summary
from repro.evaluation.sweeps import accuracy_sweep
from repro.linalg.pca import fit_pca


@pytest.fixture(scope="module")
def noisy_a():
    return noisy_dataset_a(seed=0)


@pytest.fixture(scope="module")
def noisy_b():
    return noisy_dataset_b(seed=0)


class TestCleanDatasetClaims:
    """Sections 4, Figures 3-11 and Table 1."""

    @pytest.mark.parametrize("make", [musk_like, ionosphere_like, arrhythmia_like])
    def test_eigenvalue_and_coherence_agree_on_clean_data(self, make):
        # "In all the data sets ... the coherence probability is very
        # closely correlated with the absolute eigenvalues."
        data = make(seed=0)
        analysis = analyze_coherence(fit_pca(data.features, scale=True), data.features)
        assert analysis.rank_correlation() > 0.6

    @pytest.mark.parametrize("make", [musk_like, ionosphere_like, arrhythmia_like])
    def test_optimal_accuracy_beats_full_dimensionality(self, make):
        summary = reduction_summary(make(seed=0))
        assert summary.optimal_accuracy > summary.full_accuracy

    @pytest.mark.parametrize("make", [musk_like, ionosphere_like, arrhythmia_like])
    def test_optimal_dimensionality_far_below_threshold_rule(self, make):
        # Table 1: "the optimal accuracy dimensionality is significantly
        # lower than the 1%-thresholding method ... quite close to the
        # full dimensionality."
        summary = reduction_summary(make(seed=0))
        assert summary.optimal_dimensionality <= summary.threshold_dimensionality / 2
        assert summary.threshold_dimensionality >= summary.full_dimensionality / 2

    @pytest.mark.parametrize("make", [musk_like, ionosphere_like, arrhythmia_like])
    def test_threshold_accuracy_close_to_full_but_below_optimal(self, make):
        summary = reduction_summary(make(seed=0))
        assert abs(summary.threshold_accuracy - summary.full_accuracy) < 0.05
        assert summary.threshold_accuracy < summary.optimal_accuracy

    def test_musk_optimum_near_thirteen(self):
        # Figure 5: "optimal qualitative performance is reached by
        # picking only 13 eigenvectors out of a 166 dimensional data set."
        summary = reduction_summary(musk_like(seed=0))
        assert 6 <= summary.optimal_dimensionality <= 20

    def test_ionosphere_optimum_near_ten(self):
        # Figure 8: the optimum arrives once the second cluster of 5
        # eigenvalues is included (~10 of 34).
        summary = reduction_summary(ionosphere_like(seed=0))
        assert 5 <= summary.optimal_dimensionality <= 14

    def test_arrhythmia_optimum_near_ten(self):
        # Figure 11: "the optimum prediction accuracy is obtained by
        # picking the top 10 eigenvectors" of 279.
        summary = reduction_summary(arrhythmia_like(seed=0))
        assert 5 <= summary.optimal_dimensionality <= 20

    @pytest.mark.parametrize("make", [musk_like, ionosphere_like, arrhythmia_like])
    def test_scaling_improves_reduced_space_quality(self, make):
        # Figures 5, 8, 10-11: the scaled representation wins in the
        # reduced space.
        data = make(seed=0)
        scaled = accuracy_sweep(data, ordering="eigenvalue", scale=True)
        raw = accuracy_sweep(data, ordering="eigenvalue", scale=False)
        assert scaled.optimal()[1] > raw.optimal()[1]

    def test_scaling_raises_coherence_probability(self):
        # Figure 4 / Section 2.2: studentizing lifts the coherence
        # probabilities of the leading eigenvectors.
        data = arrhythmia_like(seed=0)
        raw = analyze_coherence(fit_pca(data.features), data.features)
        scaled = analyze_coherence(fit_pca(data.features, scale=True), data.features)
        assert (
            scaled.coherence_probabilities[:10].mean()
            > raw.coherence_probabilities[:10].mean()
        )

    @pytest.mark.parametrize("make", [musk_like, ionosphere_like, arrhythmia_like])
    def test_aggressive_reduction_discards_variance_and_neighbors(self, make):
        # Section 4: at the optimum much of the variance is gone and the
        # precision w.r.t. the original neighbors is low.
        summary = reduction_summary(make(seed=0))
        assert summary.variance_retained_at_optimum < 0.75
        assert summary.precision_at_optimum < 0.6


class TestNoisyDatasetClaims:
    """Section 4.1, Figures 12-15."""

    def test_noisy_a_largest_eigenvalues_have_low_coherence(self, noisy_a):
        # Figure 12: "the largest few eigenvalues correspond to very low
        # coherence probability and vice-versa."
        analysis = analyze_coherence(fit_pca(noisy_a.features), noisy_a.features)
        n_corrupted = len(noisy_a.metadata["corrupted_dims"])
        top = analysis.coherence_probabilities[:n_corrupted]
        best = np.sort(analysis.coherence_probabilities)[::-1][:4]
        assert top.max() < best.min()

    def test_noisy_a_coherence_ordering_dominates(self, noisy_a):
        # Figure 13: "the qualitative curve for the coherence probability
        # ordering completely dominates the ... eigenvalue ordering."
        coherent = accuracy_sweep(noisy_a, ordering="coherence", scale=False)
        classical = accuracy_sweep(noisy_a, ordering="eigenvalue", scale=False)
        gaps = coherent.accuracies - classical.accuracies
        assert np.mean(gaps >= -0.02) > 0.9  # dominance up to noise
        assert coherent.optimal()[1] > classical.optimal()[1] + 0.1

    def test_noisy_a_coherence_peaks_early(self, noisy_a):
        # Figure 13: the coherence curve peaks at ~5 of 34 dimensions.
        coherent = accuracy_sweep(noisy_a, ordering="coherence", scale=False)
        best_dims, _ = coherent.optimal()
        assert best_dims <= 10

    def test_noisy_a_eigenvalue_curve_never_peaks_early(self, noisy_a):
        # Figure 13: "the curve based on the eigenvalue ordering does not
        # peak at any point" — optimal quality needs nearly everything.
        classical = accuracy_sweep(noisy_a, ordering="eigenvalue", scale=False)
        best_dims, best = classical.optimal()
        full = classical.full_dimensional_accuracy
        # Whatever maximum exists is within noise of the full-dim value.
        assert best <= full + 0.03

    def test_noisy_a_optimal_variance_tiny(self, noisy_a):
        # Section 4.1: "the total variance of the reduced data set was
        # only 12.1% of the variance in the original data."
        coherent = accuracy_sweep(noisy_a, ordering="coherence", scale=False)
        best_dims, _ = coherent.optimal()
        pca = fit_pca(noisy_a.features)
        retained = pca.decomposition.energy_fraction(
            coherent.component_order[:best_dims]
        )
        assert retained < 0.15

    def test_noisy_b_poor_eigenvalue_coherence_matching(self, noisy_b):
        # Figure 14: high eigenvalues pair with low coherence.
        analysis = analyze_coherence(fit_pca(noisy_b.features), noisy_b.features)
        n_corrupted = len(noisy_b.metadata["corrupted_dims"])
        top_cp = analysis.coherence_probabilities[:n_corrupted].mean()
        concept_cp = np.sort(analysis.coherence_probabilities)[::-1][:5].mean()
        assert concept_cp > top_cp + 0.1

    def test_noisy_b_coherence_ordering_dominates(self, noisy_b):
        coherent = accuracy_sweep(noisy_b, ordering="coherence", scale=False)
        classical = accuracy_sweep(noisy_b, ordering="eigenvalue", scale=False)
        assert coherent.optimal()[1] > classical.optimal()[1] + 0.2

    def test_noisy_b_peak_just_before_outlier_cluster(self, noisy_b):
        # Figure 15: "the curve peaks just before including the outlier
        # cluster of eigenvectors ... only 11 of the original set of
        # dimensions need to be included."
        coherent = accuracy_sweep(noisy_b, ordering="coherence", scale=False)
        best_dims, _ = coherent.optimal()
        assert best_dims <= 15
        # The corrupted components are NOT among the retained prefix.
        retained = set(coherent.component_order[:best_dims].tolist())
        n_corrupted = len(noisy_b.metadata["corrupted_dims"])
        assert not retained & set(range(n_corrupted))


class TestSectionThreeClaims:
    """Section 3: uniform data and implicit dimensionality."""

    def test_uniform_coherence_flat_at_baseline(self):
        from repro.theory.uniform import empirical_uniform_coherence

        result = empirical_uniform_coherence(n_samples=800, n_dims=40, seed=0)
        assert result["mean_probability"] == pytest.approx(
            UNIFORM_BASELINE_CP, abs=1e-10
        )
        assert result["probability_spread"] < 1e-10

    def test_structured_data_reducible_uniform_not(self):
        from repro.datasets.synthetic import uniform_cube

        assert (
            diagnose_reducibility(ionosphere_like(seed=0).features).verdict
            == "reducible"
        )
        assert (
            diagnose_reducibility(uniform_cube(500, 34, seed=0).features).verdict
            == "noisy"
        )

    def test_implicit_dimensionality_tracks_concepts(self):
        from repro.theory.implicit_dim import participation_ratio

        data = ionosphere_like(seed=0)
        pca = fit_pca(data.features, scale=True)
        ratio = participation_ratio(pca.decomposition.eigenvalues)
        # 10 planted concepts: the effective dimension sits near that,
        # far below the ambient 34.
        assert 3 <= ratio <= 20
