"""Seed robustness: the paper's shapes must not be seed-0 accidents.

The benchmark harness pins every claim at seed 0; these tests re-run the
load-bearing claims at several other seeds.  Margins are looser than the
seed-0 assertions (individual seeds wobble) but the *orderings* — who
wins — must hold at every seed.
"""

import numpy as np
import pytest

from repro.core.coherence import analyze_coherence
from repro.core.diagnosis import diagnose_reducibility
from repro.datasets.synthetic import uniform_cube
from repro.datasets.uci_like import (
    ionosphere_like,
    musk_like,
    noisy_dataset_a,
)
from repro.evaluation.summary import reduction_summary
from repro.evaluation.sweeps import accuracy_sweep
from repro.linalg.pca import fit_pca

SEEDS = [1, 2, 3]


class TestCleanShapesAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ionosphere_optimum_beats_full(self, seed):
        summary = reduction_summary(ionosphere_like(seed=seed))
        assert summary.optimal_accuracy >= summary.full_accuracy
        assert summary.optimal_dimensionality <= 17

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ionosphere_threshold_near_full(self, seed):
        summary = reduction_summary(ionosphere_like(seed=seed))
        assert abs(summary.threshold_accuracy - summary.full_accuracy) < 0.08
        assert summary.threshold_dimensionality >= 17

    @pytest.mark.parametrize("seed", SEEDS)
    def test_musk_scaled_beats_unscaled(self, seed):
        data = musk_like(seed=seed)
        scaled = accuracy_sweep(data, ordering="eigenvalue", scale=True)
        raw = accuracy_sweep(data, ordering="eigenvalue", scale=False)
        assert scaled.optimal()[1] >= raw.optimal()[1]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_clean_eigenvalue_coherence_correlation(self, seed):
        data = ionosphere_like(seed=seed)
        analysis = analyze_coherence(
            fit_pca(data.features, scale=True), data.features
        )
        assert analysis.rank_correlation() > 0.5


class TestNoisyShapesAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_coherence_ordering_dominates(self, seed):
        noisy = noisy_dataset_a(seed=seed)
        coherent = accuracy_sweep(noisy, ordering="coherence", scale=False)
        classical = accuracy_sweep(noisy, ordering="eigenvalue", scale=False)
        assert coherent.optimal()[1] > classical.optimal()[1] + 0.05

    @pytest.mark.parametrize("seed", SEEDS)
    def test_coherence_peak_is_early(self, seed):
        noisy = noisy_dataset_a(seed=seed)
        coherent = accuracy_sweep(noisy, ordering="coherence", scale=False)
        assert coherent.optimal()[0] <= 12

    @pytest.mark.parametrize("seed", SEEDS)
    def test_noise_owns_the_top_of_the_spectrum(self, seed):
        noisy = noisy_dataset_a(seed=seed)
        analysis = analyze_coherence(fit_pca(noisy.features), noisy.features)
        n_noise = len(noisy.metadata["corrupted_dims"])
        cp = analysis.coherence_probabilities
        # The best coherent directions sit outside the noise block.
        best = int(np.argmax(cp))
        assert best >= n_noise


class TestTheoryAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_uniform_data_never_reducible(self, seed):
        data = uniform_cube(400, 30, seed=seed)
        assert diagnose_reducibility(data.features).verdict == "noisy"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_structured_data_always_reducible(self, seed):
        data = ionosphere_like(seed=seed)
        assert diagnose_reducibility(data.features).verdict == "reducible"
