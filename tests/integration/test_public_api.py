"""Tests of the top-level public API surface."""

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_readme_quickstart_runs(self):
        # The snippet from the package docstring / README, verbatim.
        from repro import CoherenceReducer, ionosphere_like
        from repro import corrupt_with_uniform, feature_stripping_accuracy

        data = ionosphere_like(seed=7)
        noisy = corrupt_with_uniform(data, n_dims=10, amplitude=60.0, seed=7)

        reducer = CoherenceReducer(n_components=5, ordering="coherence")
        reduced = reducer.fit_transform(noisy.features)
        accuracy = feature_stripping_accuracy(reduced, noisy.labels, k=3)
        assert 0.0 <= accuracy <= 1.0

    def test_end_to_end_pipeline(self):
        data = repro.ionosphere_like(seed=1)
        pipeline = repro.SimilaritySearchPipeline(
            reducer=repro.CoherenceReducer(n_components=6, scale=True),
            index_type="rtree",
        ).fit(data.features)
        result = pipeline.query(data.features[10], k=3)
        assert result.neighbors[0].index == 10
        assert len(result.neighbors) == 3

    def test_diagnosis_then_reduction_workflow(self):
        data = repro.musk_like(seed=2)
        diagnosis = repro.diagnose_reducibility(data.features)
        assert diagnosis.verdict == "reducible"
        reducer = repro.CoherenceReducer(
            n_components=max(1, diagnosis.n_concepts), scale=True
        )
        reduced = reducer.fit_transform(data.features)
        assert reduced.shape[1] == max(1, diagnosis.n_concepts)

    def test_uniform_baseline_exported(self):
        assert repro.UNIFORM_BASELINE_CP == pytest.approx(0.6827, abs=1e-4)

    def test_dataset_roundtrip_through_reduction(self):
        data = repro.latent_concept_dataset(60, 10, 2, seed=0)
        reducer = repro.CoherenceReducer(n_components=2)
        reduced_dataset = data.with_features(
            reducer.fit_transform(data.features), name="reduced"
        )
        assert reduced_dataset.n_dims == 2
        assert np.array_equal(reduced_dataset.labels, data.labels)
